//! A parser for the paper's rule language, so profiles can be written the
//! way Figs. 2 and 5 write them:
//!
//! ```text
//! # scoping rules (Fig. 2)
//! if pc(car, description) & ftcontains(description, "good condition")
//!     then add ftcontains(description, "american")
//! if pc(car, description) & ftcontains(description, "good condition")
//!     then remove ftcontains(description, "low mileage")
//! if true then replace price < 2000 with price < 5000
//! if true then relax pc(car, description)
//!
//! # ordering rules (Figs. 2 and 5)
//! x.tag = car & y.tag = car & x.color = "red" & y.color != "red" -> x < y
//! x.tag = car & y.tag = car & x.mileage < y.mileage -> x < y
//! x.tag = car & y.tag = car & x.make = y.make & x.hp > y.hp -> x < y
//! x.tag = car & y.tag = car & ftcontains(x, "best bid") -> x < y
//! colors(x.color, y.color) -> x < y          # named prefRel from the registry
//! ```
//!
//! Rules accept a trailing attribute block `{priority 2, weight 1.5}`.
//! [`parse_profile`] reads one rule per line (continuation lines are
//! joined when a line ends mid-rule), `#` starts a comment.

use crate::kor::KeywordOrderingRule;
use crate::prefrel::PrefRel;
use crate::profile::UserProfile;
use crate::scoping::{Atom, ScopingRule, SrAction};
use crate::vor::{AttrValue, PrefOp, ValueOrderingRule, VorForm};
use pimento_tpq::{Predicate, RelOp, Value};
use std::collections::HashMap;
use std::fmt;

/// Parse error with a line number (1-based; 0 for single-rule parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "rule parse error on line {}: {}",
                self.line, self.message
            )
        } else {
            write!(f, "rule parse error: {}", self.message)
        }
    }
}

impl std::error::Error for RuleParseError {}

/// One parsed rule of any kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedRule {
    /// A scoping rule.
    Scoping(ScopingRule),
    /// A value-based ordering rule.
    Vor(ValueOrderingRule),
    /// A keyword-based ordering rule.
    Kor(KeywordOrderingRule),
}

/// Named [`PrefRel`]s referenced by form-(3) rules like
/// `colors(x.color, y.color) -> x < y`.
pub type PrefRelRegistry = HashMap<String, PrefRel>;

/// Parse a single rule (either syntax), with `id` as its identifier.
pub fn parse_rule(
    id: &str,
    input: &str,
    registry: &PrefRelRegistry,
) -> Result<ParsedRule, RuleParseError> {
    Parser::new(input, registry).rule(id).map_err(|mut e| {
        e.line = 0;
        e
    })
}

/// Parse a whole profile: one rule per line (`#` comments, blank lines
/// skipped). Rules get ids `r1`, `r2`, … in file order unless the line
/// starts with `NAME:`.
pub fn parse_profile(
    input: &str,
    registry: &PrefRelRegistry,
) -> Result<UserProfile, RuleParseError> {
    let mut profile = UserProfile::new();
    let mut counter = 0usize;
    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        counter += 1;
        // Optional leading "name:" label — but only when the head looks
        // like a label (not `x.tag = ...`).
        let (id, body) = match line.split_once(':') {
            Some((head, rest))
                if !head.contains('.')
                    && !head.contains('(')
                    && !head.contains(' ')
                    && !head.is_empty() =>
            {
                (head.to_string(), rest.trim())
            }
            _ => (format!("r{counter}"), line),
        };
        let rule = Parser::new(body, registry).rule(&id).map_err(|mut e| {
            e.line = lineno + 1;
            e
        })?;
        match rule {
            ParsedRule::Scoping(r) => profile.scoping.push(r),
            ParsedRule::Vor(r) => profile.vors.push(r),
            ParsedRule::Kor(r) => profile.kors.push(r),
        }
    }
    Ok(profile)
}

fn strip_comment(line: &str) -> &str {
    // A '#' outside string quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),
    Str(String),
    Num(f64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Amp,
    Arrow,
    Dot,
    Op(RelOp),
}

fn lex(input: &str) -> Result<Vec<Tok>, String> {
    let b = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b'{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            b'}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b'&' => {
                toks.push(Tok::Amp);
                i += 1;
            }
            b'.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            b'-' if b.get(i + 1) == Some(&b'>') => {
                toks.push(Tok::Arrow);
                i += 2;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Op(RelOp::Le));
                    i += 2;
                } else {
                    toks.push(Tok::Op(RelOp::Lt));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Op(RelOp::Ge));
                    i += 2;
                } else {
                    toks.push(Tok::Op(RelOp::Gt));
                    i += 1;
                }
            }
            b'=' => {
                toks.push(Tok::Op(RelOp::Eq));
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                toks.push(Tok::Op(RelOp::Ne));
                i += 2;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err("unterminated string literal".into());
                }
                toks.push(Tok::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == b'-' && b.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let n: f64 = input[start..i]
                    .parse()
                    .map_err(|_| format!("bad number {:?}", &input[start..i]))?;
                toks.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'-')
                {
                    i += 1;
                }
                toks.push(Tok::Name(input[start..i].to_string()));
            }
            other => return Err(format!("unexpected character {:?}", other as char)),
        }
    }
    Ok(toks)
}

struct Parser<'r> {
    toks: Vec<Tok>,
    pos: usize,
    registry: &'r PrefRelRegistry,
    lex_error: Option<String>,
}

/// Accumulated pieces of an ordering-rule head while parsing.
#[derive(Default)]
struct OrParts {
    x_tag: Option<String>,
    y_tag: Option<String>,
    equal_attrs: Vec<String>,
    guards: Vec<(String, RelOp, AttrValue)>,
    /// (attr, value) of `x.attr = v`, waiting for its `y.attr != v` twin.
    eq_half: Option<(String, AttrValue)>,
    form: Option<VorForm>,
    kor_phrase: Option<String>,
}

impl<'r> Parser<'r> {
    fn new(input: &str, registry: &'r PrefRelRegistry) -> Self {
        match lex(input) {
            Ok(toks) => Parser {
                toks,
                pos: 0,
                registry,
                lex_error: None,
            },
            Err(e) => Parser {
                toks: Vec::new(),
                pos: 0,
                registry,
                lex_error: Some(e),
            },
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, RuleParseError> {
        Err(RuleParseError {
            line: 0,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), RuleParseError> {
        if self.eat(want) {
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn name(&mut self, what: &str) -> Result<String, RuleParseError> {
        match self.bump() {
            Some(Tok::Name(n)) => Ok(n),
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn rule(&mut self, id: &str) -> Result<ParsedRule, RuleParseError> {
        if let Some(e) = self.lex_error.take() {
            return self.err(e);
        }
        let starts_with_if = matches!(self.peek(), Some(Tok::Name(n)) if n == "if");
        let mut rule = if starts_with_if {
            ParsedRule::Scoping(self.scoping_rule(id)?)
        } else {
            self.ordering_rule(id)?
        };
        // Optional attribute block.
        if self.eat(&Tok::LBrace) {
            loop {
                let key = self.name("attribute name")?;
                let value = match self.bump() {
                    Some(Tok::Num(n)) => n,
                    other => return self.err(format!("expected number, found {other:?}")),
                };
                match (key.as_str(), &mut rule) {
                    ("priority", ParsedRule::Scoping(r)) => r.priority = Some(value as u32),
                    ("priority", ParsedRule::Vor(r)) => r.priority = value as u32,
                    ("weight", ParsedRule::Scoping(r)) => {
                        if value <= 0.0 {
                            return self.err("weight must be positive");
                        }
                        r.weight = value;
                    }
                    ("weight", ParsedRule::Kor(r)) => {
                        if value <= 0.0 {
                            return self.err("weight must be positive");
                        }
                        r.weight = value;
                    }
                    (other, _) => {
                        return self.err(format!("unknown or inapplicable attribute {other:?}"))
                    }
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RBrace, "'}'")?;
        }
        if self.peek().is_some() {
            return self.err("trailing tokens after rule");
        }
        Ok(rule)
    }

    // -- scoping rules ------------------------------------------------------

    fn scoping_rule(&mut self, id: &str) -> Result<ScopingRule, RuleParseError> {
        self.expect(&Tok::Name("if".into()), "'if'")?;
        let condition = if matches!(self.peek(), Some(Tok::Name(n)) if n == "true") {
            self.pos += 1;
            Vec::new()
        } else {
            self.atom_list(&["then"])?
        };
        self.expect(&Tok::Name("then".into()), "'then'")?;
        let action = match self.name("action (add/remove/replace/relax)")?.as_str() {
            "add" => SrAction::Add(self.atom_list(&[])?),
            "remove" | "delete" => SrAction::Delete(self.atom_list(&[])?),
            "replace" => {
                let from = self.atom_list(&["with"])?;
                self.expect(&Tok::Name("with".into()), "'with'")?;
                let with = self.atom_list(&[])?;
                SrAction::Replace { from, with }
            }
            "relax" => {
                self.expect(&Tok::Name("pc".into()), "'pc'")?;
                self.expect(&Tok::LParen, "'('")?;
                let parent = self.name("parent tag")?;
                self.expect(&Tok::Comma, "','")?;
                let child = self.name("child tag")?;
                self.expect(&Tok::RParen, "')'")?;
                SrAction::RelaxEdge { parent, child }
            }
            other => return self.err(format!("unknown action {other:?}")),
        };
        Ok(ScopingRule {
            id: id.to_string(),
            condition,
            action,
            priority: None,
            weight: 1.0,
        })
    }

    /// Parse `atom (& atom)*`, stopping before any keyword in `stops` or a
    /// `{`/end of input.
    fn atom_list(&mut self, stops: &[&str]) -> Result<Vec<Atom>, RuleParseError> {
        let mut out = vec![self.atom()?];
        while self.eat(&Tok::Amp) {
            out.push(self.atom()?);
        }
        // Validate the stop token without consuming it.
        match self.peek() {
            None | Some(Tok::LBrace) => Ok(out),
            Some(Tok::Name(n)) if stops.contains(&n.as_str()) => Ok(out),
            other => self.err(format!("expected '&', end of atoms, found {other:?}")),
        }
    }

    fn atom(&mut self) -> Result<Atom, RuleParseError> {
        let head = self.name("atom")?;
        match head.as_str() {
            "pc" | "ad" => {
                self.expect(&Tok::LParen, "'('")?;
                let a = self.name("tag")?;
                self.expect(&Tok::Comma, "','")?;
                let b = self.name("tag")?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(if head == "pc" {
                    Atom::pc(&a, &b)
                } else {
                    Atom::ad(&a, &b)
                })
            }
            "ftcontains" => {
                self.expect(&Tok::LParen, "'('")?;
                let tag = self.name("tag")?;
                self.expect(&Tok::Comma, "','")?;
                let phrase = match self.bump() {
                    Some(Tok::Str(s)) => s,
                    other => return self.err(format!("expected string, found {other:?}")),
                };
                self.expect(&Tok::RParen, "')'")?;
                Ok(Atom::ft(&tag, &phrase))
            }
            tag => {
                // cmp atom: TAG relop value
                let op = match self.bump() {
                    Some(Tok::Op(op)) => op,
                    other => {
                        return self.err(format!(
                            "expected comparison after {tag:?}, found {other:?}"
                        ))
                    }
                };
                let value = match self.bump() {
                    Some(Tok::Num(n)) => Value::Num(n),
                    Some(Tok::Str(s)) => Value::Str(s),
                    other => return self.err(format!("expected constant, found {other:?}")),
                };
                Ok(Atom::cmp(tag, Predicate::Compare { op, value }))
            }
        }
    }

    // -- ordering rules -----------------------------------------------------

    fn ordering_rule(&mut self, id: &str) -> Result<ParsedRule, RuleParseError> {
        let mut parts = OrParts::default();
        loop {
            self.or_condition(&mut parts)?;
            if !self.eat(&Tok::Amp) {
                break;
            }
        }
        self.expect(&Tok::Arrow, "'->'")?;
        // "x < y"
        self.expect(&Tok::Name("x".into()), "'x'")?;
        self.expect(&Tok::Op(RelOp::Lt), "'<'")?;
        self.expect(&Tok::Name("y".into()), "'y'")?;

        if parts.eq_half.is_some() {
            return self.err("x.attr = value needs the matching y.attr != value conjunct");
        }
        let tag = match (parts.x_tag, parts.y_tag) {
            (Some(x), Some(y)) if x == y => x,
            (Some(_), Some(_)) => return self.err("x.tag and y.tag must be the same"),
            _ => return self.err("both x.tag = T and y.tag = T are required"),
        };
        if let Some(phrase) = parts.kor_phrase {
            if parts.form.is_some() {
                return self.err("a rule cannot mix ftcontains(x, ...) with a value form");
            }
            return Ok(ParsedRule::Kor(KeywordOrderingRule::new(id, &tag, &phrase)));
        }
        let Some(form) = parts.form else {
            return self.err(
                "ordering rule needs a preference head (x.a = c & y.a != c, x.a < y.a, or prefRel)",
            );
        };
        Ok(ParsedRule::Vor(ValueOrderingRule {
            id: id.to_string(),
            tag,
            equal_attrs: parts.equal_attrs,
            guards: parts
                .guards
                .into_iter()
                .map(|(attr, op, value)| crate::vor::LocalGuard { attr, op, value })
                .collect(),
            form,
            priority: 0,
        }))
    }

    fn or_condition(&mut self, parts: &mut OrParts) -> Result<(), RuleParseError> {
        match self.bump() {
            Some(Tok::Name(n)) if n == "ftcontains" => {
                self.expect(&Tok::LParen, "'('")?;
                self.expect(&Tok::Name("x".into()), "'x'")?;
                self.expect(&Tok::Comma, "','")?;
                let phrase = match self.bump() {
                    Some(Tok::Str(s)) => s,
                    other => return self.err(format!("expected string, found {other:?}")),
                };
                self.expect(&Tok::RParen, "')'")?;
                if parts.kor_phrase.replace(phrase).is_some() {
                    return self.err("only one ftcontains(x, ...) per rule");
                }
                Ok(())
            }
            Some(Tok::Name(var)) if var == "x" || var == "y" => {
                self.expect(&Tok::Dot, "'.'")?;
                let attr = self.name("attribute")?;
                let op = match self.bump() {
                    Some(Tok::Op(op)) => op,
                    other => return self.err(format!("expected comparison, found {other:?}")),
                };
                // Right-hand side: constant, or the other variable's attr.
                match self.peek().cloned() {
                    Some(Tok::Name(rhs_var)) if rhs_var == "x" || rhs_var == "y" => {
                        self.pos += 1;
                        self.expect(&Tok::Dot, "'.'")?;
                        let rhs_attr = self.name("attribute")?;
                        self.cross_condition(parts, &var, &attr, op, &rhs_var, &rhs_attr)
                    }
                    _ => {
                        let value = match self.bump() {
                            Some(Tok::Num(n)) => AttrValue::Num(n),
                            Some(Tok::Str(s)) => AttrValue::Str(s),
                            Some(Tok::Name(n)) => AttrValue::Str(n), // bare word, e.g. x.tag = car
                            other => {
                                return self.err(format!("expected constant, found {other:?}"))
                            }
                        };
                        self.const_condition(parts, &var, &attr, op, value)
                    }
                }
            }
            Some(Tok::Name(rel)) => {
                // prefRel form: NAME(x.attr, y.attr)
                let Some(order) = self.registry.get(&rel) else {
                    return self.err(format!("unknown preference relation {rel:?}"));
                };
                self.expect(&Tok::LParen, "'('")?;
                self.expect(&Tok::Name("x".into()), "'x'")?;
                self.expect(&Tok::Dot, "'.'")?;
                let xa = self.name("attribute")?;
                self.expect(&Tok::Comma, "','")?;
                self.expect(&Tok::Name("y".into()), "'y'")?;
                self.expect(&Tok::Dot, "'.'")?;
                let ya = self.name("attribute")?;
                self.expect(&Tok::RParen, "')'")?;
                if xa != ya {
                    return self.err("prefRel must compare the same attribute of x and y");
                }
                if parts
                    .form
                    .replace(VorForm::Preference {
                        attr: xa,
                        order: order.clone(),
                    })
                    .is_some()
                {
                    return self.err("only one preference head per rule");
                }
                Ok(())
            }
            other => self.err(format!("expected ordering condition, found {other:?}")),
        }
    }

    /// `x.a op y.b` conditions.
    fn cross_condition(
        &mut self,
        parts: &mut OrParts,
        lhs_var: &str,
        lhs_attr: &str,
        op: RelOp,
        rhs_var: &str,
        rhs_attr: &str,
    ) -> Result<(), RuleParseError> {
        if lhs_var == rhs_var {
            return self.err("conditions must relate x and y, not a variable to itself");
        }
        if lhs_attr != rhs_attr {
            return self.err("cross conditions must compare the same attribute");
        }
        match op {
            RelOp::Eq => {
                parts.equal_attrs.push(lhs_attr.to_string());
                Ok(())
            }
            RelOp::Lt | RelOp::Gt => {
                // Normalize to x-relative direction.
                let x_op = if lhs_var == "x" { op } else { op.flip() };
                let pref = if x_op == RelOp::Lt {
                    PrefOp::Lt
                } else {
                    PrefOp::Gt
                };
                if parts
                    .form
                    .replace(VorForm::AttrCompare {
                        attr: lhs_attr.to_string(),
                        op: pref,
                    })
                    .is_some()
                {
                    return self.err("only one preference head per rule");
                }
                Ok(())
            }
            other => self.err(format!("unsupported cross comparison {other}")),
        }
    }

    /// `x.a op const` conditions (tags, EqConst halves, guards).
    fn const_condition(
        &mut self,
        parts: &mut OrParts,
        var: &str,
        attr: &str,
        op: RelOp,
        value: AttrValue,
    ) -> Result<(), RuleParseError> {
        if attr == "tag" {
            if op != RelOp::Eq {
                return self.err("tag conditions must use '='");
            }
            let tag = value.as_text().into_owned();
            let slot = if var == "x" {
                &mut parts.x_tag
            } else {
                &mut parts.y_tag
            };
            if slot.replace(tag).is_some() {
                return self.err(format!("duplicate {var}.tag condition"));
            }
            return Ok(());
        }
        match (var, op) {
            ("x", RelOp::Eq) => {
                if parts.eq_half.replace((attr.to_string(), value)).is_some() {
                    return self.err("only one x.attr = value head per rule");
                }
                Ok(())
            }
            ("y", RelOp::Ne) => {
                let Some((x_attr, x_val)) = parts.eq_half.take() else {
                    return self.err("y.attr != value must follow its x.attr = value conjunct");
                };
                if x_attr != attr || !x_val.same(&value) {
                    return self
                        .err("x.attr = v and y.attr != v must use the same attribute and value");
                }
                let head = VorForm::EqConst {
                    attr: attr.to_string(),
                    value: x_val.as_text().into_owned(),
                };
                if parts.form.replace(head).is_some() {
                    return self.err("only one preference head per rule");
                }
                Ok(())
            }
            // Anything else is a symmetric local guard; written once on
            // either variable, enforced on both answers at runtime.
            _ => {
                parts.guards.push((attr.to_string(), op, value));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vor::RuleCmp;

    fn reg() -> PrefRelRegistry {
        let mut r = PrefRelRegistry::new();
        r.insert(
            "colors".to_string(),
            PrefRel::chain(&["red", "black", "silver"]),
        );
        r
    }

    fn rule(s: &str) -> ParsedRule {
        parse_rule("t", s, &reg()).unwrap()
    }

    #[test]
    fn parses_fig2_rho1() {
        let r = rule(
            r#"if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(description, "good condition")"#,
        );
        let ParsedRule::Scoping(sr) = r else {
            panic!("expected SR")
        };
        assert_eq!(sr.condition.len(), 2);
        assert!(matches!(&sr.action, SrAction::Delete(atoms) if atoms.len() == 1));
    }

    #[test]
    fn parses_fig2_rho2_add() {
        let r = rule(
            r#"if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")"#,
        );
        let ParsedRule::Scoping(sr) = r else { panic!() };
        assert!(matches!(&sr.action, SrAction::Add(_)));
    }

    #[test]
    fn parses_replace_with_cmp_atoms() {
        let r = rule(r#"if true then replace price < 2000 with price < 5000"#);
        let ParsedRule::Scoping(sr) = r else { panic!() };
        assert!(sr.condition.is_empty());
        let SrAction::Replace { from, with } = &sr.action else {
            panic!()
        };
        assert!(matches!(&from[0], Atom::Cmp { tag, .. } if tag == "price"));
        assert!(matches!(&with[0], Atom::Cmp { tag, .. } if tag == "price"));
    }

    #[test]
    fn parses_relax_action() {
        let r = rule("if true then relax pc(car, description)");
        let ParsedRule::Scoping(sr) = r else { panic!() };
        assert!(matches!(&sr.action, SrAction::RelaxEdge { parent, child }
            if parent == "car" && child == "description"));
    }

    #[test]
    fn parses_fig2_pi1_eqconst() {
        let r = rule(r#"x.tag = car & y.tag = car & x.color = "red" & y.color != "red" -> x < y"#);
        let ParsedRule::Vor(v) = r else {
            panic!("expected VOR")
        };
        assert_eq!(v.tag, "car");
        assert!(
            matches!(&v.form, VorForm::EqConst { attr, value } if attr == "color" && value == "red")
        );
    }

    #[test]
    fn parses_fig2_pi2_lower_mileage() {
        let r = rule("x.tag = car & y.tag = car & x.mileage < y.mileage -> x < y");
        let ParsedRule::Vor(v) = r else { panic!() };
        assert!(
            matches!(&v.form, VorForm::AttrCompare { attr, op: PrefOp::Lt } if attr == "mileage")
        );
    }

    #[test]
    fn parses_fig2_pi3_same_make_higher_hp() {
        let r = rule("x.tag = car & y.tag = car & x.make = y.make & x.hp > y.hp -> x < y");
        let ParsedRule::Vor(v) = r else { panic!() };
        assert_eq!(v.equal_attrs, vec!["make".to_string()]);
        assert!(matches!(&v.form, VorForm::AttrCompare { attr, op: PrefOp::Gt } if attr == "hp"));
    }

    #[test]
    fn parses_fig2_pi4_kor() {
        let r = rule(r#"x.tag = car & y.tag = car & ftcontains(x, "best bid") -> x < y"#);
        let ParsedRule::Kor(k) = r else {
            panic!("expected KOR")
        };
        assert_eq!(k.tag, "car");
        assert_eq!(k.phrase, "best bid");
        assert_eq!(k.weight, 1.0);
    }

    #[test]
    fn parses_fig5_pi5_numeric_eqconst() {
        let r = rule("x.tag = person & y.tag = person & x.age = 33 & y.age != 33 -> x < y");
        let ParsedRule::Vor(v) = r else { panic!() };
        assert!(
            matches!(&v.form, VorForm::EqConst { attr, value } if attr == "age" && value == "33")
        );
    }

    #[test]
    fn parses_prefrel_from_registry() {
        let r = rule("x.tag = car & y.tag = car & colors(x.color, y.color) -> x < y");
        let ParsedRule::Vor(v) = r else { panic!() };
        let VorForm::Preference { attr, order } = &v.form else {
            panic!()
        };
        assert_eq!(attr, "color");
        assert!(order.prefers("red", "silver"));
    }

    #[test]
    fn parses_guards() {
        let r = rule("x.tag = car & y.tag = car & x.price < 1000 & x.mileage < y.mileage -> x < y");
        let ParsedRule::Vor(v) = r else { panic!() };
        assert_eq!(v.guards.len(), 1);
        assert_eq!(v.guards[0].attr, "price");
    }

    #[test]
    fn attribute_block_sets_priority_and_weight() {
        let ParsedRule::Vor(v) =
            rule("x.tag = car & y.tag = car & x.m < y.m -> x < y {priority 3}")
        else {
            panic!()
        };
        assert_eq!(v.priority, 3);
        let ParsedRule::Kor(k) =
            rule(r#"x.tag = car & y.tag = car & ftcontains(x, "NYC") -> x < y {weight 2.5}"#)
        else {
            panic!()
        };
        assert_eq!(k.weight, 2.5);
        let ParsedRule::Scoping(s) =
            rule(r#"if true then add ftcontains(car, "clean") {priority 1, weight 0.5}"#)
        else {
            panic!()
        };
        assert_eq!(s.priority, Some(1));
        assert_eq!(s.weight, 0.5);
    }

    #[test]
    fn parsed_vor_behaves_like_builder_vor() {
        let ParsedRule::Vor(parsed) =
            rule(r#"x.tag = car & y.tag = car & x.color = "red" & y.color != "red" -> x < y"#)
        else {
            panic!()
        };
        let red = |k: &str| (k == "color").then(|| AttrValue::Str("red".into()));
        let blue = |k: &str| (k == "color").then(|| AttrValue::Str("blue".into()));
        assert_eq!(parsed.compare("car", "car", &red, &blue), RuleCmp::PreferA);
    }

    #[test]
    fn errors_are_informative() {
        let reg = reg();
        for (src, needle) in [
            ("if pc(car) then add pc(a,b)", "expected"),
            ("if true then explode pc(a,b)", "unknown action"),
            ("x.tag = car -> x < y", "both x.tag"),
            ("x.tag = car & y.tag = truck & x.m < y.m -> x < y", "same"),
            (
                r#"x.tag = c & y.tag = c & x.color = "red" -> x < y"#,
                "matching y",
            ),
            (
                "x.tag = c & y.tag = c & unknownrel(x.a, y.a) -> x < y",
                "unknown preference",
            ),
            (
                "x.tag = c & y.tag = c & x.a < y.b -> x < y",
                "same attribute",
            ),
            (
                r#"if true then add ftcontains(car, "x") trailing"#,
                "expected",
            ),
        ] {
            let err = parse_rule("t", src, &reg).unwrap_err();
            assert!(
                err.message.to_lowercase().contains(&needle.to_lowercase()),
                "{src}: {}",
                err.message
            );
        }
    }

    #[test]
    fn parse_profile_whole_file() {
        let text = r#"
# The Fig. 2 profile
rho2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
rho3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
pi1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" -> x < y {priority 2}
pi2: x.tag = car & y.tag = car & x.mileage < y.mileage -> x < y {priority 1}
pi4: x.tag = car & y.tag = car & ftcontains(x, "best bid") -> x < y
pi5: x.tag = car & y.tag = car & ftcontains(x, "NYC") -> x < y
"#;
        let profile = parse_profile(text, &reg()).unwrap();
        assert_eq!(profile.scoping.len(), 2);
        assert_eq!(profile.vors.len(), 2);
        assert_eq!(profile.kors.len(), 2);
        assert_eq!(profile.scoping[0].id, "rho2");
        assert_eq!(profile.vors[0].priority, 2);
        assert!(
            !profile.check_ambiguity().is_ambiguous(),
            "priorities separate π1/π2"
        );
    }

    #[test]
    fn parse_profile_reports_line_numbers() {
        let text = "\n\nbroken rule here\n";
        let err = parse_profile(text, &reg()).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn unnamed_rules_get_sequential_ids() {
        let text =
            "if true then add ftcontains(car, \"a\")\nif true then add ftcontains(car, \"b\")";
        let profile = parse_profile(text, &reg()).unwrap();
        assert_eq!(profile.scoping[0].id, "r1");
        assert_eq!(profile.scoping[1].id, "r2");
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let text = r##"if true then add ftcontains(car, "has # inside") # trailing comment"##;
        let profile = parse_profile(text, &reg()).unwrap();
        let SrAction::Add(atoms) = &profile.scoping[0].action else {
            panic!()
        };
        assert!(matches!(&atoms[0], Atom::Ft { phrase, .. } if phrase == "has # inside"));
    }
}
