//! User-defined preference relations: strict partial orders over attribute
//! domains (paper §3.2, form (3): `prefRel(x.attr, y.attr) → x ≺ y`, "e.g.,
//! a partial ordering on colors").

use std::collections::{HashMap, HashSet};
use std::fmt;

/// Error raised when the supplied pairs do not form a strict partial order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefCycle {
    /// A value participating in a preference cycle.
    pub value: String,
}

impl fmt::Display for PrefCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "preference relation is cyclic through {:?}", self.value)
    }
}

impl std::error::Error for PrefCycle {}

/// A strict partial order over domain values, stored as its transitive
/// closure for O(1) comparisons. Values compare case-insensitively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrefRel {
    /// better → set of strictly worse values (transitively closed).
    below: HashMap<String, HashSet<String>>,
}

impl PrefRel {
    /// Build from `(better, worse)` pairs. Fails on cycles (a strict
    /// partial order must be irreflexive).
    pub fn new<I, S>(pairs: I) -> Result<Self, PrefCycle>
    where
        I: IntoIterator<Item = (S, S)>,
        S: AsRef<str>,
    {
        let mut below: HashMap<String, HashSet<String>> = HashMap::new();
        for (better, worse) in pairs {
            below
                .entry(norm(better.as_ref()))
                .or_default()
                .insert(norm(worse.as_ref()));
        }
        // Transitive closure (domains are tiny: colors, makes, ...).
        loop {
            let mut added = false;
            let keys: Vec<String> = below.keys().cloned().collect();
            for k in &keys {
                let worse: Vec<String> = below[k].iter().cloned().collect();
                for w in worse {
                    if let Some(wworse) = below.get(&w).cloned() {
                        let entry = below.get_mut(k).expect("key exists");
                        for ww in wworse {
                            added |= entry.insert(ww);
                        }
                    }
                }
            }
            if !added {
                break;
            }
        }
        for (k, worse) in &below {
            if worse.contains(k) {
                return Err(PrefCycle { value: k.clone() });
            }
        }
        Ok(PrefRel { below })
    }

    /// A chain `v1 ≻ v2 ≻ … ≻ vn` (total order on the listed values).
    pub fn chain<S: AsRef<str>>(values: &[S]) -> Self {
        let pairs: Vec<(String, String)> = values
            .windows(2)
            .map(|w| (w[0].as_ref().to_string(), w[1].as_ref().to_string()))
            .collect();
        Self::new(pairs).expect("a chain is acyclic")
    }

    /// Is `a` strictly preferred to `b`?
    pub fn prefers(&self, a: &str, b: &str) -> bool {
        self.below
            .get(&norm(a))
            .is_some_and(|w| w.contains(&norm(b)))
    }

    /// Are `a` and `b` unrelated (neither preferred, not equal)?
    pub fn incomparable(&self, a: &str, b: &str) -> bool {
        norm(a) != norm(b) && !self.prefers(a, b) && !self.prefers(b, a)
    }

    /// All values mentioned by the relation.
    pub fn values(&self) -> HashSet<&str> {
        let mut out: HashSet<&str> = HashSet::new();
        for (k, ws) in &self.below {
            out.insert(k.as_str());
            out.extend(ws.iter().map(String::as_str));
        }
        out
    }

    /// True when the relation relates nothing.
    pub fn is_empty(&self) -> bool {
        self.below.values().all(HashSet::is_empty)
    }

    /// Precompile into a dense id-indexed table: every domain value gets a
    /// dense id, and `prefers` becomes a bit lookup. Values outside the
    /// domain have no id and are never preferred — exactly the behavior of
    /// the map-backed [`PrefRel::prefers`].
    pub fn compile(&self) -> PrefTable {
        let mut values: Vec<&str> = self.values().into_iter().collect();
        values.sort_unstable();
        let n = values.len();
        let ids: HashMap<String, u32> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.to_string(), i as u32))
            .collect();
        let mut bits = vec![false; n * n].into_boxed_slice();
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                bits[i * n + j] = self.prefers(a, b);
            }
        }
        PrefTable { ids, n, bits }
    }
}

/// A [`PrefRel`] precompiled into a dense id-indexed lookup table: domain
/// values map to dense ids once (at key-construction time), after which a
/// `≺_V` preference check is a single array lookup.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrefTable {
    /// normalized value → dense id.
    ids: HashMap<String, u32>,
    /// Domain size.
    n: usize,
    /// `bits[a * n + b]` ⇔ value `a` is strictly preferred to value `b`.
    bits: Box<[bool]>,
}

impl PrefTable {
    /// Dense id of `value` (normalized like [`PrefRel::prefers`] operands),
    /// or `None` when the value is outside the relation's domain.
    pub fn id(&self, value: &str) -> Option<u32> {
        self.ids.get(&norm(value)).copied()
    }

    /// Is the value with id `a` strictly preferred to the value with id
    /// `b`? Ids must come from [`PrefTable::id`] on this table.
    pub fn prefers_ids(&self, a: u32, b: u32) -> bool {
        self.bits[a as usize * self.n + b as usize]
    }

    /// Number of domain values.
    pub fn domain_size(&self) -> usize {
        self.n
    }
}

fn norm(s: &str) -> String {
    s.trim().to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_pairs_and_transitivity() {
        let r = PrefRel::new([("red", "blue"), ("blue", "green")]).unwrap();
        assert!(r.prefers("red", "blue"));
        assert!(r.prefers("blue", "green"));
        assert!(r.prefers("red", "green")); // transitive
        assert!(!r.prefers("green", "red"));
        assert!(!r.prefers("red", "red"));
    }

    #[test]
    fn cycles_rejected() {
        let e = PrefRel::new([("a", "b"), ("b", "c"), ("c", "a")]).unwrap_err();
        assert!(["a", "b", "c"].contains(&e.value.as_str()));
    }

    #[test]
    fn self_loop_rejected() {
        assert!(PrefRel::new([("a", "a")]).is_err());
    }

    #[test]
    fn incomparable_values() {
        let r = PrefRel::new([("red", "blue"), ("red", "green")]).unwrap();
        assert!(r.incomparable("blue", "green"));
        assert!(!r.incomparable("red", "blue"));
        assert!(!r.incomparable("blue", "blue")); // equal, not incomparable
        assert!(r.incomparable("blue", "unknown"));
    }

    #[test]
    fn chain_is_total_on_listed_values() {
        let r = PrefRel::chain(&["red", "black", "silver"]);
        assert!(r.prefers("red", "silver"));
        assert!(r.prefers("black", "silver"));
        assert!(!r.incomparable("red", "black"));
    }

    #[test]
    fn case_insensitive() {
        let r = PrefRel::new([("Red", "Blue")]).unwrap();
        assert!(r.prefers("RED", "blue"));
    }

    #[test]
    fn empty_relation() {
        let r = PrefRel::new(Vec::<(&str, &str)>::new()).unwrap();
        assert!(r.is_empty());
        assert!(r.incomparable("x", "y"));
    }

    #[test]
    fn compiled_table_agrees_on_full_domain() {
        // The paper's car-sale color ordering (§3.2): red ≻ black ≻ white,
        // with an extra branch red ≻ silver.
        let r = PrefRel::new([("red", "black"), ("black", "white"), ("Red", "silver")]).unwrap();
        let t = r.compile();
        let mut domain: Vec<&str> = r.values().into_iter().collect();
        domain.sort_unstable();
        assert_eq!(t.domain_size(), domain.len());
        for a in &domain {
            for b in &domain {
                let (ia, ib) = (t.id(a).unwrap(), t.id(b).unwrap());
                assert_eq!(
                    t.prefers_ids(ia, ib),
                    r.prefers(a, b),
                    "table disagrees with prefRel on ({a}, {b})"
                );
            }
        }
        // Out-of-domain values have no id (map-backed prefers is false).
        assert_eq!(t.id("green"), None);
        // Normalization matches prefers' operand handling.
        assert_eq!(t.id(" RED "), t.id("red"));
    }

    #[test]
    fn values_listing() {
        let r = PrefRel::new([("red", "blue")]).unwrap();
        let v = r.values();
        assert!(v.contains("red") && v.contains("blue"));
        assert_eq!(v.len(), 2);
    }
}
