//! The user profile `Π = (Σ, O_v, O_k)` (paper §4): scoping rules,
//! value-based ordering rules, keyword-based ordering rules, plus the
//! chosen ranking order.

use crate::ambiguity::{detect_ambiguity_with_priorities, AmbiguityReport};
use crate::conflict::{self, ConflictError};
use crate::flock::{personalize, PersonalizedQuery};
use crate::kor::KeywordOrderingRule;
use crate::scoping::ScopingRule;
use crate::vor::ValueOrderingRule;
use pimento_tpq::Tpq;

/// How the three ranking components combine (paper §3.3): `K` = KOR score,
/// `V` = VOR preference, `S` = query score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankOrder {
    /// `K, V, S` — KOR scores first, then VOR preferences, then query
    /// score (the paper's default focus).
    #[default]
    Kvs,
    /// `V, K, S` — VOR preferences first.
    Vks,
}

/// A complete user profile.
#[derive(Debug, Clone, Default)]
pub struct UserProfile {
    /// Scoping rules Σ.
    pub scoping: Vec<ScopingRule>,
    /// Value-based ordering rules O_v.
    pub vors: Vec<ValueOrderingRule>,
    /// Keyword-based ordering rules O_k.
    pub kors: Vec<KeywordOrderingRule>,
    /// Ranking order for answers.
    pub rank_order: RankOrder,
}

impl UserProfile {
    /// Empty profile (personalization becomes the identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: add a scoping rule.
    pub fn with_scoping(mut self, rule: ScopingRule) -> Self {
        self.scoping.push(rule);
        self
    }

    /// Builder: add a value-based ordering rule.
    pub fn with_vor(mut self, rule: ValueOrderingRule) -> Self {
        self.vors.push(rule);
        self
    }

    /// Builder: add a keyword-based ordering rule.
    pub fn with_kor(mut self, rule: KeywordOrderingRule) -> Self {
        self.kors.push(rule);
        self
    }

    /// Builder: set the ranking order.
    pub fn with_rank_order(mut self, order: RankOrder) -> Self {
        self.rank_order = order;
        self
    }

    /// Static analysis of the ordering rules: ambiguity under the current
    /// priorities (§5.2). An ambiguous profile still executes (ambiguous
    /// pairs become incomparable), but the user should be told.
    pub fn check_ambiguity(&self) -> AmbiguityReport {
        detect_ambiguity_with_priorities(&self.vors)
    }

    /// Static analysis of the scoping rules against a query: conflict
    /// graph + application order (§5.1).
    pub fn check_conflicts(
        &self,
        query: &Tpq,
    ) -> Result<conflict::ConflictAnalysis, ConflictError> {
        conflict::analyze(&self.scoping, query)
    }

    /// Enforce the scoping rules on `query`, producing the annotated
    /// single-plan encoding of the query flock.
    pub fn enforce_scoping(&self, query: &Tpq) -> Result<PersonalizedQuery, ConflictError> {
        // Fault point `profile.enforce_scoping`: simulate a rule set whose
        // application order cannot be resolved. Gated on a non-empty rule
        // set — an empty Σ has no rules to conflict, and the serve layer's
        // degraded fallback re-prepares under the empty profile, which
        // must stay injection-free for the fallback to succeed.
        #[cfg(feature = "fault-injection")]
        if !self.scoping.is_empty() && pimento_faults::should_fire("profile.enforce_scoping") {
            return Err(ConflictError {
                cycle: vec!["<fault-injected>".to_string()],
            });
        }
        personalize(query, &self.scoping)
    }

    /// Total KOR weight — the initial `kor-scorebound` of a plan.
    pub fn kor_total_weight(&self) -> f64 {
        crate::kor::total_weight(&self.kors)
    }

    /// Does the profile personalize anything at all?
    pub fn is_empty(&self) -> bool {
        self.scoping.is_empty() && self.vors.is_empty() && self.kors.is_empty()
    }

    /// Merge `other` into `self` (e.g. a session profile on top of a base
    /// profile). Rules from `other` whose id collides with an existing
    /// rule **replace** it — later profiles win; the rank order follows
    /// `other`.
    pub fn merge(mut self, other: UserProfile) -> UserProfile {
        for sr in other.scoping {
            if let Some(slot) = self.scoping.iter_mut().find(|r| r.id == sr.id) {
                *slot = sr;
            } else {
                self.scoping.push(sr);
            }
        }
        for vor in other.vors {
            if let Some(slot) = self.vors.iter_mut().find(|r| r.id == vor.id) {
                *slot = vor;
            } else {
                self.vors.push(vor);
            }
        }
        for kor in other.kors {
            if let Some(slot) = self.kors.iter_mut().find(|r| r.id == kor.id) {
                *slot = kor;
            } else {
                self.kors.push(kor);
            }
        }
        self.rank_order = other.rank_order;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoping::Atom;
    use crate::vor::ValueOrderingRule as Vor;
    use pimento_tpq::parse_tpq;

    #[test]
    fn builder_and_emptiness() {
        let p = UserProfile::new();
        assert!(p.is_empty());
        let p = p
            .with_kor(KeywordOrderingRule::new("k1", "car", "NYC"))
            .with_vor(Vor::prefer_value("v1", "car", "color", "red"))
            .with_scoping(ScopingRule::add(
                "s1",
                vec![],
                vec![Atom::ft("car", "clean")],
            ))
            .with_rank_order(RankOrder::Vks);
        assert!(!p.is_empty());
        assert_eq!(p.rank_order, RankOrder::Vks);
        assert_eq!(p.kor_total_weight(), 1.0);
    }

    #[test]
    fn ambiguity_check_through_profile() {
        let ambiguous = UserProfile::new()
            .with_vor(Vor::prefer_value("pi1", "car", "color", "red"))
            .with_vor(Vor::prefer_smaller("pi2", "car", "mileage"));
        assert!(ambiguous.check_ambiguity().is_ambiguous());
        let fixed = UserProfile::new()
            .with_vor(Vor::prefer_value("pi1", "car", "color", "red").with_priority(2))
            .with_vor(Vor::prefer_smaller("pi2", "car", "mileage").with_priority(1));
        assert!(!fixed.check_ambiguity().is_ambiguous());
    }

    #[test]
    fn scoping_enforcement_through_profile() {
        let q = parse_tpq(r#"//car[ftcontains(., "good")]"#).unwrap();
        let p = UserProfile::new().with_scoping(ScopingRule::add(
            "s1",
            vec![],
            vec![Atom::ft("car", "american")],
        ));
        let pq = p.enforce_scoping(&q).unwrap();
        assert_eq!(pq.flock.applied_rules, vec!["s1"]);
        assert_eq!(pq.optional_keyword_count(), 1);
    }

    #[test]
    fn default_rank_order_is_kvs() {
        assert_eq!(RankOrder::default(), RankOrder::Kvs);
    }

    #[test]
    fn merge_replaces_by_id_and_appends_new() {
        let base = UserProfile::new()
            .with_kor(KeywordOrderingRule::new("k1", "car", "old"))
            .with_vor(Vor::prefer_smaller("v1", "car", "mileage"));
        let session = UserProfile::new()
            .with_kor(KeywordOrderingRule::weighted("k1", "car", "new", 2.0))
            .with_kor(KeywordOrderingRule::new("k2", "car", "extra"))
            .with_rank_order(RankOrder::Vks);
        let merged = base.merge(session);
        assert_eq!(merged.kors.len(), 2);
        assert_eq!(
            merged.kors[0].phrase, "new",
            "session rule replaced the base rule"
        );
        assert_eq!(merged.kors[0].weight, 2.0);
        assert_eq!(merged.vors.len(), 1);
        assert_eq!(merged.rank_order, RankOrder::Vks);
    }
}
