//! Rendering profiles back to the rule language — the inverse of
//! [`crate::parse`], so profiles round-trip through text files.

use crate::kor::KeywordOrderingRule;
use crate::parse::PrefRelRegistry;
use crate::profile::UserProfile;
use crate::scoping::{Atom, ScopingRule, SrAction};
use crate::vor::{PrefOp, ValueOrderingRule, VorForm};
use pimento_tpq::{Predicate, RelOp, Value};
use std::fmt;

/// Rendering failure: something in the profile has no textual form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// A form-(3) VOR uses a preference relation that is not in the
    /// registry; the rule language refers to relations by name.
    UnregisteredPrefRel {
        /// The rule in question.
        rule_id: String,
    },
    /// A rule uses an `ftall`-style predicate atom the rule language does
    /// not express (atoms carry phrases only).
    Unrepresentable {
        /// The rule in question.
        rule_id: String,
    },
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::UnregisteredPrefRel { rule_id } => write!(
                f,
                "rule {rule_id:?} uses a preference relation with no name in the registry"
            ),
            RenderError::Unrepresentable { rule_id } => {
                write!(
                    f,
                    "rule {rule_id:?} cannot be expressed in the rule language"
                )
            }
        }
    }
}

impl std::error::Error for RenderError {}

/// Render a whole profile as a rule file (one labeled rule per line).
pub fn render_profile(
    profile: &UserProfile,
    registry: &PrefRelRegistry,
) -> Result<String, RenderError> {
    let mut out = String::new();
    for sr in &profile.scoping {
        out.push_str(&format!("{}: {}\n", sr.id, render_scoping(sr)?));
    }
    for vor in &profile.vors {
        out.push_str(&format!("{}: {}\n", vor.id, render_vor(vor, registry)?));
    }
    for kor in &profile.kors {
        out.push_str(&format!("{}: {}\n", kor.id, render_kor(kor)));
    }
    Ok(out)
}

/// Render one scoping rule (without its id label).
pub fn render_scoping(rule: &ScopingRule) -> Result<String, RenderError> {
    let cond = if rule.condition.is_empty() {
        "true".to_string()
    } else {
        atoms_text(&rule.condition, &rule.id)?
    };
    let action = match &rule.action {
        SrAction::Add(atoms) => format!("add {}", atoms_text(atoms, &rule.id)?),
        SrAction::Delete(atoms) => format!("remove {}", atoms_text(atoms, &rule.id)?),
        SrAction::Replace { from, with } => format!(
            "replace {} with {}",
            atoms_text(from, &rule.id)?,
            atoms_text(with, &rule.id)?
        ),
        SrAction::RelaxEdge { parent, child } => format!("relax pc({parent}, {child})"),
    };
    let mut text = format!("if {cond} then {action}");
    let mut attrs = Vec::new();
    if let Some(p) = rule.priority {
        attrs.push(format!("priority {p}"));
    }
    if rule.weight != 1.0 {
        attrs.push(format!("weight {}", rule.weight));
    }
    if !attrs.is_empty() {
        text.push_str(&format!(" {{{}}}", attrs.join(", ")));
    }
    Ok(text)
}

fn atoms_text(atoms: &[Atom], rule_id: &str) -> Result<String, RenderError> {
    let parts: Result<Vec<String>, RenderError> =
        atoms.iter().map(|a| atom_text(a, rule_id)).collect();
    Ok(parts?.join(" & "))
}

fn atom_text(atom: &Atom, rule_id: &str) -> Result<String, RenderError> {
    Ok(match atom {
        Atom::Pc { parent, child } => format!("pc({parent}, {child})"),
        Atom::Ad { anc, desc } => format!("ad({anc}, {desc})"),
        Atom::Ft { tag, phrase } => format!("ftcontains({tag}, {phrase:?})"),
        Atom::Cmp { tag, pred } => match pred {
            Predicate::Compare { op, value } => format!("{tag} {op} {}", value_text(value)),
            _ => {
                return Err(RenderError::Unrepresentable {
                    rule_id: rule_id.to_string(),
                })
            }
        },
    })
}

fn value_text(v: &Value) -> String {
    match v {
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                n.to_string()
            }
        }
        Value::Str(s) => format!("{s:?}"),
    }
}

/// Render one value-based ordering rule (without its id label).
pub fn render_vor(
    rule: &ValueOrderingRule,
    registry: &PrefRelRegistry,
) -> Result<String, RenderError> {
    let mut conds = vec![
        format!("x.tag = {}", rule.tag),
        format!("y.tag = {}", rule.tag),
    ];
    for attr in &rule.equal_attrs {
        conds.push(format!("x.{attr} = y.{attr}"));
    }
    for g in &rule.guards {
        conds.push(format!(
            "x.{} {} {}",
            g.attr,
            relop_text(g.op),
            attr_value_text(&g.value)
        ));
    }
    match &rule.form {
        VorForm::EqConst { attr, value } => {
            conds.push(format!("x.{attr} = {value:?}"));
            conds.push(format!("y.{attr} != {value:?}"));
        }
        VorForm::AttrCompare { attr, op } => {
            let sym = match op {
                PrefOp::Lt => "<",
                PrefOp::Gt => ">",
            };
            conds.push(format!("x.{attr} {sym} y.{attr}"));
        }
        VorForm::Preference { attr, order } => {
            let name = registry
                .iter()
                .find(|(_, rel)| *rel == order)
                .map(|(n, _)| n.clone())
                .ok_or_else(|| RenderError::UnregisteredPrefRel {
                    rule_id: rule.id.clone(),
                })?;
            conds.push(format!("{name}(x.{attr}, y.{attr})"));
        }
    }
    let mut text = format!("{} -> x < y", conds.join(" & "));
    if rule.priority != 0 {
        text.push_str(&format!(" {{priority {}}}", rule.priority));
    }
    Ok(text)
}

fn relop_text(op: RelOp) -> &'static str {
    match op {
        RelOp::Lt => "<",
        RelOp::Le => "<=",
        RelOp::Gt => ">",
        RelOp::Ge => ">=",
        RelOp::Eq => "=",
        RelOp::Ne => "!=",
    }
}

fn attr_value_text(v: &crate::vor::AttrValue) -> String {
    match v {
        crate::vor::AttrValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                n.to_string()
            }
        }
        crate::vor::AttrValue::Str(s) => format!("{s:?}"),
    }
}

/// Render one keyword ordering rule (without its id label).
pub fn render_kor(rule: &KeywordOrderingRule) -> String {
    let mut text = format!(
        "x.tag = {tag} & y.tag = {tag} & ftcontains(x, {phrase:?}) -> x < y",
        tag = rule.tag,
        phrase = rule.phrase
    );
    if rule.weight != 1.0 {
        text.push_str(&format!(" {{weight {}}}", rule.weight));
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_profile;
    use crate::prefrel::PrefRel;
    use pimento_tpq::RelOp;

    fn reg() -> PrefRelRegistry {
        let mut r = PrefRelRegistry::new();
        r.insert("colors".into(), PrefRel::chain(&["red", "black"]));
        r
    }

    fn fig2_profile() -> UserProfile {
        UserProfile::new()
            .with_scoping(ScopingRule::add(
                "rho2",
                vec![
                    Atom::pc("car", "description"),
                    Atom::ft("description", "good condition"),
                ],
                vec![Atom::ft("description", "american")],
            ))
            .with_scoping(
                ScopingRule::delete(
                    "rho3",
                    vec![Atom::ft("description", "good condition")],
                    vec![Atom::ft("description", "low mileage")],
                )
                .with_priority(1)
                .with_weight(0.5),
            )
            .with_scoping(ScopingRule::relax_edge("rel", vec![], "car", "description"))
            .with_scoping(ScopingRule::replace(
                "loosen",
                vec![],
                vec![Atom::cmp("price", Predicate::cmp_num(RelOp::Lt, 2000.0))],
                vec![Atom::cmp("price", Predicate::cmp_num(RelOp::Lt, 5000.0))],
            ))
            .with_vor(
                ValueOrderingRule::prefer_value("pi1", "car", "color", "red").with_priority(2),
            )
            .with_vor(ValueOrderingRule::prefer_smaller("pi2", "car", "mileage").with_priority(1))
            .with_vor(ValueOrderingRule::prefer_larger("pi3", "car", "hp").with_equal_attr("make"))
            .with_vor(ValueOrderingRule::prefer_order(
                "po",
                "car",
                "color",
                PrefRel::chain(&["red", "black"]),
            ))
            .with_kor(KeywordOrderingRule::new("pi4", "car", "best bid"))
            .with_kor(KeywordOrderingRule::weighted("pi5", "car", "NYC", 2.0))
    }

    #[test]
    fn profile_roundtrips_through_rule_language() {
        let original = fig2_profile();
        let registry = reg();
        let text = render_profile(&original, &registry).unwrap();
        let reparsed = parse_profile(&text, &registry).unwrap();
        assert_eq!(reparsed.scoping.len(), original.scoping.len());
        assert_eq!(reparsed.vors.len(), original.vors.len());
        assert_eq!(reparsed.kors.len(), original.kors.len());
        // Ids, priorities, and weights survive.
        for (a, b) in original.scoping.iter().zip(&reparsed.scoping) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.priority, b.priority);
            assert_eq!(a.weight, b.weight);
            assert_eq!(a.condition, b.condition);
            assert_eq!(a.action, b.action);
        }
        for (a, b) in original.vors.iter().zip(&reparsed.vors) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.priority, b.priority);
            assert_eq!(a.tag, b.tag);
            assert_eq!(a.equal_attrs, b.equal_attrs);
        }
        for (a, b) in original.kors.iter().zip(&reparsed.kors) {
            assert_eq!(a.phrase, b.phrase);
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn unregistered_prefrel_errors() {
        let p = UserProfile::new().with_vor(ValueOrderingRule::prefer_order(
            "po",
            "car",
            "color",
            PrefRel::chain(&["a", "b", "c"]),
        ));
        let err = render_profile(&p, &PrefRelRegistry::new()).unwrap_err();
        assert!(matches!(err, RenderError::UnregisteredPrefRel { .. }));
        assert!(err.to_string().contains("po"));
    }

    #[test]
    fn individual_renders_look_right() {
        let sr = ScopingRule::delete(
            "r",
            vec![Atom::ft("abs", "data mining")],
            vec![Atom::ft("abs", "data mining")],
        );
        assert_eq!(
            render_scoping(&sr).unwrap(),
            r#"if ftcontains(abs, "data mining") then remove ftcontains(abs, "data mining")"#
        );
        let kor = KeywordOrderingRule::new("k", "car", "NYC");
        assert_eq!(
            render_kor(&kor),
            r#"x.tag = car & y.tag = car & ftcontains(x, "NYC") -> x < y"#
        );
        let vor = ValueOrderingRule::prefer_smaller("v", "car", "mileage");
        assert_eq!(
            render_vor(&vor, &PrefRelRegistry::new()).unwrap(),
            "x.tag = car & y.tag = car & x.mileage < y.mileage -> x < y"
        );
    }
}

#[cfg(test)]
mod roundtrip_props {
    use super::*;
    use crate::parse::parse_profile;
    use crate::prefrel::PrefRel;
    use pimento_tpq::RelOp;
    use proptest::prelude::*;

    const TAGS: &[&str] = &["car", "person", "abs"];
    const ATTRS: &[&str] = &["color", "mileage", "hp", "age"];
    const PHRASES: &[&str] = &["good condition", "NYC", "best bid", "data mining"];

    fn atom_strategy() -> impl Strategy<Value = Atom> {
        prop_oneof![
            (0usize..TAGS.len(), 0usize..TAGS.len()).prop_map(|(a, b)| Atom::pc(TAGS[a], TAGS[b])),
            (0usize..TAGS.len(), 0usize..TAGS.len()).prop_map(|(a, b)| Atom::ad(TAGS[a], TAGS[b])),
            (0usize..TAGS.len(), 0usize..PHRASES.len())
                .prop_map(|(t, p)| Atom::ft(TAGS[t], PHRASES[p])),
            (0usize..ATTRS.len(), 0u32..5000)
                .prop_map(|(a, c)| Atom::cmp(ATTRS[a], Predicate::cmp_num(RelOp::Lt, c as f64))),
        ]
    }

    fn sr_strategy(n: usize) -> impl Strategy<Value = ScopingRule> {
        (
            proptest::collection::vec(atom_strategy(), 0..3),
            proptest::collection::vec(atom_strategy(), 1..3),
            any::<bool>(),
            proptest::option::of(0u32..5),
        )
            .prop_map(move |(cond, concl, is_add, prio)| {
                let mut r = if is_add {
                    ScopingRule::add(&format!("sr{n}"), cond, concl)
                } else {
                    ScopingRule::delete(&format!("sr{n}"), cond, concl)
                };
                r.priority = prio;
                r
            })
    }

    fn vor_strategy(n: usize) -> impl Strategy<Value = ValueOrderingRule> {
        (0usize..3, 0usize..TAGS.len(), 0usize..ATTRS.len(), 0u32..4).prop_map(
            move |(form, tag, attr, prio)| {
                let id = format!("vor{n}");
                let r = match form {
                    0 => ValueOrderingRule::prefer_value(&id, TAGS[tag], ATTRS[attr], "red"),
                    1 => ValueOrderingRule::prefer_smaller(&id, TAGS[tag], ATTRS[attr]),
                    _ => ValueOrderingRule::prefer_order(
                        &id,
                        TAGS[tag],
                        ATTRS[attr],
                        PrefRel::chain(&["red", "black"]),
                    ),
                };
                r.with_priority(prio)
            },
        )
    }

    proptest! {
        /// render → parse → render is a fixed point for arbitrary profiles.
        #[test]
        fn render_parse_render_fixed_point(
            srs in proptest::collection::vec(sr_strategy(0), 0..3),
            vors in proptest::collection::vec(vor_strategy(0), 0..3),
            kor_w in 1u32..5,
        ) {
            let mut registry = PrefRelRegistry::new();
            registry.insert("order0".into(), PrefRel::chain(&["red", "black"]));
            let mut profile = UserProfile::new();
            for (i, mut sr) in srs.into_iter().enumerate() {
                sr.id = format!("sr{i}");
                profile = profile.with_scoping(sr);
            }
            for (i, mut vor) in vors.into_iter().enumerate() {
                vor.id = format!("vor{i}");
                profile = profile.with_vor(vor);
            }
            profile = profile.with_kor(KeywordOrderingRule::weighted(
                "kor0", "car", "NYC", kor_w as f64,
            ));
            let once = render_profile(&profile, &registry).unwrap();
            let reparsed = parse_profile(&once, &registry)
                .unwrap_or_else(|e| panic!("rendered profile must reparse: {e}\n{once}"));
            let twice = render_profile(&reparsed, &registry).unwrap();
            prop_assert_eq!(once, twice);
        }
    }
}
