//! Scoping rules (SRs), paper §3.1: `add` / `delete` / `replace` rewritings
//! guarded by a condition the query must subsume.
//!
//! Conditions and conclusions are conjunctions of **atoms** over element
//! tags — exactly the vocabulary of the paper's Fig. 2 rules:
//! `pc(car, description)`, `ftcontains(description, "low mileage")`,
//! `cmp(price, <, 2000)`. The condition is *subsumed by* the query when the
//! query's pattern satisfies each atom (its structure and predicates imply
//! them); applying a rule grafts or prunes the corresponding pieces of the
//! pattern.

use pimento_tpq::{contains as tpq_implies_pred, Axis, Predicate, Tpq, TpqNodeId};

// `contains` from pimento-tpq is pattern-level; atom-level checks reuse the
// predicate implication helper below.
use pimento_tpq::implies as pred_implies;

/// One atom of a rule condition or conclusion.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `pc(parent, child)` — a parent-child structural predicate.
    Pc {
        /// Parent tag.
        parent: String,
        /// Child tag.
        child: String,
    },
    /// `ad(anc, desc)` — an ancestor-descendant structural predicate.
    Ad {
        /// Ancestor tag.
        anc: String,
        /// Descendant tag.
        desc: String,
    },
    /// `ftcontains(tag, "phrase")`.
    Ft {
        /// The tag of the node carrying the predicate.
        tag: String,
        /// The phrase.
        phrase: String,
    },
    /// `cmp(tag, op, value)` — constraint predicate on node content.
    Cmp {
        /// The tag of the node carrying the predicate.
        tag: String,
        /// The predicate (operator + constant).
        pred: Predicate,
    },
}

impl Atom {
    /// `pc(parent, child)`.
    pub fn pc(parent: &str, child: &str) -> Atom {
        Atom::Pc {
            parent: parent.to_string(),
            child: child.to_string(),
        }
    }

    /// `ad(anc, desc)`.
    pub fn ad(anc: &str, desc: &str) -> Atom {
        Atom::Ad {
            anc: anc.to_string(),
            desc: desc.to_string(),
        }
    }

    /// `ftcontains(tag, phrase)`.
    pub fn ft(tag: &str, phrase: &str) -> Atom {
        Atom::Ft {
            tag: tag.to_string(),
            phrase: phrase.to_string(),
        }
    }

    /// `cmp(tag, op, value)`.
    pub fn cmp(tag: &str, pred: Predicate) -> Atom {
        Atom::Cmp {
            tag: tag.to_string(),
            pred,
        }
    }
}

/// What a rule does once its condition fires.
#[derive(Debug, Clone, PartialEq)]
pub enum SrAction {
    /// Narrow the query by adding predicates.
    Add(Vec<Atom>),
    /// Broaden the query by removing predicates.
    Delete(Vec<Atom>),
    /// Replace predicates `from` with (typically weaker) `with`.
    Replace {
        /// Atoms removed.
        from: Vec<Atom>,
        /// Atoms added.
        with: Vec<Atom>,
    },
    /// Broaden the query structurally: relax `pc(parent, child)` edges to
    /// `ad(parent, child)` — the FleXPath-style relaxation the paper lists
    /// first among scoping-rule effects (§3: "a parent-child relationship
    /// may be relaxed to ancestor-descendant").
    RelaxEdge {
        /// Parent tag of the edges to relax.
        parent: String,
        /// Child tag of the edges to relax.
        child: String,
    },
}

/// One scoping rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopingRule {
    /// Identifier for diagnostics (ρ1, ρ2, …).
    pub id: String,
    /// Condition atoms; empty = `true` (always applicable).
    pub condition: Vec<Atom>,
    /// The rewriting.
    pub action: SrAction,
    /// Optional user priority; **smaller applies earlier**. Needed when
    /// conflicts are cyclic (§5.1).
    pub priority: Option<u32>,
    /// Weight scaling the score contribution of this rule's optional
    /// predicates — the paper's §8 future-work extension ("using weights
    /// to perform a fine-tuning of the application of the SRs"). 1.0 by
    /// default.
    pub weight: f64,
}

impl ScopingRule {
    /// An `add` rule.
    pub fn add(id: &str, condition: Vec<Atom>, conclusion: Vec<Atom>) -> Self {
        ScopingRule {
            id: id.to_string(),
            condition,
            action: SrAction::Add(conclusion),
            priority: None,
            weight: 1.0,
        }
    }

    /// A `delete` rule.
    pub fn delete(id: &str, condition: Vec<Atom>, conclusion: Vec<Atom>) -> Self {
        ScopingRule {
            id: id.to_string(),
            condition,
            action: SrAction::Delete(conclusion),
            priority: None,
            weight: 1.0,
        }
    }

    /// A `replace` rule.
    pub fn replace(id: &str, condition: Vec<Atom>, from: Vec<Atom>, with: Vec<Atom>) -> Self {
        ScopingRule {
            id: id.to_string(),
            condition,
            action: SrAction::Replace { from, with },
            priority: None,
            weight: 1.0,
        }
    }

    /// A `relax` rule: `pc(parent, child)` edges become `ad` edges.
    pub fn relax_edge(id: &str, condition: Vec<Atom>, parent: &str, child: &str) -> Self {
        ScopingRule {
            id: id.to_string(),
            condition,
            action: SrAction::RelaxEdge {
                parent: parent.to_string(),
                child: child.to_string(),
            },
            priority: None,
            weight: 1.0,
        }
    }

    /// Builder: set a priority (smaller applies earlier).
    pub fn with_priority(mut self, p: u32) -> Self {
        self.priority = Some(p);
        self
    }

    /// Builder: set the weight of this rule's optional score contribution
    /// (must be positive).
    pub fn with_weight(mut self, w: f64) -> Self {
        assert!(w > 0.0, "scoping rule weight must be positive");
        self.weight = w;
        self
    }

    /// Is the rule applicable to `query` (condition subsumed by the query)?
    pub fn applicable(&self, query: &Tpq) -> bool {
        self.condition.iter().all(|a| atom_satisfied(query, a))
    }

    /// Apply the rule to `query` (does **not** re-check applicability).
    /// Returns the list of concrete edits for diagnostics.
    pub fn apply(&self, query: &mut Tpq) -> Vec<Edit> {
        let mut edits = Vec::new();
        match &self.action {
            SrAction::Add(atoms) => {
                for a in atoms {
                    edits.extend(add_atom(query, a));
                }
            }
            SrAction::Delete(atoms) => {
                for a in atoms {
                    edits.extend(delete_atom(query, a));
                }
            }
            SrAction::Replace { from, with } => {
                for a in from {
                    edits.extend(delete_atom(query, a));
                }
                for a in with {
                    edits.extend(add_atom(query, a));
                }
            }
            SrAction::RelaxEdge { parent, child } => {
                edits.extend(relax_edges(query, parent, child));
            }
        }
        edits
    }

    /// Apply to a clone, returning the rewritten query (the paper's `ρ(Q)`).
    pub fn applied(&self, query: &Tpq) -> Tpq {
        let mut out = query.clone();
        self.apply(&mut out);
        out
    }
}

/// A concrete edit performed by a rule application (for explain output).
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// A structural node was added.
    AddedNode {
        /// Tag of the new node.
        tag: String,
        /// Tag of the node it was attached under.
        under: String,
        /// The edge axis used.
        axis: Axis,
    },
    /// A predicate was added to a node.
    AddedPredicate {
        /// Tag of the node.
        tag: String,
        /// The predicate.
        pred: Predicate,
    },
    /// A predicate was removed from a node.
    RemovedPredicate {
        /// Tag of the node.
        tag: String,
        /// The predicate.
        pred: Predicate,
    },
    /// A leaf node was removed.
    RemovedNode {
        /// Tag of the removed node.
        tag: String,
    },
    /// A `pc` edge was relaxed to `ad`.
    RelaxedEdge {
        /// Parent tag.
        parent: String,
        /// Child tag.
        child: String,
    },
}

/// Does the query's pattern satisfy (imply) the atom?
pub fn atom_satisfied(query: &Tpq, atom: &Atom) -> bool {
    match atom {
        Atom::Pc { parent, child } => query.node_ids().any(|id| {
            query.node(id).tag.matches(parent)
                && query
                    .node(id)
                    .children
                    .iter()
                    .any(|&c| query.node(c).axis == Axis::Child && tag_is(query, c, child))
        }),
        Atom::Ad { anc, desc } => query.node_ids().any(|id| {
            query.node(id).tag.matches(anc)
                && query
                    .descendants(id)
                    .iter()
                    .any(|&d| tag_is(query, d, desc))
        }),
        Atom::Ft { tag, phrase } => {
            let want = Predicate::ft(phrase.clone());
            nodes_with_tag(query, tag).iter().any(|&id| {
                query
                    .node(id)
                    .predicates
                    .iter()
                    .any(|p| pred_implies(p, &want))
            })
        }
        Atom::Cmp { tag, pred } => nodes_with_tag(query, tag).iter().any(|&id| {
            query
                .node(id)
                .predicates
                .iter()
                .any(|p| pred_implies(p, pred))
        }),
    }
}

fn tag_is(query: &Tpq, id: TpqNodeId, tag: &str) -> bool {
    query.node(id).tag.name() == Some(tag)
}

fn nodes_with_tag(query: &Tpq, tag: &str) -> Vec<TpqNodeId> {
    query.find_all_by_tag(tag)
}

/// Add an atom to the query. Structural atoms attach a new child under the
/// *first* node with the parent tag (creating it under the distinguished
/// node if the parent tag itself is absent — keeping the result a connected
/// TPQ, as §3.1 requires). Predicate atoms attach to the first node with
/// the tag, creating a child of the distinguished node when absent.
pub fn add_atom(query: &mut Tpq, atom: &Atom) -> Vec<Edit> {
    let mut edits = Vec::new();
    match atom {
        Atom::Pc { parent, child }
        | Atom::Ad {
            anc: parent,
            desc: child,
        } => {
            let axis = if matches!(atom, Atom::Pc { .. }) {
                Axis::Child
            } else {
                Axis::Descendant
            };
            if atom_satisfied(query, atom) {
                return edits; // already present — adding is a no-op
            }
            let anchor = match query.find_by_tag(parent) {
                Some(id) => id,
                None => {
                    let id = query.add_child(query.distinguished(), Axis::Descendant, parent);
                    edits.push(Edit::AddedNode {
                        tag: parent.clone(),
                        under: tag_name(query, query.node(id).parent.expect("child")),
                        axis: Axis::Descendant,
                    });
                    id
                }
            };
            query.add_child(anchor, axis, child);
            edits.push(Edit::AddedNode {
                tag: child.clone(),
                under: parent.clone(),
                axis,
            });
        }
        Atom::Ft { tag, phrase } => {
            let pred = Predicate::ft(phrase.clone());
            let target = ensure_node(query, tag, &mut edits);
            if !query.node(target).predicates.contains(&pred) {
                query.add_predicate(target, pred.clone());
                edits.push(Edit::AddedPredicate {
                    tag: tag.clone(),
                    pred,
                });
            }
        }
        Atom::Cmp { tag, pred } => {
            let target = ensure_node(query, tag, &mut edits);
            if !query.node(target).predicates.contains(pred) {
                query.add_predicate(target, pred.clone());
                edits.push(Edit::AddedPredicate {
                    tag: tag.clone(),
                    pred: pred.clone(),
                });
            }
        }
    }
    edits
}

fn ensure_node(query: &mut Tpq, tag: &str, edits: &mut Vec<Edit>) -> TpqNodeId {
    match query.find_by_tag(tag) {
        Some(id) => id,
        None => {
            let under = tag_name(query, query.distinguished());
            let id = query.add_child(query.distinguished(), Axis::Descendant, tag);
            edits.push(Edit::AddedNode {
                tag: tag.to_string(),
                under,
                axis: Axis::Descendant,
            });
            id
        }
    }
}

fn tag_name(query: &Tpq, id: TpqNodeId) -> String {
    query.node(id).tag.to_string()
}

/// Delete an atom from the query: predicate atoms remove **all** matching
/// predicate occurrences on nodes with the tag; structural atoms remove the
/// matching child when it has become a bare leaf (no predicates, no
/// children, not distinguished).
pub fn delete_atom(query: &mut Tpq, atom: &Atom) -> Vec<Edit> {
    let mut edits = Vec::new();
    match atom {
        Atom::Ft { tag, phrase } => {
            let want = Predicate::ft(phrase.clone());
            remove_matching_preds(query, tag, &want, &mut edits);
        }
        Atom::Cmp { tag, pred } => {
            remove_matching_preds(query, tag, pred, &mut edits);
        }
        Atom::Pc { parent, child }
        | Atom::Ad {
            anc: parent,
            desc: child,
        } => {
            // Remove a bare leaf `child` attached under a `parent` node.
            let victim = query.node_ids().find(|&id| {
                tag_is(query, id, child)
                    && id != query.root()
                    && id != query.distinguished()
                    && query.node(id).children.is_empty()
                    && query.node(id).predicates.is_empty()
                    && query
                        .node(id)
                        .parent
                        .is_some_and(|p| query.node(p).tag.matches(parent))
            });
            if let Some(id) = victim {
                query.remove_leaf(id);
                edits.push(Edit::RemovedNode { tag: child.clone() });
            }
        }
    }
    edits
}

fn remove_matching_preds(query: &mut Tpq, tag: &str, want: &Predicate, edits: &mut Vec<Edit>) {
    for id in nodes_with_tag(query, tag) {
        loop {
            let pos = query
                .node(id)
                .predicates
                .iter()
                .position(|p| p == want || pred_implies(p, want));
            match pos {
                Some(i) => {
                    let removed = query.remove_predicate(id, i);
                    edits.push(Edit::RemovedPredicate {
                        tag: tag.to_string(),
                        pred: removed,
                    });
                }
                None => break,
            }
        }
    }
}

/// Relax every `pc(parent, child)` edge in the query to `ad`.
pub fn relax_edges(query: &mut Tpq, parent: &str, child: &str) -> Vec<Edit> {
    let mut edits = Vec::new();
    let targets: Vec<TpqNodeId> = query
        .node_ids()
        .filter(|&id| {
            query.node(id).axis == Axis::Child
                && query.node(id).tag.name() == Some(child)
                && query
                    .node(id)
                    .parent
                    .is_some_and(|p| query.node(p).tag.matches(parent))
        })
        .collect();
    for id in targets {
        query.node_mut(id).axis = Axis::Descendant;
        edits.push(Edit::RelaxedEdge {
            parent: parent.to_string(),
            child: child.to_string(),
        });
    }
    edits
}

/// Pattern-level subsumption (exposed for profiles whose conditions are
/// full patterns rather than atom lists): does `query` subsume `cond`?
pub fn query_subsumes(cond: &Tpq, query: &Tpq) -> bool {
    tpq_implies_pred(cond, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_tpq::{parse_tpq, RelOp};

    /// The running example query Q (Fig. 2).
    fn query_q() -> Tpq {
        parse_tpq(
            r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
        )
        .unwrap()
    }

    /// ρ1: if pc(car, description) & ftcontains(description, "low mileage")
    /// then remove ftcontains(description, "good condition").
    fn rho1() -> ScopingRule {
        ScopingRule::delete(
            "rho1",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "low mileage"),
            ],
            vec![Atom::ft("description", "good condition")],
        )
    }

    /// ρ2: if pc(car, description) & ftcontains(description, "good
    /// condition") then add ftcontains(description, "american").
    fn rho2() -> ScopingRule {
        ScopingRule::add(
            "rho2",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "american")],
        )
    }

    /// ρ3: if pc(car, description) & ftcontains(description, "good
    /// condition") then remove ftcontains(description, "low mileage").
    fn rho3() -> ScopingRule {
        ScopingRule::delete(
            "rho3",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "low mileage")],
        )
    }

    #[test]
    fn applicability_of_paper_rules() {
        let q = query_q();
        assert!(rho1().applicable(&q));
        assert!(rho2().applicable(&q));
        assert!(rho3().applicable(&q));
    }

    #[test]
    fn rho1_conflicts_with_rho2_result() {
        // Applying ρ1 removes "good condition", making ρ2 inapplicable —
        // the paper's motivating conflict.
        let q = query_q();
        let q1 = rho1().applied(&q);
        assert!(!rho2().applicable(&q1));
        // Applying ρ2 first leaves ρ1 applicable.
        let q2 = rho2().applied(&q);
        assert!(rho1().applicable(&q2));
    }

    #[test]
    fn add_rule_grafts_predicate() {
        let q = query_q();
        let q2 = rho2().applied(&q);
        let d = q2.find_by_tag("description").unwrap();
        assert_eq!(q2.node(d).predicates.len(), 3);
        assert!(q2.node(d).predicates.contains(&Predicate::ft("american")));
    }

    #[test]
    fn delete_rule_removes_predicate() {
        let q = query_q();
        let q1 = rho3().applied(&q);
        let d = q1.find_by_tag("description").unwrap();
        assert_eq!(q1.node(d).predicates.len(), 1);
        assert!(!q1
            .node(d)
            .predicates
            .contains(&Predicate::ft("low mileage")));
    }

    #[test]
    fn replace_rule_swaps_predicates() {
        // Replace price < 2000 with price < 5000 (weaker).
        let r = ScopingRule::replace(
            "loosen",
            vec![Atom::cmp("price", Predicate::cmp_num(RelOp::Lt, 2000.0))],
            vec![Atom::cmp("price", Predicate::cmp_num(RelOp::Lt, 2000.0))],
            vec![Atom::cmp("price", Predicate::cmp_num(RelOp::Lt, 5000.0))],
        );
        let q = query_q();
        assert!(r.applicable(&q));
        let q2 = r.applied(&q);
        let p = q2.find_by_tag("price").unwrap();
        assert_eq!(
            q2.node(p).predicates,
            vec![Predicate::cmp_num(RelOp::Lt, 5000.0)]
        );
    }

    #[test]
    fn condition_true_always_applies() {
        let r = ScopingRule::add("always", vec![], vec![Atom::ft("car", "clean")]);
        assert!(r.applicable(&query_q()));
        assert!(r.applicable(&parse_tpq("//anything").unwrap()));
    }

    #[test]
    fn condition_with_implied_predicate() {
        // Condition requires ftcontains(description, "condition"); the
        // query's "good condition" implies it.
        let r = ScopingRule::add(
            "implied",
            vec![Atom::ft("description", "condition")],
            vec![Atom::ft("description", "x")],
        );
        assert!(r.applicable(&query_q()));
        // But not the other way around.
        let r2 = ScopingRule::add(
            "notimplied",
            vec![Atom::ft("description", "excellent condition")],
            vec![],
        );
        assert!(!r2.applicable(&query_q()));
    }

    #[test]
    fn ad_condition_satisfied_by_pc_edge() {
        let q = query_q(); // car/description is a pc edge
        assert!(atom_satisfied(&q, &Atom::ad("car", "description")));
        assert!(atom_satisfied(&q, &Atom::pc("car", "description")));
        assert!(!atom_satisfied(&q, &Atom::pc("car", "owner")));
    }

    #[test]
    fn cmp_condition_uses_implication() {
        let q = query_q(); // price < 2000
        assert!(atom_satisfied(
            &q,
            &Atom::cmp("price", Predicate::cmp_num(RelOp::Lt, 3000.0))
        ));
        assert!(!atom_satisfied(
            &q,
            &Atom::cmp("price", Predicate::cmp_num(RelOp::Lt, 1000.0))
        ));
    }

    #[test]
    fn add_structural_atom_creates_node() {
        let r = ScopingRule::add(
            "loc",
            vec![],
            vec![Atom::pc("car", "location"), Atom::ft("location", "NYC")],
        );
        let q = r.applied(&query_q());
        let l = q.find_by_tag("location").unwrap();
        assert_eq!(q.node(l).axis, Axis::Child);
        assert!(q.node(l).predicates.contains(&Predicate::ft("NYC")));
    }

    #[test]
    fn add_existing_structure_is_noop() {
        let r = ScopingRule::add("dup", vec![], vec![Atom::pc("car", "price")]);
        let q = query_q();
        let q2 = r.applied(&q);
        assert_eq!(q2.len(), q.len());
    }

    #[test]
    fn delete_structural_atom_removes_bare_leaf() {
        let mut q = parse_tpq("//car[./owner and ./price < 100]").unwrap();
        let r = ScopingRule::delete("noowner", vec![], vec![Atom::pc("car", "owner")]);
        r.apply(&mut q);
        assert!(q.find_by_tag("owner").is_none());
        // price is kept (it has a predicate, not a bare leaf)
        let r2 = ScopingRule::delete("noprice", vec![], vec![Atom::pc("car", "price")]);
        r2.apply(&mut q);
        assert!(q.find_by_tag("price").is_some());
    }

    #[test]
    fn edits_are_reported() {
        let edits = rho2().apply(&mut query_q());
        assert_eq!(edits.len(), 1);
        assert!(matches!(&edits[0], Edit::AddedPredicate { tag, .. } if tag == "description"));
        let edits = rho3().apply(&mut query_q());
        assert!(matches!(&edits[0], Edit::RemovedPredicate { tag, .. } if tag == "description"));
    }

    #[test]
    fn missing_anchor_attaches_under_distinguished() {
        let mut q = parse_tpq("//person").unwrap();
        add_atom(&mut q, &Atom::ft("address", "Phoenix"));
        let a = q.find_by_tag("address").unwrap();
        assert_eq!(q.node(a).parent, Some(q.distinguished()));
        assert!(q.node(a).predicates.contains(&Predicate::ft("Phoenix")));
    }
}

#[cfg(test)]
mod relax_tests {
    use super::*;
    use pimento_tpq::parse_tpq;

    #[test]
    fn relax_edge_changes_pc_to_ad() {
        let mut q = parse_tpq("//car/price[. < 100]").unwrap();
        let r = ScopingRule::relax_edge("rel", vec![Atom::pc("car", "price")], "car", "price");
        assert!(r.applicable(&q));
        let edits = r.apply(&mut q);
        assert_eq!(
            edits,
            vec![Edit::RelaxedEdge {
                parent: "car".into(),
                child: "price".into()
            }]
        );
        let p = q.find_by_tag("price").unwrap();
        assert_eq!(q.node(p).axis, Axis::Descendant);
    }

    #[test]
    fn relax_edge_is_idempotent() {
        let mut q = parse_tpq("//car//price").unwrap();
        let r = ScopingRule::relax_edge("rel", vec![], "car", "price");
        assert!(r.apply(&mut q).is_empty(), "already ad: nothing to relax");
    }

    #[test]
    fn relax_edge_only_touches_named_pair() {
        let mut q = parse_tpq("//car[./price and ./color]").unwrap();
        ScopingRule::relax_edge("rel", vec![], "car", "price").apply(&mut q);
        let p = q.find_by_tag("price").unwrap();
        let c = q.find_by_tag("color").unwrap();
        assert_eq!(q.node(p).axis, Axis::Descendant);
        assert_eq!(q.node(c).axis, Axis::Child);
    }

    #[test]
    fn relaxed_query_is_a_broadening() {
        use pimento_tpq::contains;
        let q = parse_tpq("//car/price").unwrap();
        let relaxed = ScopingRule::relax_edge("rel", vec![], "car", "price").applied(&q);
        assert!(
            contains(&relaxed, &q),
            "relaxation must contain the original"
        );
        assert!(!contains(&q, &relaxed));
    }
}
