//! Thesaurus-driven keyword expansion — the extension §7.1 sets aside
//! ("we did not consider thesauri or ontologies to expand the set of
//! keywords included in the query").
//!
//! Expansion composes cleanly with the paper's own machinery: for every
//! keyword predicate of the query that has synonyms, the thesaurus
//! produces an `add` scoping rule attaching the synonym as an *optional*
//! score contributor (the standard SR plan encoding). Answers matching
//! only a synonym surface, ranked below answers matching the original —
//! exactly the graceful degradation the paper wants from broadening rules.
//! Synonym contributions default to half weight (a synonym match is weaker
//! evidence), using the weighted-SR extension of §8.

use crate::scoping::{Atom, ScopingRule};
use pimento_tpq::{Predicate, Tpq};
use std::collections::HashMap;

/// A symmetric-free synonym table: each entry maps a phrase to the
/// phrases a search may substitute for it (direction matters — "auto" may
/// expand to "car" without the reverse).
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    synonyms: HashMap<String, Vec<String>>,
    /// Weight given to generated rules (defaults to 0.5).
    weight: f64,
}

impl Thesaurus {
    /// Empty thesaurus.
    pub fn new() -> Self {
        Thesaurus {
            synonyms: HashMap::new(),
            weight: 0.5,
        }
    }

    /// Builder: set the weight of generated rules (must be positive).
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "thesaurus weight must be positive");
        self.weight = weight;
        self
    }

    /// Register `synonyms` for `phrase` (case-insensitive keys; appends).
    pub fn add<S: AsRef<str>>(&mut self, phrase: &str, synonyms: &[S]) -> &mut Self {
        self.synonyms
            .entry(phrase.trim().to_lowercase())
            .or_default()
            .extend(synonyms.iter().map(|s| s.as_ref().to_string()));
        self
    }

    /// Synonyms registered for `phrase`.
    pub fn lookup(&self, phrase: &str) -> &[String] {
        self.synonyms
            .get(&phrase.trim().to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of head phrases.
    pub fn len(&self) -> usize {
        self.synonyms.len()
    }

    /// Whether the thesaurus is empty.
    pub fn is_empty(&self) -> bool {
        self.synonyms.is_empty()
    }

    /// Generate expansion scoping rules for `query`: one `add` rule per
    /// (keyword predicate, synonym) pair, conditioned on the original
    /// predicate so the rule only fires for queries that actually ask for
    /// the expanded phrase.
    pub fn expansion_rules(&self, query: &Tpq) -> Vec<ScopingRule> {
        let mut out = Vec::new();
        for id in query.node_ids() {
            let node = query.node(id);
            let Some(tag) = node.tag.name() else { continue };
            for pred in &node.predicates {
                let Predicate::FtContains { phrase } = pred else {
                    continue;
                };
                for (i, syn) in self.lookup(phrase).iter().enumerate() {
                    out.push(
                        ScopingRule::add(
                            &format!("syn-{tag}-{}-{}", sanitize(phrase), i + 1),
                            vec![Atom::ft(tag, phrase)],
                            vec![Atom::ft(tag, syn)],
                        )
                        .with_weight(self.weight),
                    );
                }
            }
        }
        out
    }
}

fn sanitize(phrase: &str) -> String {
    phrase
        .chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flock::personalize;
    use crate::scoping::SrAction;
    use pimento_tpq::parse_tpq;

    fn thesaurus() -> Thesaurus {
        let mut t = Thesaurus::new();
        t.add("good condition", &["well maintained", "excellent shape"]);
        t.add("cheap", &["affordable"]);
        t
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let t = thesaurus();
        assert_eq!(t.lookup("Good Condition").len(), 2);
        assert_eq!(t.lookup("unknown").len(), 0);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn expansion_rules_match_query_keywords() {
        let t = thesaurus();
        let q = parse_tpq(r#"//car[ftcontains(./description, "good condition")]"#).unwrap();
        let rules = t.expansion_rules(&q);
        assert_eq!(rules.len(), 2, "two synonyms for the one matching phrase");
        for r in &rules {
            assert!(r.applicable(&q));
            assert_eq!(r.weight, 0.5);
            assert!(matches!(&r.action, SrAction::Add(atoms)
                if matches!(&atoms[0], Atom::Ft { tag, .. } if tag == "description")));
        }
        // No rules for keywords not in the thesaurus.
        let q2 = parse_tpq(r#"//car[ftcontains(., "rusty")]"#).unwrap();
        assert!(t.expansion_rules(&q2).is_empty());
    }

    #[test]
    fn expansion_feeds_the_flock_encoding() {
        let t = thesaurus();
        let q = parse_tpq(r#"//car[ftcontains(./description, "good condition")]"#).unwrap();
        let rules = t.expansion_rules(&q);
        let pq = personalize(&q, &rules).unwrap();
        assert_eq!(pq.optional_keyword_count(), 2);
        // Synonym predicates carry the reduced weight.
        let d = pq.tpq.find_by_tag("description").unwrap();
        let weighted: Vec<f64> = pq
            .tpq
            .node(d)
            .predicates
            .iter()
            .enumerate()
            .filter(|&(i, _)| pq.pred_is_optional(d, i))
            .map(|(i, _)| pq.pred_weight(d, i))
            .collect();
        assert_eq!(weighted, vec![0.5, 0.5]);
    }

    #[test]
    fn custom_weight() {
        let mut t = Thesaurus::new().with_weight(0.25);
        t.add("a", &["b"]);
        let q = parse_tpq(r#"//x[ftcontains(., "a")]"#).unwrap();
        assert_eq!(t.expansion_rules(&q)[0].weight, 0.25);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = Thesaurus::new().with_weight(0.0);
    }
}
