//! Query-independent profile validation: the lint pass a profile editor
//! runs before saving. (The query-*dependent* analysis — SR conflicts —
//! lives in [`crate::conflict`] because applicability depends on the
//! query.)

use crate::ambiguity::detect_ambiguity_with_priorities;
use crate::profile::UserProfile;
use crate::scoping::SrAction;
use crate::vor::VorForm;
use std::collections::HashSet;
use std::fmt;

/// One validation finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Warning {
    /// Two rules (of any kind) share an id.
    DuplicateRuleId(String),
    /// The VOR set is ambiguous under the current priorities; the payload
    /// lists one alternating cycle.
    AmbiguousVors(Vec<String>),
    /// A KOR's phrase is empty or whitespace.
    EmptyKorPhrase(String),
    /// A scoping rule's conclusion is empty (it can never change a query).
    EmptyScopingAction(String),
    /// A VOR's preference relation relates nothing.
    EmptyPreferenceRelation(String),
    /// An `add` rule adds exactly what its condition requires — a no-op.
    SelfSatisfyingAdd(String),
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::DuplicateRuleId(id) => write!(f, "duplicate rule id {id:?}"),
            Warning::AmbiguousVors(cycle) => write!(
                f,
                "value-based ordering rules are ambiguous (cycle: {}); assign priorities",
                cycle.join(" → ")
            ),
            Warning::EmptyKorPhrase(id) => write!(f, "keyword rule {id:?} has an empty phrase"),
            Warning::EmptyScopingAction(id) => {
                write!(f, "scoping rule {id:?} has an empty conclusion")
            }
            Warning::EmptyPreferenceRelation(id) => {
                write!(f, "ordering rule {id:?} uses an empty preference relation")
            }
            Warning::SelfSatisfyingAdd(id) => {
                write!(f, "scoping rule {id:?} adds what its condition already requires")
            }
        }
    }
}

/// Validate `profile`, returning every finding (empty = clean).
pub fn validate(profile: &UserProfile) -> Vec<Warning> {
    let mut warnings = Vec::new();

    // Duplicate ids across all rule kinds.
    let mut seen: HashSet<&str> = HashSet::new();
    let ids = profile
        .scoping
        .iter()
        .map(|r| r.id.as_str())
        .chain(profile.vors.iter().map(|r| r.id.as_str()))
        .chain(profile.kors.iter().map(|r| r.id.as_str()));
    for id in ids {
        if !seen.insert(id) {
            let w = Warning::DuplicateRuleId(id.to_string());
            if !warnings.contains(&w) {
                warnings.push(w);
            }
        }
    }

    // Ambiguity under the configured priorities.
    let report = detect_ambiguity_with_priorities(&profile.vors);
    if let Some(cycle) = report.cycles.first() {
        warnings.push(Warning::AmbiguousVors(cycle.rule_ids.clone()));
    }

    for kor in &profile.kors {
        if kor.phrase.trim().is_empty() {
            warnings.push(Warning::EmptyKorPhrase(kor.id.clone()));
        }
    }

    for vor in &profile.vors {
        if let VorForm::Preference { order, .. } = &vor.form {
            if order.is_empty() {
                warnings.push(Warning::EmptyPreferenceRelation(vor.id.clone()));
            }
        }
    }

    for sr in &profile.scoping {
        match &sr.action {
            SrAction::Add(atoms) | SrAction::Delete(atoms) => {
                if atoms.is_empty() {
                    warnings.push(Warning::EmptyScopingAction(sr.id.clone()));
                } else if matches!(sr.action, SrAction::Add(_))
                    && atoms.iter().all(|a| sr.condition.contains(a))
                {
                    warnings.push(Warning::SelfSatisfyingAdd(sr.id.clone()));
                }
            }
            SrAction::Replace { from, with } => {
                if from.is_empty() && with.is_empty() {
                    warnings.push(Warning::EmptyScopingAction(sr.id.clone()));
                }
            }
            SrAction::RelaxEdge { .. } => {}
        }
    }

    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kor::KeywordOrderingRule;
    use crate::prefrel::PrefRel;
    use crate::scoping::{Atom, ScopingRule};
    use crate::vor::ValueOrderingRule;

    #[test]
    fn clean_profile_validates() {
        let p = UserProfile::new()
            .with_kor(KeywordOrderingRule::new("k1", "car", "NYC"))
            .with_vor(ValueOrderingRule::prefer_smaller("v1", "car", "mileage"))
            .with_scoping(ScopingRule::add(
                "s1",
                vec![Atom::ft("car", "good")],
                vec![Atom::ft("car", "american")],
            ));
        assert!(validate(&p).is_empty());
    }

    #[test]
    fn duplicate_ids_flagged_once() {
        let p = UserProfile::new()
            .with_kor(KeywordOrderingRule::new("x", "car", "a"))
            .with_kor(KeywordOrderingRule::new("x", "car", "b"))
            .with_vor(ValueOrderingRule::prefer_smaller("x", "car", "m"));
        let ws = validate(&p);
        assert_eq!(
            ws.iter().filter(|w| matches!(w, Warning::DuplicateRuleId(_))).count(),
            1
        );
    }

    #[test]
    fn ambiguity_flagged_with_cycle() {
        let p = UserProfile::new()
            .with_vor(ValueOrderingRule::prefer_value("pi1", "car", "color", "red"))
            .with_vor(ValueOrderingRule::prefer_smaller("pi2", "car", "mileage"));
        let ws = validate(&p);
        assert!(ws.iter().any(|w| matches!(w, Warning::AmbiguousVors(_))));
        let text = ws[0].to_string();
        assert!(text.contains("priorities"), "{text}");
    }

    #[test]
    fn empty_phrase_and_empty_action_flagged() {
        let p = UserProfile::new()
            .with_kor(KeywordOrderingRule::new("k", "car", "  "))
            .with_scoping(ScopingRule::add("s", vec![], vec![]));
        let ws = validate(&p);
        assert!(ws.iter().any(|w| matches!(w, Warning::EmptyKorPhrase(_))));
        assert!(ws.iter().any(|w| matches!(w, Warning::EmptyScopingAction(_))));
    }

    #[test]
    fn self_satisfying_add_flagged() {
        let p = UserProfile::new().with_scoping(ScopingRule::add(
            "noop",
            vec![Atom::ft("car", "good")],
            vec![Atom::ft("car", "good")],
        ));
        assert!(validate(&p).iter().any(|w| matches!(w, Warning::SelfSatisfyingAdd(_))));
    }

    #[test]
    fn empty_prefrel_flagged() {
        let p = UserProfile::new().with_vor(ValueOrderingRule::prefer_order(
            "po",
            "car",
            "color",
            PrefRel::new(Vec::<(&str, &str)>::new()).unwrap(),
        ));
        assert!(validate(&p)
            .iter()
            .any(|w| matches!(w, Warning::EmptyPreferenceRelation(_))));
    }
}
