//! Query-independent profile validation ([`validate`]) and the combined
//! pre-execution static verifier ([`UserProfile::verify`]): one report
//! covering the SR conflict-graph analysis (paper §5.1) and the VOR
//! alternating-cycle check (paper §5.2, Lemma 5.1), with rule and edge
//! provenance. (The query-*dependent* SR analysis lives in
//! [`crate::conflict`] because applicability depends on the query.)

use crate::ambiguity::detect_ambiguity_with_priorities;
use crate::conflict::analyze;
use crate::profile::UserProfile;
use crate::scoping::SrAction;
use crate::vor::VorForm;
use pimento_tpq::Tpq;
use std::collections::HashSet;
use std::fmt;

/// One validation finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Warning {
    /// Two rules (of any kind) share an id.
    DuplicateRuleId(String),
    /// The VOR set is ambiguous under the current priorities; the payload
    /// lists one alternating cycle.
    AmbiguousVors(Vec<String>),
    /// A KOR's phrase is empty or whitespace.
    EmptyKorPhrase(String),
    /// A scoping rule's conclusion is empty (it can never change a query).
    EmptyScopingAction(String),
    /// A VOR's preference relation relates nothing.
    EmptyPreferenceRelation(String),
    /// An `add` rule adds exactly what its condition requires — a no-op.
    SelfSatisfyingAdd(String),
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::DuplicateRuleId(id) => write!(f, "duplicate rule id {id:?}"),
            Warning::AmbiguousVors(cycle) => write!(
                f,
                "value-based ordering rules are ambiguous (cycle: {}); assign priorities",
                cycle.join(" → ")
            ),
            Warning::EmptyKorPhrase(id) => write!(f, "keyword rule {id:?} has an empty phrase"),
            Warning::EmptyScopingAction(id) => {
                write!(f, "scoping rule {id:?} has an empty conclusion")
            }
            Warning::EmptyPreferenceRelation(id) => {
                write!(f, "ordering rule {id:?} uses an empty preference relation")
            }
            Warning::SelfSatisfyingAdd(id) => {
                write!(
                    f,
                    "scoping rule {id:?} adds what its condition already requires"
                )
            }
        }
    }
}

/// Severity of a [`Finding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Provenance detail (e.g. a resolved conflict arc).
    Info,
    /// Suspicious but executable.
    Warning,
    /// The profile cannot be soundly executed against this query.
    Error,
}

/// What a [`Finding`] is about, with rule/edge provenance.
#[derive(Debug, Clone, PartialEq)]
pub enum FindingKind {
    /// Conflict arc `from → to`: applying `from` disables `to` w.r.t. the
    /// query (paper §5.1). Resolved by ordering or priorities; reported as
    /// provenance for the cycle findings and the chosen order.
    SrConflictArc {
        /// Rule whose application disables the other.
        from: String,
        /// Rule that would no longer be applicable.
        to: String,
    },
    /// Scoping rules form a conflict cycle and at least one member lacks a
    /// priority — no application order lets every rule have its intended
    /// effect (paper §5.1 requires user priorities here).
    SrConflictCycle {
        /// Ids of the cycle members.
        cycle: Vec<String>,
    },
    /// VORs admit a satisfiable alternating cycle in the constraint graph
    /// (paper Lemma 5.1) within one priority class: some database instance
    /// orders a pair of elements both ways.
    VorAlternatingCycle {
        /// Rule ids along the cycle, in order.
        cycle: Vec<String>,
    },
    /// A query-independent [`validate`] finding.
    ProfileWarning(Warning),
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// What it is.
    pub kind: FindingKind,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        match &self.kind {
            FindingKind::SrConflictArc { from, to } => {
                write!(f, "{tag}: scoping rule {from:?} disables {to:?} on this query (conflict arc {from} → {to})")
            }
            FindingKind::SrConflictCycle { cycle } => write!(
                f,
                "{tag}: scoping rules form a conflict cycle ({}); assign priorities to every member",
                cycle.join(" → ")
            ),
            FindingKind::VorAlternatingCycle { cycle } => write!(
                f,
                "{tag}: ordering rules are ambiguous — alternating cycle {} (Lemma 5.1); separate them by priority",
                cycle.join(" → ")
            ),
            FindingKind::ProfileWarning(w) => write!(f, "{tag}: {w}"),
        }
    }
}

/// The combined pre-execution report of [`UserProfile::verify`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// All findings, errors first.
    pub findings: Vec<Finding>,
}

impl VerifyReport {
    /// Any error-severity finding?
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// Is there an SR conflict-cycle error? (The one condition
    /// [`UserProfile::enforce_scoping`] also rejects, so engine debug
    /// assertions can check the two agree.)
    pub fn has_sr_cycle(&self) -> bool {
        self.findings
            .iter()
            .any(|f| matches!(f.kind, FindingKind::SrConflictCycle { .. }))
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "profile verifies cleanly");
        }
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        let errors = self.errors().count();
        write!(f, "{} finding(s), {errors} error(s)", self.findings.len())
    }
}

impl UserProfile {
    /// Statically verify this profile against `query`: SR conflict-graph
    /// analysis (cycles need priorities) and VOR alternating-cycle
    /// ambiguity (per priority class), plus every [`validate`] warning —
    /// one report with rule/edge provenance, before any execution.
    pub fn verify(&self, query: &Tpq) -> VerifyReport {
        let mut findings = Vec::new();

        // SR conflict analysis w.r.t. the query (paper §5.1).
        let arc_findings = |arcs: &[(usize, usize)], findings: &mut Vec<Finding>| {
            for &(i, j) in arcs {
                findings.push(Finding {
                    severity: Severity::Info,
                    kind: FindingKind::SrConflictArc {
                        from: self.scoping[i].id.clone(),
                        to: self.scoping[j].id.clone(),
                    },
                });
            }
        };
        match analyze(&self.scoping, query) {
            Ok(analysis) => arc_findings(&analysis.arcs, &mut findings),
            Err(err) => {
                // Re-derive the arcs for provenance (analyze consumed them
                // in the error path).
                let arcs: Vec<(usize, usize)> = (0..self.scoping.len())
                    .flat_map(|i| (0..self.scoping.len()).map(move |j| (i, j)))
                    .filter(|&(i, j)| {
                        i != j
                            && crate::conflict::conflicts(&self.scoping[i], &self.scoping[j], query)
                    })
                    .collect();
                arc_findings(&arcs, &mut findings);
                findings.push(Finding {
                    severity: Severity::Error,
                    kind: FindingKind::SrConflictCycle { cycle: err.cycle },
                });
            }
        }

        // VOR alternating cycles surviving priority separation (§5.2).
        for cycle in detect_ambiguity_with_priorities(&self.vors).cycles {
            findings.push(Finding {
                severity: Severity::Error,
                kind: FindingKind::VorAlternatingCycle {
                    cycle: cycle.rule_ids,
                },
            });
        }

        // Query-independent validation; ambiguity is already reported
        // above with full cycle provenance, so skip its duplicate.
        for w in validate(self) {
            if matches!(w, Warning::AmbiguousVors(_)) {
                continue;
            }
            findings.push(Finding {
                severity: Severity::Warning,
                kind: FindingKind::ProfileWarning(w),
            });
        }

        findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
        VerifyReport { findings }
    }
}

/// Validate `profile`, returning every finding (empty = clean).
pub fn validate(profile: &UserProfile) -> Vec<Warning> {
    let mut warnings = Vec::new();

    // Duplicate ids across all rule kinds.
    let mut seen: HashSet<&str> = HashSet::new();
    let ids = profile
        .scoping
        .iter()
        .map(|r| r.id.as_str())
        .chain(profile.vors.iter().map(|r| r.id.as_str()))
        .chain(profile.kors.iter().map(|r| r.id.as_str()));
    for id in ids {
        if !seen.insert(id) {
            let w = Warning::DuplicateRuleId(id.to_string());
            if !warnings.contains(&w) {
                warnings.push(w);
            }
        }
    }

    // Ambiguity under the configured priorities.
    let report = detect_ambiguity_with_priorities(&profile.vors);
    if let Some(cycle) = report.cycles.first() {
        warnings.push(Warning::AmbiguousVors(cycle.rule_ids.clone()));
    }

    for kor in &profile.kors {
        if kor.phrase.trim().is_empty() {
            warnings.push(Warning::EmptyKorPhrase(kor.id.clone()));
        }
    }

    for vor in &profile.vors {
        if let VorForm::Preference { order, .. } = &vor.form {
            if order.is_empty() {
                warnings.push(Warning::EmptyPreferenceRelation(vor.id.clone()));
            }
        }
    }

    for sr in &profile.scoping {
        match &sr.action {
            SrAction::Add(atoms) | SrAction::Delete(atoms) => {
                if atoms.is_empty() {
                    warnings.push(Warning::EmptyScopingAction(sr.id.clone()));
                } else if matches!(sr.action, SrAction::Add(_))
                    && atoms.iter().all(|a| sr.condition.contains(a))
                {
                    warnings.push(Warning::SelfSatisfyingAdd(sr.id.clone()));
                }
            }
            SrAction::Replace { from, with } => {
                if from.is_empty() && with.is_empty() {
                    warnings.push(Warning::EmptyScopingAction(sr.id.clone()));
                }
            }
            SrAction::RelaxEdge { .. } => {}
        }
    }

    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kor::KeywordOrderingRule;
    use crate::prefrel::PrefRel;
    use crate::scoping::{Atom, ScopingRule};
    use crate::vor::ValueOrderingRule;

    #[test]
    fn clean_profile_validates() {
        let p = UserProfile::new()
            .with_kor(KeywordOrderingRule::new("k1", "car", "NYC"))
            .with_vor(ValueOrderingRule::prefer_smaller("v1", "car", "mileage"))
            .with_scoping(ScopingRule::add(
                "s1",
                vec![Atom::ft("car", "good")],
                vec![Atom::ft("car", "american")],
            ));
        assert!(validate(&p).is_empty());
    }

    #[test]
    fn duplicate_ids_flagged_once() {
        let p = UserProfile::new()
            .with_kor(KeywordOrderingRule::new("x", "car", "a"))
            .with_kor(KeywordOrderingRule::new("x", "car", "b"))
            .with_vor(ValueOrderingRule::prefer_smaller("x", "car", "m"));
        let ws = validate(&p);
        assert_eq!(
            ws.iter()
                .filter(|w| matches!(w, Warning::DuplicateRuleId(_)))
                .count(),
            1
        );
    }

    #[test]
    fn ambiguity_flagged_with_cycle() {
        let p = UserProfile::new()
            .with_vor(ValueOrderingRule::prefer_value(
                "pi1", "car", "color", "red",
            ))
            .with_vor(ValueOrderingRule::prefer_smaller("pi2", "car", "mileage"));
        let ws = validate(&p);
        assert!(ws.iter().any(|w| matches!(w, Warning::AmbiguousVors(_))));
        let text = ws[0].to_string();
        assert!(text.contains("priorities"), "{text}");
    }

    #[test]
    fn empty_phrase_and_empty_action_flagged() {
        let p = UserProfile::new()
            .with_kor(KeywordOrderingRule::new("k", "car", "  "))
            .with_scoping(ScopingRule::add("s", vec![], vec![]));
        let ws = validate(&p);
        assert!(ws.iter().any(|w| matches!(w, Warning::EmptyKorPhrase(_))));
        assert!(ws
            .iter()
            .any(|w| matches!(w, Warning::EmptyScopingAction(_))));
    }

    #[test]
    fn self_satisfying_add_flagged() {
        let p = UserProfile::new().with_scoping(ScopingRule::add(
            "noop",
            vec![Atom::ft("car", "good")],
            vec![Atom::ft("car", "good")],
        ));
        assert!(validate(&p)
            .iter()
            .any(|w| matches!(w, Warning::SelfSatisfyingAdd(_))));
    }

    #[test]
    fn empty_prefrel_flagged() {
        let p = UserProfile::new().with_vor(ValueOrderingRule::prefer_order(
            "po",
            "car",
            "color",
            PrefRel::new(Vec::<(&str, &str)>::new()).unwrap(),
        ));
        assert!(validate(&p)
            .iter()
            .any(|w| matches!(w, Warning::EmptyPreferenceRelation(_))));
    }
}
