//! Value-based ordering rules (VORs), paper §3.2. A VOR states a pairwise
//! preference between two answers `x`, `y` of the same type, in one of
//! three forms:
//!
//! 1. `C & x.attr = c & y.attr ≠ c → x ≺ y` (e.g. prefer red cars),
//! 2. `C & x.attr relOp y.attr → x ≺ y` with `relOp ∈ {<, >}`
//!    (e.g. prefer lower mileage),
//! 3. `C & prefRel(x.attr, y.attr) → x ≺ y` with `prefRel` a strict
//!    partial order on the attribute domain,
//!
//! where `C` — the *common conditions* — is a conjunction equating the
//! common properties of `x` and `y` (e.g. `x.tag = car & y.tag = car &
//! x.make = y.make`), possibly with extra local constraints.

use crate::constraints::{Const, LocalSet};
use crate::prefrel::PrefRel;
use pimento_tpq::RelOp;
use std::fmt;

/// A typed attribute value handed to the comparator by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Numeric value.
    Num(f64),
    /// String value.
    Str(String),
}

impl AttrValue {
    /// Case-insensitive equality.
    pub fn same(&self, other: &AttrValue) -> bool {
        match (self, other) {
            (AttrValue::Num(a), AttrValue::Num(b)) => a == b,
            (AttrValue::Str(a), AttrValue::Str(b)) => a.eq_ignore_ascii_case(b),
            (AttrValue::Num(n), AttrValue::Str(s)) | (AttrValue::Str(s), AttrValue::Num(n)) => {
                s.trim().parse::<f64>().map(|x| x == *n).unwrap_or(false)
            }
        }
    }

    /// Numeric view (strings parse if they look numeric).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(n) => Some(*n),
            AttrValue::Str(s) => s.trim().parse().ok(),
        }
    }

    /// String view. Borrows for `Str` values; only numeric values allocate
    /// (they must be formatted).
    pub fn as_text(&self) -> std::borrow::Cow<'_, str> {
        match self {
            AttrValue::Num(n) => std::borrow::Cow::Owned(format_num(*n)),
            AttrValue::Str(s) => std::borrow::Cow::Borrowed(s),
        }
    }
}

/// The preference head of a VOR (which of the three forms it takes).
#[derive(Debug, Clone, PartialEq)]
pub enum VorForm {
    /// Form (1): prefer answers with `attr = value`.
    EqConst {
        /// Attribute compared.
        attr: String,
        /// The preferred constant.
        value: String,
    },
    /// Form (2): prefer the answer whose `attr` is smaller (`Lt`) or larger
    /// (`Gt`).
    AttrCompare {
        /// Attribute compared.
        attr: String,
        /// `Lt` = prefer smaller, `Gt` = prefer larger.
        op: PrefOp,
    },
    /// Form (3): prefer along a strict partial order on the domain.
    Preference {
        /// Attribute compared.
        attr: String,
        /// The partial order ("better" relates preferred values to worse).
        order: PrefRel,
    },
}

/// Direction of a form-(2) comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefOp {
    /// Prefer the smaller value (`x.attr < y.attr → x ≺ y`).
    Lt,
    /// Prefer the larger value (`x.attr > y.attr → x ≺ y`).
    Gt,
}

/// A local (single-variable) guard in the common conditions, constraining
/// both `x` and `y` symmetrically (they must be "of the same type").
#[derive(Debug, Clone, PartialEq)]
pub struct LocalGuard {
    /// Attribute constrained.
    pub attr: String,
    /// Operator.
    pub op: RelOp,
    /// Constant.
    pub value: AttrValue,
}

/// One value-based ordering rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueOrderingRule {
    /// Identifier for diagnostics (π1, π2, …).
    pub id: String,
    /// `x.tag = y.tag = tag`.
    pub tag: String,
    /// Attributes equated between `x` and `y` (`x.make = y.make`).
    pub equal_attrs: Vec<String>,
    /// Symmetric local guards on both variables.
    pub guards: Vec<LocalGuard>,
    /// The preference head.
    pub form: VorForm,
    /// Priority class: rules with a **smaller** number are consulted first.
    /// Rules sharing a class must be mutually unambiguous (§5.2).
    pub priority: u32,
}

impl ValueOrderingRule {
    /// Form-(1) rule: prefer `tag` answers with `attr = value` (paper's π1:
    /// red cars first).
    pub fn prefer_value(id: &str, tag: &str, attr: &str, value: &str) -> Self {
        ValueOrderingRule {
            id: id.to_string(),
            tag: tag.to_string(),
            equal_attrs: Vec::new(),
            guards: Vec::new(),
            form: VorForm::EqConst {
                attr: attr.to_string(),
                value: value.to_string(),
            },
            priority: 0,
        }
    }

    /// Form-(2) rule: prefer smaller `attr` (paper's π2: lower mileage).
    pub fn prefer_smaller(id: &str, tag: &str, attr: &str) -> Self {
        ValueOrderingRule {
            id: id.to_string(),
            tag: tag.to_string(),
            equal_attrs: Vec::new(),
            guards: Vec::new(),
            form: VorForm::AttrCompare {
                attr: attr.to_string(),
                op: PrefOp::Lt,
            },
            priority: 0,
        }
    }

    /// Form-(2) rule: prefer larger `attr` (paper's π3: higher horsepower).
    pub fn prefer_larger(id: &str, tag: &str, attr: &str) -> Self {
        ValueOrderingRule {
            id: id.to_string(),
            tag: tag.to_string(),
            equal_attrs: Vec::new(),
            guards: Vec::new(),
            form: VorForm::AttrCompare {
                attr: attr.to_string(),
                op: PrefOp::Gt,
            },
            priority: 0,
        }
    }

    /// Form-(3) rule: prefer along a partial order on `attr`.
    pub fn prefer_order(id: &str, tag: &str, attr: &str, order: PrefRel) -> Self {
        ValueOrderingRule {
            id: id.to_string(),
            tag: tag.to_string(),
            equal_attrs: Vec::new(),
            guards: Vec::new(),
            form: VorForm::Preference {
                attr: attr.to_string(),
                order,
            },
            priority: 0,
        }
    }

    /// Builder: equate `attr` between the two answers (`x.make = y.make`).
    pub fn with_equal_attr(mut self, attr: &str) -> Self {
        self.equal_attrs.push(attr.to_string());
        self
    }

    /// Builder: add a symmetric local guard.
    pub fn with_guard(mut self, attr: &str, op: RelOp, value: AttrValue) -> Self {
        self.guards.push(LocalGuard {
            attr: attr.to_string(),
            op,
            value,
        });
        self
    }

    /// Builder: set the priority class (smaller = consulted earlier).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// `local*` constraints of the rule's `x` variable (used by the
    /// ambiguity analysis). `x` is the *preferred* side.
    pub fn local_x(&self) -> LocalSet {
        self.local_common(true)
    }

    /// `local*` constraints of the rule's `y` variable.
    pub fn local_y(&self) -> LocalSet {
        self.local_common(false)
    }

    fn local_common(&self, is_x: bool) -> LocalSet {
        let mut s = LocalSet::new();
        // Rule construction keeps these consistent; a degenerate rule
        // (contradictory guards) can never fire, so an inconsistent local
        // set is represented by keeping whatever merged cleanly.
        let _ = s.require_tag(&self.tag);
        for g in &self.guards {
            let c = match &g.value {
                AttrValue::Num(n) => Const::Num(*n),
                AttrValue::Str(t) => Const::Str(t.clone()),
            };
            let _ = s.add(&g.attr, g.op, c);
        }
        if let VorForm::EqConst { attr, value } = &self.form {
            let op = if is_x { RelOp::Eq } else { RelOp::Ne };
            let _ = s.add(attr, op, Const::Str(value.clone()));
        }
        s
    }

    /// The attribute the head inspects (what the runtime must fetch).
    pub fn head_attr(&self) -> &str {
        match &self.form {
            VorForm::EqConst { attr, .. }
            | VorForm::AttrCompare { attr, .. }
            | VorForm::Preference { attr, .. } => attr,
        }
    }

    /// All attributes the rule touches at runtime.
    pub fn attrs(&self) -> Vec<&str> {
        let mut out = vec![self.head_attr()];
        out.extend(self.equal_attrs.iter().map(String::as_str));
        out.extend(self.guards.iter().map(|g| g.attr.as_str()));
        out
    }

    /// Compare two answers under this rule. `fields` functions resolve
    /// attribute names to values for each answer; `tag_of` supplies the
    /// answers' element tags.
    pub fn compare(
        &self,
        a_tag: &str,
        b_tag: &str,
        a_fields: &dyn Fn(&str) -> Option<AttrValue>,
        b_fields: &dyn Fn(&str) -> Option<AttrValue>,
    ) -> RuleCmp {
        // Common conditions: same required tag on both sides.
        if !a_tag.eq_ignore_ascii_case(&self.tag) || !b_tag.eq_ignore_ascii_case(&self.tag) {
            return RuleCmp::NoInfo;
        }
        for attr in &self.equal_attrs {
            match (a_fields(attr), b_fields(attr)) {
                (Some(va), Some(vb)) if va.same(&vb) => {}
                _ => return RuleCmp::NoInfo,
            }
        }
        for g in &self.guards {
            if !guard_holds(g, a_fields) || !guard_holds(g, b_fields) {
                return RuleCmp::NoInfo;
            }
        }
        match &self.form {
            VorForm::EqConst { attr, value } => {
                let target = AttrValue::Str(value.clone());
                let a_has = a_fields(attr).map(|v| v.same(&target)).unwrap_or(false);
                let b_has = b_fields(attr).map(|v| v.same(&target)).unwrap_or(false);
                match (a_has, b_has) {
                    (true, false) => RuleCmp::PreferA,
                    (false, true) => RuleCmp::PreferB,
                    (true, true) | (false, false) => RuleCmp::Equal,
                }
            }
            VorForm::AttrCompare { attr, op } => {
                let (Some(va), Some(vb)) = (a_fields(attr), b_fields(attr)) else {
                    return RuleCmp::NoInfo;
                };
                let (Some(na), Some(nb)) = (va.as_num(), vb.as_num()) else {
                    return RuleCmp::NoInfo;
                };
                if na == nb {
                    return RuleCmp::Equal;
                }
                let a_wins = match op {
                    PrefOp::Lt => na < nb,
                    PrefOp::Gt => na > nb,
                };
                if a_wins {
                    RuleCmp::PreferA
                } else {
                    RuleCmp::PreferB
                }
            }
            VorForm::Preference { attr, order } => {
                let (Some(va), Some(vb)) = (a_fields(attr), b_fields(attr)) else {
                    return RuleCmp::NoInfo;
                };
                let (sa, sb) = (va.as_text(), vb.as_text());
                if sa.eq_ignore_ascii_case(&sb) {
                    RuleCmp::Equal
                } else if order.prefers(&sa, &sb) {
                    RuleCmp::PreferA
                } else if order.prefers(&sb, &sa) {
                    RuleCmp::PreferB
                } else {
                    RuleCmp::NoInfo
                }
            }
        }
    }
}

/// The canonical text rendering of a numeric attribute value (integral
/// values print without a fractional part). Shared with the compiled-key
/// path in [`crate::vor_table`], which must render identically.
pub(crate) fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        n.to_string()
    }
}

fn guard_holds(g: &LocalGuard, fields: &dyn Fn(&str) -> Option<AttrValue>) -> bool {
    let Some(v) = fields(&g.attr) else {
        return false;
    };
    match g.op {
        RelOp::Eq => v.same(&g.value),
        RelOp::Ne => !v.same(&g.value),
        op => match (v.as_num(), g.value.as_num()) {
            (Some(a), Some(b)) => op.eval_num(a, b),
            _ => false,
        },
    }
}

/// Outcome of one rule on a pair of answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleCmp {
    /// The rule strictly prefers the first answer.
    PreferA,
    /// The rule strictly prefers the second answer.
    PreferB,
    /// Both answers are equivalent w.r.t. the rule's property.
    Equal,
    /// The rule does not apply / cannot decide.
    NoInfo,
}

/// Combined outcome of a VOR set on a pair of answers (the `≺_V` relation
/// used by Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VorOutcome {
    /// `a ≺_V b`.
    PreferA,
    /// `b ≺_V a`.
    PreferB,
    /// `a ==_V b`: equivalent on every rule.
    Equal,
    /// Incomparable w.r.t. `≺_V`.
    Incomparable,
}

impl fmt::Display for VorOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VorOutcome::PreferA => "a ≺ b",
            VorOutcome::PreferB => "b ≺ a",
            VorOutcome::Equal => "a == b",
            VorOutcome::Incomparable => "a ∥ b",
        };
        write!(f, "{s}")
    }
}

/// Compare two answers under a whole rule set, honoring priority classes:
/// classes are consulted in ascending priority number; within a class
/// (which static analysis guarantees unambiguous), any strict preference
/// decides; a class where every rule says `Equal` falls through to the
/// next; anything else renders the pair incomparable unless a later class
/// decides — matching the paper's "assign priorities to break alternating
/// cycles" semantics (§5.2).
pub fn compare_all(
    rules: &[ValueOrderingRule],
    a_tag: &str,
    b_tag: &str,
    a_fields: &dyn Fn(&str) -> Option<AttrValue>,
    b_fields: &dyn Fn(&str) -> Option<AttrValue>,
) -> VorOutcome {
    if rules.is_empty() {
        return VorOutcome::Equal;
    }
    let mut classes: Vec<u32> = rules.iter().map(|r| r.priority).collect();
    classes.sort_unstable();
    classes.dedup();
    let mut saw_noinfo = false;
    for class in classes {
        let mut prefer_a = false;
        let mut prefer_b = false;
        for rule in rules.iter().filter(|r| r.priority == class) {
            match rule.compare(a_tag, b_tag, a_fields, b_fields) {
                RuleCmp::PreferA => prefer_a = true,
                RuleCmp::PreferB => prefer_b = true,
                RuleCmp::Equal => {}
                RuleCmp::NoInfo => saw_noinfo = true,
            }
        }
        match (prefer_a, prefer_b) {
            (true, false) => return VorOutcome::PreferA,
            (false, true) => return VorOutcome::PreferB,
            // Within an unambiguous class this cannot happen on real data;
            // if it does (user skipped static analysis), the pair is
            // incomparable rather than arbitrarily ordered.
            (true, true) => return VorOutcome::Incomparable,
            (false, false) => {}
        }
    }
    if saw_noinfo {
        VorOutcome::Incomparable
    } else {
        VorOutcome::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn fields(pairs: &[(&str, AttrValue)]) -> HashMap<String, AttrValue> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn getter(m: &HashMap<String, AttrValue>) -> impl Fn(&str) -> Option<AttrValue> + '_ {
        move |k| m.get(k).cloned()
    }

    fn s(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }

    fn n(v: f64) -> AttrValue {
        AttrValue::Num(v)
    }

    #[test]
    fn pi1_red_cars_preferred() {
        let pi1 = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
        let red = fields(&[("color", s("red"))]);
        let blue = fields(&[("color", s("blue"))]);
        assert_eq!(
            pi1.compare("car", "car", &getter(&red), &getter(&blue)),
            RuleCmp::PreferA
        );
        assert_eq!(
            pi1.compare("car", "car", &getter(&blue), &getter(&red)),
            RuleCmp::PreferB
        );
        assert_eq!(
            pi1.compare("car", "car", &getter(&red), &getter(&red)),
            RuleCmp::Equal
        );
        assert_eq!(
            pi1.compare("car", "car", &getter(&blue), &getter(&blue)),
            RuleCmp::Equal
        );
    }

    #[test]
    fn missing_attr_counts_as_not_preferred_in_form1() {
        let pi1 = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
        let red = fields(&[("color", s("red"))]);
        let none = fields(&[]);
        assert_eq!(
            pi1.compare("car", "car", &getter(&red), &getter(&none)),
            RuleCmp::PreferA
        );
        assert_eq!(
            pi1.compare("car", "car", &getter(&none), &getter(&none)),
            RuleCmp::Equal
        );
    }

    #[test]
    fn pi2_lower_mileage_preferred() {
        let pi2 = ValueOrderingRule::prefer_smaller("pi2", "car", "mileage");
        let lo = fields(&[("mileage", n(10_000.0))]);
        let hi = fields(&[("mileage", n(90_000.0))]);
        assert_eq!(
            pi2.compare("car", "car", &getter(&lo), &getter(&hi)),
            RuleCmp::PreferA
        );
        assert_eq!(
            pi2.compare("car", "car", &getter(&hi), &getter(&lo)),
            RuleCmp::PreferB
        );
        assert_eq!(
            pi2.compare("car", "car", &getter(&lo), &getter(&lo)),
            RuleCmp::Equal
        );
        let missing = fields(&[]);
        assert_eq!(
            pi2.compare("car", "car", &getter(&lo), &getter(&missing)),
            RuleCmp::NoInfo
        );
    }

    #[test]
    fn pi3_same_make_higher_hp() {
        let pi3 = ValueOrderingRule::prefer_larger("pi3", "car", "hp").with_equal_attr("make");
        let strong = fields(&[("make", s("Honda")), ("hp", n(200.0))]);
        let weak = fields(&[("make", s("honda")), ("hp", n(120.0))]);
        let other = fields(&[("make", s("Ford")), ("hp", n(500.0))]);
        assert_eq!(
            pi3.compare("car", "car", &getter(&strong), &getter(&weak)),
            RuleCmp::PreferA
        );
        // different make: common conditions fail
        assert_eq!(
            pi3.compare("car", "car", &getter(&strong), &getter(&other)),
            RuleCmp::NoInfo
        );
    }

    #[test]
    fn tag_mismatch_is_noinfo() {
        let pi1 = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
        let red = fields(&[("color", s("red"))]);
        assert_eq!(
            pi1.compare("truck", "car", &getter(&red), &getter(&red)),
            RuleCmp::NoInfo
        );
    }

    #[test]
    fn preference_order_form() {
        let order = PrefRel::chain(&["red", "black", "white"]);
        let r = ValueOrderingRule::prefer_order("po", "car", "color", order);
        let red = fields(&[("color", s("red"))]);
        let black = fields(&[("color", s("black"))]);
        let green = fields(&[("color", s("green"))]);
        assert_eq!(
            r.compare("car", "car", &getter(&red), &getter(&black)),
            RuleCmp::PreferA
        );
        assert_eq!(
            r.compare("car", "car", &getter(&black), &getter(&red)),
            RuleCmp::PreferB
        );
        assert_eq!(
            r.compare("car", "car", &getter(&red), &getter(&green)),
            RuleCmp::NoInfo
        );
        assert_eq!(
            r.compare("car", "car", &getter(&red), &getter(&red)),
            RuleCmp::Equal
        );
    }

    #[test]
    fn guards_must_hold_on_both() {
        let r = ValueOrderingRule::prefer_smaller("g", "car", "mileage").with_guard(
            "price",
            RelOp::Lt,
            n(1000.0),
        );
        let cheap_lo = fields(&[("price", n(500.0)), ("mileage", n(10.0))]);
        let cheap_hi = fields(&[("price", n(900.0)), ("mileage", n(90.0))]);
        let pricey = fields(&[("price", n(5000.0)), ("mileage", n(1.0))]);
        assert_eq!(
            r.compare("car", "car", &getter(&cheap_lo), &getter(&cheap_hi)),
            RuleCmp::PreferA
        );
        assert_eq!(
            r.compare("car", "car", &getter(&cheap_lo), &getter(&pricey)),
            RuleCmp::NoInfo
        );
    }

    #[test]
    fn compare_all_priority_lexicographic() {
        // priority 0: lower mileage; priority 1: red color.
        let pi2 = ValueOrderingRule::prefer_smaller("pi2", "car", "mileage").with_priority(0);
        let pi1 = ValueOrderingRule::prefer_value("pi1", "car", "color", "red").with_priority(1);
        let rules = vec![pi1, pi2];
        let red_hi = fields(&[("color", s("red")), ("mileage", n(90.0))]);
        let blue_lo = fields(&[("color", s("blue")), ("mileage", n(10.0))]);
        // mileage (higher priority class) decides against the red car
        assert_eq!(
            compare_all(&rules, "car", "car", &getter(&red_hi), &getter(&blue_lo)),
            VorOutcome::PreferB
        );
        // equal mileage: color breaks the tie
        let red_eq = fields(&[("color", s("red")), ("mileage", n(10.0))]);
        assert_eq!(
            compare_all(&rules, "car", "car", &getter(&red_eq), &getter(&blue_lo)),
            VorOutcome::PreferA
        );
    }

    #[test]
    fn compare_all_equal_and_incomparable() {
        let pi2 = ValueOrderingRule::prefer_smaller("pi2", "car", "mileage");
        let rules = vec![pi2];
        let a = fields(&[("mileage", n(10.0))]);
        let b = fields(&[("mileage", n(10.0))]);
        assert_eq!(
            compare_all(&rules, "car", "car", &getter(&a), &getter(&b)),
            VorOutcome::Equal
        );
        let missing = fields(&[]);
        assert_eq!(
            compare_all(&rules, "car", "car", &getter(&a), &getter(&missing)),
            VorOutcome::Incomparable
        );
        assert_eq!(
            compare_all(&[], "car", "car", &getter(&a), &getter(&b)),
            VorOutcome::Equal
        );
    }

    #[test]
    fn compare_all_same_class_conflict_is_incomparable() {
        // Ambiguous pair evaluated without priority separation: red car
        // with high mileage vs non-red with low mileage.
        let pi1 = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
        let pi2 = ValueOrderingRule::prefer_smaller("pi2", "car", "mileage");
        let rules = vec![pi1, pi2];
        let red_hi = fields(&[("color", s("red")), ("mileage", n(90.0))]);
        let blue_lo = fields(&[("color", s("blue")), ("mileage", n(10.0))]);
        assert_eq!(
            compare_all(&rules, "car", "car", &getter(&red_hi), &getter(&blue_lo)),
            VorOutcome::Incomparable
        );
    }

    #[test]
    fn local_sets_for_ambiguity() {
        let pi1 = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
        let x = pi1.local_x();
        let y = pi1.local_y();
        assert!(!x.compatible(&y)); // red vs non-red
        let pi2 = ValueOrderingRule::prefer_smaller("pi2", "car", "mileage");
        assert!(y.compatible(&pi2.local_x())); // the paper's y/u pair
    }

    #[test]
    fn attr_value_coercions() {
        assert!(AttrValue::Str("33".into()).same(&AttrValue::Num(33.0)));
        assert_eq!(AttrValue::Str(" 42 ".into()).as_num(), Some(42.0));
        assert_eq!(AttrValue::Num(42.0).as_text(), "42");
        assert_eq!(AttrValue::Num(2.5).as_text(), "2.5");
    }
}
