//! Compiled `≺_V` evaluation over interned per-answer keys.
//!
//! The string-based reference path ([`crate::vor::compare_all`]) re-folds
//! case, re-parses numbers, and re-normalizes `prefRel` operands on every
//! pairwise comparison — exactly the per-answer work Algorithms 1–3 try to
//! minimize. This module hoists all of that to *key construction time*:
//!
//! * a [`CompiledVors`] precompiles the rule set once per prepared query —
//!   lowered tags, attribute slot indexes, guard constants, and each
//!   form-(3) `prefRel` as a dense id-indexed [`PrefTable`];
//! * a [`CompiledKey`] is built once per answer — attribute values are
//!   case-folded/parsed into [`CVal`]s, guards and tag applicability are
//!   pre-evaluated per rule, and `prefRel` operands are resolved to dense
//!   domain ids;
//! * a pairwise [`CompiledVors::compare`] is then allocation-free: integer
//!   and float compares, memcmp on pre-lowered bytes, and `PrefTable` bit
//!   lookups.
//!
//! The outcome is **bit-identical** to [`crate::vor::compare_all`] by
//! construction (see the equivalence notes on each step and the
//! `agreement` tests below): ASCII-lowered memcmp ⇔ `eq_ignore_ascii_case`,
//! the `same`/`as_num` coercions are precomputed with the identical
//! trim-and-parse, and every early-`NoInfo` path commutes, so hoisting the
//! guard checks into per-key applicability cannot change the result.

use crate::prefrel::PrefTable;
use crate::vor::{format_num, AttrValue, PrefOp, RuleCmp, ValueOrderingRule, VorForm, VorOutcome};
use pimento_tpq::RelOp;
use std::collections::HashMap;

/// An attribute value compiled for pairwise comparison: case folding and
/// numeric parsing happen once, here, instead of per comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum CVal {
    /// Numeric value.
    Num(f64),
    /// String value with its comparison views precomputed.
    Str {
        /// ASCII-lowered bytes: memcmp equality ⇔ `eq_ignore_ascii_case`.
        lower: Box<str>,
        /// `s.trim().parse::<f64>()`, the `as_num`/mixed-`same` view.
        parsed: Option<f64>,
    },
}

impl CVal {
    /// Compile an [`AttrValue`].
    pub fn from_attr(v: &AttrValue) -> CVal {
        match v {
            AttrValue::Num(n) => CVal::Num(*n),
            AttrValue::Str(s) => CVal::Str {
                lower: s.to_ascii_lowercase().into_boxed_str(),
                parsed: s.trim().parse().ok(),
            },
        }
    }

    /// Precomputed [`AttrValue::same`]: Num/Num compares floats, Str/Str
    /// compares pre-lowered bytes, mixed compares the pre-parsed view.
    fn same(&self, other: &CVal) -> bool {
        match (self, other) {
            (CVal::Num(a), CVal::Num(b)) => a == b,
            (CVal::Str { lower: a, .. }, CVal::Str { lower: b, .. }) => a == b,
            (CVal::Num(n), CVal::Str { parsed, .. }) | (CVal::Str { parsed, .. }, CVal::Num(n)) => {
                parsed.map(|x| x == *n).unwrap_or(false)
            }
        }
    }

    /// Precomputed [`AttrValue::as_num`].
    fn as_num(&self) -> Option<f64> {
        match self {
            CVal::Num(n) => Some(*n),
            CVal::Str { parsed, .. } => *parsed,
        }
    }

    /// ASCII-lowered [`AttrValue::as_text`] (the form-(3) equality view).
    fn text_lower(&self) -> Box<str> {
        match self {
            CVal::Num(n) => format_num(*n).to_ascii_lowercase().into_boxed_str(),
            CVal::Str { lower, .. } => lower.clone(),
        }
    }
}

/// A symmetric local guard with its constant precompiled.
#[derive(Debug, Clone)]
struct CompiledGuard {
    slot: usize,
    op: RelOp,
    value: CVal,
}

/// The preference head of one compiled rule.
#[derive(Debug, Clone)]
enum CompiledHead {
    /// Form (1): `x.attr = c` preferred. `target` is the compiled constant
    /// (always a string constant, like the reference path's
    /// `AttrValue::Str(value)`).
    EqConst { slot: usize, target: CVal },
    /// Form (2): numeric comparison.
    AttrCompare { slot: usize, op: PrefOp },
    /// Form (3): dense `prefRel` table; `pref_index` names the per-key
    /// slot carrying this rule's resolved operand.
    Preference {
        slot: usize,
        pref_index: usize,
        table: PrefTable,
    },
}

#[derive(Debug, Clone)]
struct CompiledRule {
    /// ASCII-lowered rule tag: memcmp vs. the key's lowered tag replaces
    /// `eq_ignore_ascii_case` on both sides.
    tag_lower: Box<str>,
    equal_slots: Box<[usize]>,
    guards: Box<[CompiledGuard]>,
    head: CompiledHead,
}

/// A VOR set compiled for id-based pairwise evaluation. Build once per
/// prepared query with [`CompiledVors::compile`]; build one
/// [`CompiledKey`] per answer; compare pairs with
/// [`CompiledVors::compare`].
#[derive(Debug, Clone, Default)]
pub struct CompiledVors {
    rules: Box<[CompiledRule]>,
    /// Rule indexes grouped by priority class, classes ascending, input
    /// order within a class — the reference iteration order.
    class_order: Box<[Box<[usize]>]>,
    /// Sorted, deduplicated attribute names across all rules; slot `i` of
    /// every key holds the value of `attrs[i]`.
    attrs: Box<[String]>,
    attr_index: HashMap<String, usize>,
    /// Number of form-(3) rules (= per-key `prefs` slots).
    pref_count: usize,
}

/// A per-answer `≺_V` key: the answer's rule-relevant attribute values
/// compiled into slot order, with per-rule applicability and `prefRel`
/// domain ids resolved up front.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKey {
    tag_lower: Box<str>,
    slots: Box<[Option<CVal>]>,
    /// Per rule: tag matches and every guard holds on this answer.
    applicable: Box<[bool]>,
    /// Per form-(3) rule: the head attribute's resolved operand.
    prefs: Box<[Option<PrefVal>]>,
}

/// A form-(3) operand resolved at key-construction time.
#[derive(Debug, Clone, PartialEq)]
struct PrefVal {
    /// ASCII-lowered `as_text` — the `==_V` equality view.
    text_lower: Box<str>,
    /// Dense id in the rule's [`PrefTable`] domain, `None` when outside
    /// it (an out-of-domain value is never preferred).
    dom: Option<u32>,
}

impl CompiledKey {
    /// The answer's element tag, ASCII-lowered.
    pub fn tag(&self) -> &str {
        &self.tag_lower
    }
}

impl CompiledVors {
    /// Compile a rule set. The rules' input order and priority classes are
    /// preserved exactly (they are semantically significant: within a
    /// class, rules are consulted in input order).
    pub fn compile(rules: &[ValueOrderingRule]) -> CompiledVors {
        let mut attrs: Vec<String> = rules
            .iter()
            .flat_map(|r| r.attrs())
            .map(str::to_string)
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        let attr_index: HashMap<String, usize> = attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), i))
            .collect();
        let slot = |attr: &str| attr_index[attr];

        let mut pref_count = 0usize;
        let compiled: Vec<CompiledRule> = rules
            .iter()
            .map(|r| CompiledRule {
                tag_lower: r.tag.to_ascii_lowercase().into_boxed_str(),
                equal_slots: r.equal_attrs.iter().map(|a| slot(a)).collect(),
                guards: r
                    .guards
                    .iter()
                    .map(|g| CompiledGuard {
                        slot: slot(&g.attr),
                        op: g.op,
                        value: CVal::from_attr(&g.value),
                    })
                    .collect(),
                head: match &r.form {
                    VorForm::EqConst { attr, value } => CompiledHead::EqConst {
                        slot: slot(attr),
                        target: CVal::from_attr(&AttrValue::Str(value.clone())),
                    },
                    VorForm::AttrCompare { attr, op } => CompiledHead::AttrCompare {
                        slot: slot(attr),
                        op: *op,
                    },
                    VorForm::Preference { attr, order } => {
                        let pref_index = pref_count;
                        pref_count += 1;
                        CompiledHead::Preference {
                            slot: slot(attr),
                            pref_index,
                            table: order.compile(),
                        }
                    }
                },
            })
            .collect();

        let mut classes: Vec<u32> = rules.iter().map(|r| r.priority).collect();
        classes.sort_unstable();
        classes.dedup();
        let class_order: Box<[Box<[usize]>]> = classes
            .iter()
            .map(|&class| {
                rules
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.priority == class)
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();

        CompiledVors {
            rules: compiled.into_boxed_slice(),
            class_order,
            attrs: attrs.into_boxed_slice(),
            attr_index,
            pref_count,
        }
    }

    /// The attributes keys of this rule set carry, in slot order (sorted,
    /// deduplicated). The runtime fetches exactly these per answer.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Does `key` carry a value for `attr`? (Introspection for tests and
    /// diagnostics; the hot path goes through slot indexes.)
    pub fn key_has(&self, key: &CompiledKey, attr: &str) -> bool {
        self.attr_index
            .get(attr)
            .is_some_and(|&i| key.slots[i].is_some())
    }

    /// Build an answer's key. `get` resolves attribute names to values;
    /// it is called once per attribute in [`CompiledVors::attrs`] order
    /// (slot order), which lets callers pre-resolve by index.
    pub fn make_key(
        &self,
        tag: &str,
        mut get: impl FnMut(usize, &str) -> Option<AttrValue>,
    ) -> CompiledKey {
        let slots: Box<[Option<CVal>]> = self
            .attrs
            .iter()
            .enumerate()
            .map(|(i, attr)| get(i, attr).map(|v| CVal::from_attr(&v)))
            .collect();
        let tag_lower = tag.to_ascii_lowercase().into_boxed_str();
        let applicable: Box<[bool]> = self
            .rules
            .iter()
            .map(|r| r.tag_lower == tag_lower && r.guards.iter().all(|g| guard_holds(g, &slots)))
            .collect();
        let mut prefs = vec![None; self.pref_count].into_boxed_slice();
        for r in self.rules.iter() {
            if let CompiledHead::Preference {
                slot,
                pref_index,
                table,
            } = &r.head
            {
                prefs[*pref_index] = slots[*slot].as_ref().map(|v| {
                    let text_lower = v.text_lower();
                    let dom = table.id(&text_lower);
                    PrefVal { text_lower, dom }
                });
            }
        }
        CompiledKey {
            tag_lower,
            slots,
            applicable,
            prefs,
        }
    }

    /// One rule on a pair of keys — the compiled [`ValueOrderingRule::compare`].
    fn rule_cmp(&self, ri: usize, a: &CompiledKey, b: &CompiledKey) -> RuleCmp {
        // Common conditions: tag + symmetric guards were pre-evaluated per
        // key; every failing branch returns NoInfo in the reference too,
        // so checking them first cannot change the outcome.
        if !a.applicable[ri] || !b.applicable[ri] {
            return RuleCmp::NoInfo;
        }
        let r = &self.rules[ri];
        for &slot in r.equal_slots.iter() {
            match (&a.slots[slot], &b.slots[slot]) {
                (Some(va), Some(vb)) if va.same(vb) => {}
                _ => return RuleCmp::NoInfo,
            }
        }
        match &r.head {
            CompiledHead::EqConst { slot, target } => {
                let a_has = a.slots[*slot]
                    .as_ref()
                    .map(|v| v.same(target))
                    .unwrap_or(false);
                let b_has = b.slots[*slot]
                    .as_ref()
                    .map(|v| v.same(target))
                    .unwrap_or(false);
                match (a_has, b_has) {
                    (true, false) => RuleCmp::PreferA,
                    (false, true) => RuleCmp::PreferB,
                    (true, true) | (false, false) => RuleCmp::Equal,
                }
            }
            CompiledHead::AttrCompare { slot, op } => {
                let (Some(va), Some(vb)) = (&a.slots[*slot], &b.slots[*slot]) else {
                    return RuleCmp::NoInfo;
                };
                let (Some(na), Some(nb)) = (va.as_num(), vb.as_num()) else {
                    return RuleCmp::NoInfo;
                };
                if na == nb {
                    return RuleCmp::Equal;
                }
                let a_wins = match op {
                    PrefOp::Lt => na < nb,
                    PrefOp::Gt => na > nb,
                };
                if a_wins {
                    RuleCmp::PreferA
                } else {
                    RuleCmp::PreferB
                }
            }
            CompiledHead::Preference {
                pref_index, table, ..
            } => {
                let (Some(pa), Some(pb)) = (&a.prefs[*pref_index], &b.prefs[*pref_index]) else {
                    return RuleCmp::NoInfo;
                };
                if pa.text_lower == pb.text_lower {
                    return RuleCmp::Equal;
                }
                match (pa.dom, pb.dom) {
                    (Some(ia), Some(ib)) if table.prefers_ids(ia, ib) => RuleCmp::PreferA,
                    (Some(ia), Some(ib)) if table.prefers_ids(ib, ia) => RuleCmp::PreferB,
                    _ => RuleCmp::NoInfo,
                }
            }
        }
    }

    /// Pairwise `≺_V` over the whole set — the compiled
    /// [`crate::vor::compare_all`], with identical priority-class and
    /// aggregation semantics.
    pub fn compare(&self, a: &CompiledKey, b: &CompiledKey) -> VorOutcome {
        if self.rules.is_empty() {
            return VorOutcome::Equal;
        }
        let mut saw_noinfo = false;
        for class in self.class_order.iter() {
            let mut prefer_a = false;
            let mut prefer_b = false;
            for &ri in class.iter() {
                match self.rule_cmp(ri, a, b) {
                    RuleCmp::PreferA => prefer_a = true,
                    RuleCmp::PreferB => prefer_b = true,
                    RuleCmp::Equal => {}
                    RuleCmp::NoInfo => saw_noinfo = true,
                }
            }
            match (prefer_a, prefer_b) {
                (true, false) => return VorOutcome::PreferA,
                (false, true) => return VorOutcome::PreferB,
                (true, true) => return VorOutcome::Incomparable,
                (false, false) => {}
            }
        }
        if saw_noinfo {
            VorOutcome::Incomparable
        } else {
            VorOutcome::Equal
        }
    }
}

fn guard_holds(g: &CompiledGuard, slots: &[Option<CVal>]) -> bool {
    let Some(v) = &slots[g.slot] else {
        return false;
    };
    match g.op {
        RelOp::Eq => v.same(&g.value),
        RelOp::Ne => !v.same(&g.value),
        op => match (v.as_num(), g.value.as_num()) {
            (Some(a), Some(b)) => op.eval_num(a, b),
            _ => false,
        },
    }
}

#[cfg(test)]
mod agreement {
    //! The compiled path must agree with the string-based reference on
    //! every pair — exercised over the paper's car-sale scenario with all
    //! three rule forms, guards, equal-attrs, priorities, and missing,
    //! mixed-type, and out-of-domain values.

    use super::*;
    use crate::prefrel::PrefRel;
    use crate::vor::compare_all;
    use std::collections::HashMap;

    fn rules() -> Vec<ValueOrderingRule> {
        vec![
            // π1: prefer red cars (form 1).
            ValueOrderingRule::prefer_value("pi1", "car", "color", "red").with_priority(0),
            // π2: prefer lower mileage (form 2), same make only.
            ValueOrderingRule::prefer_smaller("pi2", "car", "mileage")
                .with_equal_attr("make")
                .with_priority(1),
            // π3: prefer along the paper's color partial order (form 3).
            ValueOrderingRule::prefer_order(
                "pi3",
                "car",
                "color",
                PrefRel::new([("red", "black"), ("black", "white"), ("red", "silver")]).unwrap(),
            )
            .with_priority(2),
            // π4: among cheap cars, prefer higher horsepower (guarded form 2).
            ValueOrderingRule::prefer_larger("pi4", "car", "hp")
                .with_guard("price", RelOp::Lt, AttrValue::Num(1000.0))
                .with_priority(2),
        ]
    }

    /// The car-sale answer domain: every combination of color (incl.
    /// out-of-domain and missing), make, mileage (incl. string-typed
    /// numerics), hp, and price.
    fn answers() -> Vec<(String, HashMap<String, AttrValue>)> {
        let colors: [Option<AttrValue>; 6] = [
            Some(AttrValue::Str("red".into())),
            Some(AttrValue::Str("Black".into())),
            Some(AttrValue::Str("white".into())),
            Some(AttrValue::Str("silver".into())),
            Some(AttrValue::Str("green".into())), // outside the prefRel domain
            None,
        ];
        let mileages: [Option<AttrValue>; 4] = [
            Some(AttrValue::Num(10_000.0)),
            Some(AttrValue::Str(" 50000 ".into())), // string-typed numeric
            Some(AttrValue::Num(90_000.0)),
            None,
        ];
        let mut out = Vec::new();
        for (ci, color) in colors.iter().enumerate() {
            for (mi, mileage) in mileages.iter().enumerate() {
                let mut fields = HashMap::new();
                if let Some(c) = color {
                    fields.insert("color".to_string(), c.clone());
                }
                if let Some(m) = mileage {
                    fields.insert("mileage".to_string(), m.clone());
                }
                fields.insert(
                    "make".to_string(),
                    AttrValue::Str(if ci % 2 == 0 {
                        "Honda".into()
                    } else {
                        "honda".into()
                    }),
                );
                fields.insert(
                    "hp".to_string(),
                    AttrValue::Num(100.0 + (ci * 4 + mi) as f64),
                );
                fields.insert(
                    "price".to_string(),
                    AttrValue::Num(if mi % 2 == 0 { 500.0 } else { 1500.0 }),
                );
                let tag = if ci == 5 { "truck" } else { "car" };
                out.push((tag.to_string(), fields));
            }
        }
        out
    }

    #[test]
    fn compiled_agrees_with_reference_on_full_domain() {
        let rules = rules();
        let compiled = CompiledVors::compile(&rules);
        let answers = answers();
        let keys: Vec<CompiledKey> = answers
            .iter()
            .map(|(tag, fields)| compiled.make_key(tag, |_, attr| fields.get(attr).cloned()))
            .collect();
        let mut checked = 0usize;
        for (i, (ta, fa)) in answers.iter().enumerate() {
            for (j, (tb, fb)) in answers.iter().enumerate() {
                let want = compare_all(&rules, ta, tb, &|k| fa.get(k).cloned(), &|k| {
                    fb.get(k).cloned()
                });
                let got = compiled.compare(&keys[i], &keys[j]);
                assert_eq!(got, want, "pair {i}/{j}: {ta:?} vs {tb:?}");
                checked += 1;
            }
        }
        assert_eq!(checked, answers.len() * answers.len());
    }

    #[test]
    fn empty_rule_set_is_equal() {
        let compiled = CompiledVors::compile(&[]);
        let k = compiled.make_key("car", |_, _| None);
        assert_eq!(compiled.compare(&k, &k), VorOutcome::Equal);
        assert!(compiled.attrs().is_empty());
    }

    #[test]
    fn key_introspection() {
        let rules = vec![ValueOrderingRule::prefer_value(
            "pi1", "car", "color", "red",
        )];
        let compiled = CompiledVors::compile(&rules);
        let k = compiled.make_key("Car", |_, attr| {
            (attr == "color").then(|| AttrValue::Str("red".into()))
        });
        assert_eq!(k.tag(), "car");
        assert!(compiled.key_has(&k, "color"));
        assert!(!compiled.key_has(&k, "mileage"));
    }
}
