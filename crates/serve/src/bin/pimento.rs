//! `pimento` — command-line personalized XML search.
//!
//! ```text
//! pimento --docs cars.xml dealer2.xml \
//!         --query '//car[ftcontains(., "good condition") and ./price < 2000]' \
//!         --profile profile.rules --k 10 --strategy push --explain
//! ```
//!
//! The profile file uses the paper's rule language (one rule per line,
//! `#` comments — see `pimento_profile::parse`):
//!
//! ```text
//! rho3: if ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
//! pi1:  x.tag = car & y.tag = car & x.color = "red" & y.color != "red" -> x < y
//! pi5:  x.tag = car & y.tag = car & ftcontains(x, "NYC") -> x < y
//! ```

use pimento::profile::{parse_profile, PrefRelRegistry, UserProfile};
use pimento::{Engine, KorOrder, PlanStrategy, SearchOptions};
use pimento_serve::{ServeConfig, Server};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// `pimento serve`: load documents once and answer queries over TCP
/// (length-delimited JSON frames — see `pimento_serve::protocol`).
fn serve_usage() -> ! {
    eprintln!(
        "usage: pimento serve (--docs FILE... | --snapshot PATH) [--addr HOST:PORT] [--threads N]\n\
         \x20        [--shards N] [--queue-capacity N] [--cache-capacity N] [--query-threads N]\n\
         \x20        [--timeout-ms N] [--conn-timeout-ms N] [--profile-dir DIR]\n\
         --snapshot PATH  open a binary index snapshot instead of parsing XML\n\
         \x20                (columnar v4 opens zero-copy; legacy v3 rebuilds indexes;\n\
         \x20                a directory opens as a sharded snapshot — see `snapshot build --shards`)\n\
         --shards N       reshard the corpus into N doc-range segments served by\n\
         \x20                scatter-gather (bit-identical results; ignored if a sharded\n\
         \x20                snapshot directory already fixes the segmentation)\n\
         --addr           listen address (default 127.0.0.1:7654; port 0 = pick a free port)\n\
         --threads N      worker pool size (0 = all cores; same clamp as search --threads)\n\
         --queue-capacity bounded request queue; full = typed `overloaded` error (default 64)\n\
         --cache-capacity compiled (user, query) plan cache entries (default 256; 0 disables)\n\
         --query-threads  execution threads per query (default 1: the pool is the parallelism)\n\
         --timeout-ms     default per-request deadline (default: none)\n\
         --conn-timeout-ms  socket write timeout: a client that stops reading\n\
         \x20                cannot wedge a worker or the acceptor (default 5000)\n\
         --profile-dir    durable profile store: registrations persist here and\n\
         \x20                are recovered on restart; corrupt files are quarantined\n\
         --data-dir       durable corpus store: every generation published by\n\
         \x20                add_documents / delete_documents persists here before it\n\
         \x20                is served; on restart the directory's last published\n\
         \x20                generation is recovered (--docs/--snapshot then only\n\
         \x20                seed an empty directory)\n\
         --merge-threshold  compact after this many delta segments accumulate\n\
         \x20                (default 8; 0 disables the background merger)\n\
         --scrub-interval-ms  online integrity scrubber period: every interval the\n\
         \x20                manifest, segment section CRCs, tombstone sidecars and\n\
         \x20                stored profiles are re-verified; damage is quarantined\n\
         \x20                and repaired from the live state, surfaced via the\n\
         \x20                `health` verb and `scrub.*` stats (0 = off, the default)\n\
         The server prints `listening on ADDR` once ready and runs until a\n\
         `shutdown` command arrives, then drains in-flight requests and\n\
         prints the final metrics snapshot."
    );
    std::process::exit(2)
}

fn run_serve(rest: Vec<String>) -> ExitCode {
    let mut docs: Vec<String> = Vec::new();
    let mut snapshot_path: Option<String> = None;
    let mut shards = 0usize;
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7654".to_string(),
        ..ServeConfig::default()
    };
    let mut it = rest.into_iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--docs" => {
                while let Some(f) = it.peek() {
                    if f.starts_with("--") {
                        break;
                    }
                    docs.push(it.next().expect("peeked"));
                }
            }
            "--snapshot" => snapshot_path = Some(it.next().unwrap_or_else(|| serve_usage())),
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| serve_usage())
            }
            "--addr" => cfg.addr = it.next().unwrap_or_else(|| serve_usage()),
            "--threads" => {
                cfg.workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| serve_usage())
            }
            "--queue-capacity" => {
                cfg.queue_capacity = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| serve_usage())
            }
            "--cache-capacity" => {
                cfg.cache_capacity = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| serve_usage())
            }
            "--query-threads" => {
                cfg.query_threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| serve_usage())
            }
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| serve_usage());
                cfg.default_timeout = Some(Duration::from_millis(ms));
            }
            "--conn-timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| serve_usage());
                cfg.conn_timeout = Duration::from_millis(ms.max(1));
            }
            "--profile-dir" => {
                cfg.profile_dir = Some(it.next().unwrap_or_else(|| serve_usage()).into());
            }
            "--data-dir" => {
                cfg.data_dir = Some(it.next().unwrap_or_else(|| serve_usage()).into());
            }
            "--merge-threshold" => {
                cfg.merge_threshold = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| serve_usage())
            }
            "--scrub-interval-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| serve_usage());
                cfg.scrub_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--help" | "-h" => serve_usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                serve_usage()
            }
        }
    }
    // A data dir that already holds a published generation takes precedence
    // over --docs/--snapshot: the live corpus (including online ingests) is
    // what the operator expects back after a restart. The flags then only
    // matter for seeding a brand-new directory.
    let recover_from = cfg
        .data_dir
        .as_ref()
        .filter(|d| d.join("MANIFEST").is_file())
        .cloned();
    if recover_from.is_none() && docs.is_empty() == snapshot_path.is_none() {
        // Exactly one source: either XML documents or a snapshot.
        serve_usage()
    }
    let started = std::time::Instant::now();
    let mut engine = if let Some(dir) = &recover_from {
        shards = 0;
        if !docs.is_empty() || snapshot_path.is_some() {
            eprintln!(
                "data dir {} holds a published corpus; ignoring --docs/--snapshot",
                dir.display()
            );
        }
        match Engine::from_sharded_dir(dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot recover corpus from {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(path) = &snapshot_path {
        if std::path::Path::new(path).is_dir() {
            // A directory is a sharded snapshot (MANIFEST + one v4 file
            // per segment); it fixes the segmentation, so --shards is
            // ignored here.
            shards = 0;
            match Engine::from_sharded_dir(std::path::Path::new(path)) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("cannot open sharded snapshot {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            let data = match std::fs::read(path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Engine::from_snapshot_bytes(bytes::Bytes::from(data)) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("cannot open snapshot {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        let mut xmls = Vec::new();
        for path in &docs {
            match std::fs::read_to_string(path) {
                Ok(s) => xmls.push(s),
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        match Engine::from_xml_docs_parallel(&xmls, 0) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot parse documents: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if shards > 1 {
        engine = match engine.reshard(shards) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot shard corpus: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    cfg.startup_load_ms = started.elapsed().as_millis() as u64;
    cfg.startup_snapshot_format = engine.snapshot_format();
    let shard_note = if engine.shard_count() > 1 {
        format!(", {} shards", engine.shard_count())
    } else {
        String::new()
    };
    match cfg.startup_snapshot_format {
        Some(v) => eprintln!(
            "opened snapshot format v{v} in {} ms ({} docs{shard_note})",
            cfg.startup_load_ms,
            engine.num_docs()
        ),
        None => eprintln!(
            "indexed {} document(s) in {} ms{shard_note}",
            engine.num_docs(),
            cfg.startup_load_ms
        ),
    }
    let server = match Server::bind(Arc::new(engine), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts (the verify.sh smoke test among them) parse this line for
    // the resolved port, so it goes out before the first accept.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(snapshot) => {
            println!("{}", snapshot.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `pimento scrub`: one-shot offline integrity pass over the durable
/// stores — the same verify → quarantine → repair cycle the online
/// scrubber (`serve --scrub-interval-ms`) runs periodically.
fn scrub_usage() -> ! {
    eprintln!(
        "usage: pimento scrub [--data-dir DIR] [--profile-dir DIR]\n\
         Run one synchronous scrubber pass: re-verify the manifest, every\n\
         segment section CRC, tombstone sidecars and stored profiles;\n\
         quarantine damaged artifacts (bounded `*.quarantined` retention)\n\
         and repair from the recovered state; print the health report as\n\
         JSON. Exit 0 when everything verified (`ok`), 1 when damage was\n\
         found (`degraded`: quarantined and repaired; `corrupt`: a repair\n\
         failed or the corpus could not be recovered)."
    );
    std::process::exit(2)
}

fn run_scrub(rest: Vec<String>) -> ExitCode {
    use pimento_serve::{HealthLevel, Metrics, ProfileRegistry, ProfileStore, Scrubber};
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut profile_dir: Option<std::path::PathBuf> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--data-dir" => data_dir = Some(it.next().unwrap_or_else(|| scrub_usage()).into()),
            "--profile-dir" => {
                profile_dir = Some(it.next().unwrap_or_else(|| scrub_usage()).into())
            }
            "--help" | "-h" => scrub_usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                scrub_usage()
            }
        }
    }
    if data_dir.is_none() && profile_dir.is_none() {
        scrub_usage()
    }
    // Corpus side: recover the last published generation — it is both
    // what a server would serve and the scrubber's repair source. When
    // the directory is damaged beyond recovery there is nothing to
    // repair from offline: quarantine the wreckage so the next boot
    // starts clean, and report corrupt via the exit code.
    let engine = match &data_dir {
        Some(dir) => match Engine::from_sharded_dir(dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot recover corpus from {}: {e}", dir.display());
                if let Ok(store) = pimento_ingest::SegmentStore::open(dir.clone()) {
                    let moved = store.quarantine_corrupt(Default::default());
                    eprintln!(
                        "quarantined {moved} artifact(s); restore from a replica or re-seed"
                    );
                }
                return ExitCode::FAILURE;
            }
        },
        None => Engine::new(pimento::index::Collection::new()),
    };
    let live = Arc::new(pimento_ingest::LiveEngine::new(engine));
    let ingest = match pimento_ingest::Ingestor::new(
        Arc::clone(&live),
        pimento_ingest::IngestConfig {
            data_dir: data_dir.clone(),
            merge_threshold: 0,
            compact_shards: live.load().shard_count(),
            vfs: None,
        },
    ) {
        Ok(i) => Arc::new(i),
        Err(e) => {
            eprintln!("cannot attach segment store: {e}");
            return ExitCode::FAILURE;
        }
    };
    let store = match &profile_dir {
        Some(dir) => match ProfileStore::open(dir.clone()) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot open profile store: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Pre-load intact profiles into the registry (without quarantining
    // anything yet — that is the pass's job) so the scrubber can
    // re-persist a profile whose file it quarantines.
    let registry = Arc::new(ProfileRegistry::new());
    if let Some(store) = &store {
        let vfs = store.vfs();
        for path in vfs.list(store.dir()).unwrap_or_default() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !name.ends_with(".profile") {
                continue;
            }
            if let Ok(bytes) = vfs.read(&path) {
                if let Ok((user, rules)) = ProfileStore::verify_bytes(&bytes) {
                    if let Ok(profile) = parse_profile(&rules, &PrefRelRegistry::new()) {
                        registry.register_with_rules(&user, profile, &rules);
                    }
                }
            }
        }
    }
    let scrubber = Scrubber::new(ingest, store, registry, Arc::new(Metrics::new()));
    scrubber.run_pass();
    println!("{}", scrubber.health_body().render());
    if scrubber.health().overall() == HealthLevel::Ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `pimento snapshot`: build and inspect binary index snapshots.
fn snapshot_usage() -> ! {
    eprintln!(
        "usage: pimento snapshot build --docs FILE... --out PATH [--v3 | --shards N]\n\
         \x20      pimento snapshot inspect PATH\n\
         build    parse + index the documents, write a snapshot (columnar v4 by\n\
         \x20        default; --v3 writes the legacy collection-only format;\n\
         \x20        --shards N writes a sharded snapshot DIRECTORY at PATH: one\n\
         \x20        v4 file per doc-range segment plus a MANIFEST)\n\
         inspect  print the header, section directory, and per-section CRC\n\
         \x20        verdicts of a v3 or v4 snapshot — or, for a sharded snapshot\n\
         \x20        directory, the manifest plus per-segment verdicts; exit 1 if\n\
         \x20        any check fails"
    );
    std::process::exit(2)
}

/// `pimento snapshot inspect DIR`: validate a sharded snapshot directory
/// — manifest grammar/contiguity, then every segment file's directory and
/// per-section CRCs. One verdict line per segment; exit 1 if anything is
/// BAD or unreadable.
fn inspect_sharded(dir: &std::path::Path) -> ExitCode {
    let manifest_path = dir.join(pimento::index::MANIFEST_FILE);
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", manifest_path.display());
            return ExitCode::FAILURE;
        }
    };
    let manifest = match pimento::index::ShardManifest::parse(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{}: {e}", manifest_path.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: sharded snapshot, generation {}, {} segments, {} docs",
        dir.display(),
        manifest.generation,
        manifest.segments.len(),
        manifest.num_docs()
    );
    println!(
        "{:<22} {:>9} {:>7} {:>12}  verdict",
        "segment", "doc_base", "docs", "bytes"
    );
    let mut failed = false;
    for entry in &manifest.segments {
        let path = dir.join(&entry.file);
        let mut verdict = match std::fs::read(&path) {
            Err(e) => {
                failed = true;
                format!("BAD (cannot read: {e})")
            }
            Ok(data) => match pimento::index::inspect(&data) {
                Err(e) => {
                    failed = true;
                    format!("BAD ({e})")
                }
                Ok(report) => {
                    let crc_ok = report.directory_ok && report.sections.iter().all(|s| s.crc_ok);
                    if crc_ok {
                        format!("ok (v{}, {} bytes)", report.version, report.file_len)
                    } else {
                        failed = true;
                        let bad: Vec<&str> = report
                            .sections
                            .iter()
                            .filter(|s| !s.crc_ok)
                            .map(|s| s.name.as_str())
                            .collect();
                        format!(
                            "BAD (directory {}, bad sections: [{}])",
                            if report.directory_ok { "ok" } else { "BAD" },
                            bad.join(", ")
                        )
                    }
                }
            },
        };
        if let Some(tomb) = &entry.tombstones {
            // The sidecar must parse and its ids must fit the segment;
            // a bad sidecar is as fatal as a bad segment (recovery
            // would refuse the directory).
            let checked = std::fs::read_to_string(dir.join(tomb))
                .map_err(|e| e.to_string())
                .and_then(|t| {
                    pimento::index::TombstoneSet::parse(&t).map_err(|e| e.to_string())
                });
            match checked {
                Ok(t) if t.iter().all(|d| d.0 < entry.docs) => {
                    verdict.push_str(&format!(", {} deleted", t.deleted_count()));
                }
                Ok(_) => {
                    failed = true;
                    verdict.push_str(", tombstones BAD (id outside segment)");
                }
                Err(e) => {
                    failed = true;
                    verdict.push_str(&format!(", tombstones BAD ({e})"));
                }
            }
        }
        println!(
            "{:<22} {:>9} {:>7} {:>12}  {verdict}",
            entry.file,
            entry.doc_base,
            entry.docs,
            std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_snapshot(rest: Vec<String>) -> ExitCode {
    let mut it = rest.into_iter().peekable();
    match it.next().as_deref() {
        Some("build") => {
            let mut docs: Vec<String> = Vec::new();
            let mut out: Option<String> = None;
            let mut legacy = false;
            let mut shards = 0usize;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--docs" => {
                        while let Some(f) = it.peek() {
                            if f.starts_with("--") {
                                break;
                            }
                            docs.push(it.next().expect("peeked"));
                        }
                    }
                    "--out" => out = Some(it.next().unwrap_or_else(|| snapshot_usage())),
                    "--v3" => legacy = true,
                    "--shards" => {
                        shards = it
                            .next()
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| snapshot_usage())
                    }
                    _ => snapshot_usage(),
                }
            }
            if legacy && shards > 1 {
                eprintln!("--v3 and --shards are mutually exclusive");
                return ExitCode::FAILURE;
            }
            let (Some(out), false) = (out, docs.is_empty()) else {
                snapshot_usage()
            };
            let mut xmls = Vec::new();
            for path in &docs {
                match std::fs::read_to_string(path) {
                    Ok(s) => xmls.push(s),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let engine = match Engine::from_xml_docs(&xmls) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("cannot parse documents: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if shards > 1 {
                let sharded = match engine.reshard(shards) {
                    Ok(e) => e,
                    Err(e) => {
                        eprintln!("cannot shard corpus: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let dir = std::path::Path::new(&out);
                if let Err(e) = sharded.save_sharded_snapshot(dir) {
                    eprintln!("cannot write sharded snapshot {out}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote {out}: sharded snapshot, {} segments, {} docs",
                    sharded.shard_count(),
                    sharded.num_docs()
                );
                return ExitCode::SUCCESS;
            }
            let data = if legacy {
                engine.save_snapshot_v3()
            } else {
                engine.save_snapshot()
            };
            if let Err(e) = std::fs::write(&out, &data) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {out}: format v{}, {} docs, {} bytes",
                if legacy {
                    pimento_index::FORMAT_VERSION
                } else {
                    pimento_index::COLUMNAR_VERSION
                },
                engine.num_docs(),
                data.len()
            );
            ExitCode::SUCCESS
        }
        Some("inspect") => {
            let Some(path) = it.next() else {
                snapshot_usage()
            };
            if std::path::Path::new(&path).is_dir() {
                return inspect_sharded(std::path::Path::new(&path));
            }
            let data = match std::fs::read(&path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = match pimento_index::inspect(&data) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{path}: format v{}, {} bytes, directory {}",
                report.version,
                report.file_len,
                if report.directory_ok { "ok" } else { "BAD" }
            );
            println!(
                "{:<8} {:>10} {:>10} {:>10}  crc",
                "section", "offset", "len", "crc32"
            );
            for s in &report.sections {
                println!(
                    "{:<8} {:>10} {:>10} {:>10}  {}",
                    s.name,
                    s.offset,
                    s.len,
                    format!("{:08x}", s.crc),
                    if s.crc_ok { "ok" } else { "BAD" }
                );
            }
            if report.directory_ok && report.sections.iter().all(|s| s.crc_ok) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => snapshot_usage(),
    }
}

/// `pimento lint`: statically verify a profile (SR conflict cycles, VOR
/// alternating cycles, validation warnings) against a query, and — when
/// documents are supplied — verify the shape of every plan the engine
/// would assemble. Exits 1 on error-severity findings, 0 otherwise.
fn lint_usage() -> ! {
    eprintln!(
        "usage: pimento lint --profile RULES_FILE [--query QUERY] [--docs FILE...] [--k N]\n\
         Runs the static verifiers: Profile::verify (SR conflict graph, VOR\n\
         alternating cycles, validation warnings) and, with --docs, Plan::verify\n\
         on each strategy's assembled plan. Exit 1 if any error finding.\n\
       pimento lint --workspace [--root PATH] [--allowlist PATH] [--format text|json]\n\
         Runs the source-level static analyses over the workspace: the token\n\
         rules plus the call-graph passes (panic-path, lock-order,\n\
         unchecked-offset). Exit 1 on violations or stale lint.allow entries."
    );
    std::process::exit(2)
}

/// `pimento lint --workspace`: the source-level analyses, same engine as
/// the standalone `lint` binary (crates/lint).
fn run_lint_workspace(rest: Vec<String>) -> ExitCode {
    let mut root: Option<std::path::PathBuf> = None;
    let mut allowlist: Option<std::path::PathBuf> = None;
    let mut json = false;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => {}
            "--root" => root = Some(it.next().unwrap_or_else(|| lint_usage()).into()),
            "--allowlist" => allowlist = Some(it.next().unwrap_or_else(|| lint_usage()).into()),
            "--format" => match it.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => lint_usage(),
            },
            "--help" | "-h" => lint_usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                lint_usage()
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| lint::find_workspace_root_from(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "lint: no Cargo.toml found walking up from the current directory; pass --root"
            );
            return ExitCode::FAILURE;
        }
    };
    let allow_path = allowlist.unwrap_or_else(|| root.join("lint.allow"));
    match lint::scan_workspace(&root, &allow_path) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                println!("{report}");
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(rest: Vec<String>) -> ExitCode {
    if rest.iter().any(|a| a == "--workspace") {
        return run_lint_workspace(rest);
    }
    let mut profile_path: Option<String> = None;
    let mut query = String::from(r#"//car[ftcontains(., "good condition")]"#);
    let mut docs: Vec<String> = Vec::new();
    let mut k = 10usize;
    let mut it = rest.into_iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--profile" => profile_path = Some(it.next().unwrap_or_else(|| lint_usage())),
            "--query" => query = it.next().unwrap_or_else(|| lint_usage()),
            "--docs" => {
                while let Some(f) = it.peek() {
                    if f.starts_with("--") {
                        break;
                    }
                    docs.push(it.next().expect("peeked"));
                }
            }
            "--k" => {
                k = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| lint_usage())
            }
            "--help" | "-h" => lint_usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                lint_usage()
            }
        }
    }
    let Some(profile_path) = profile_path else {
        lint_usage()
    };

    let text = match std::fs::read_to_string(&profile_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {profile_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = match parse_profile(&text, &PrefRelRegistry::new()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{profile_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tpq = match pimento::tpq::parse_tpq(&query) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse query: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = profile.verify(&tpq);
    println!("{report}");
    let mut failed = report.has_errors();

    if !docs.is_empty() {
        let mut xmls = Vec::new();
        for path in &docs {
            match std::fs::read_to_string(path) {
                Ok(s) => xmls.push(s),
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let engine = match Engine::from_xml_docs(&xmls) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot parse documents: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Plan verification needs a prepared query; an unresolvable SR
        // cycle makes preparation itself fail, which the report above
        // already explains.
        if report.has_sr_cycle() {
            println!("plan verification skipped: scoping rules cannot be ordered");
        } else {
            match engine.prepare(&query, &profile) {
                Ok(prepared) => {
                    for (strategy, outcome) in engine.verify_plans(&prepared, k) {
                        match outcome {
                            Ok(()) => {
                                println!("plan {} verifies: ok", strategy.paper_name())
                            }
                            Err(err) => {
                                println!("plan {} UNSOUND: {err}", strategy.paper_name());
                                failed = true;
                            }
                        }
                    }
                }
                Err(e) => {
                    eprintln!("cannot prepare query: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

struct Args {
    docs: Vec<String>,
    query: String,
    profile: Option<String>,
    k: usize,
    strategy: PlanStrategy,
    explain: bool,
    analyze: bool,
    winnow: bool,
    threads: usize,
    shards: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: pimento --docs FILE... --query QUERY [--profile RULES_FILE] \
         [--k N] [--strategy naive|il|sil|push] [--threads N] [--shards N] [--explain] [--analyze] [--winnow]\n\
         --threads N   worker threads for query execution (0 = all cores, 1 = sequential)\n\
         --shards N    split the corpus into N doc-range segments and answer by\n\
         \x20             scatter-gather (bit-identical results; see DESIGN.md §15)\n\
       pimento lint --profile RULES_FILE [--query QUERY] [--docs FILE...] [--k N]\n\
         static profile + plan soundness verification (see `pimento lint --help`)\n\
       pimento lint --workspace [--format text|json]\n\
         source-level static analyses: token rules + call-graph passes\n\
       pimento serve (--docs FILE... | --snapshot FILE) [--addr HOST:PORT] [--threads N] ...\n\
         resident TCP query service (see `pimento serve --help`)\n\
       pimento snapshot build|inspect ...\n\
         build and inspect binary index snapshots (see `pimento snapshot --help`)\n\
       pimento scrub [--data-dir DIR] [--profile-dir DIR]\n\
         one-shot integrity scrub of the durable stores (see `pimento scrub --help`)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        docs: Vec::new(),
        query: String::new(),
        profile: None,
        k: 10,
        strategy: PlanStrategy::Push,
        explain: false,
        analyze: false,
        winnow: false,
        threads: 0,
        shards: 0,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--docs" => {
                while let Some(f) = it.peek() {
                    if f.starts_with("--") {
                        break;
                    }
                    args.docs.push(it.next().expect("peeked"));
                }
            }
            "--query" => args.query = it.next().unwrap_or_else(|| usage()),
            "--profile" => args.profile = Some(it.next().unwrap_or_else(|| usage())),
            "--k" => {
                args.k = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--strategy" => {
                args.strategy = match it.next().as_deref() {
                    Some("naive") => PlanStrategy::Naive,
                    Some("il") => PlanStrategy::InterleaveUnsorted,
                    Some("sil") => PlanStrategy::InterleaveSorted,
                    Some("push") => PlanStrategy::Push,
                    _ => usage(),
                }
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--shards" => {
                args.shards = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--explain" => args.explain = true,
            "--analyze" => args.analyze = true,
            "--winnow" => args.winnow = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    if args.docs.is_empty() || args.query.is_empty() {
        usage()
    }
    args
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("lint") {
        argv.remove(0);
        return run_lint(argv);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        argv.remove(0);
        return run_serve(argv);
    }
    if argv.first().map(String::as_str) == Some("snapshot") {
        argv.remove(0);
        return run_snapshot(argv);
    }
    if argv.first().map(String::as_str) == Some("scrub") {
        argv.remove(0);
        return run_scrub(argv);
    }
    let args = parse_args();

    let mut xmls = Vec::new();
    for path in &args.docs {
        match std::fs::read_to_string(path) {
            Ok(s) => xmls.push(s),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut engine = match Engine::from_xml_docs(&xmls) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot parse documents: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.shards > 1 {
        engine = match engine.reshard(args.shards) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot shard corpus: {e}");
                return ExitCode::FAILURE;
            }
        };
    }

    let profile = match &args.profile {
        None => UserProfile::new(),
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_profile(&text, &PrefRelRegistry::new()) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if args.analyze {
        // Corpus summary.
        let db = engine.db();
        print!(
            "{}",
            pimento::index::CorpusStats::compute(&db.coll, &db.inverted, &db.tags).render()
        );
        // Profile lint.
        for warning in pimento::profile::validate(&profile) {
            println!("profile warning: {warning}");
        }
        match pimento::analyze(&args.query, &profile) {
            Ok(report) => print!("{}", report.text),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        println!();
    }

    let opts = SearchOptions {
        strategy: args.strategy,
        eval_mode: pimento::EvalMode::StructuralJoin,
        trace: args.explain,
        minimize: true,
        kor_order: KorOrder::HighestWeightFirst,
        threads: args.threads,
        ..SearchOptions::top(args.k)
    };
    let results = if args.winnow {
        match engine.winnow(&args.query, &profile, args.k) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match engine.search(&args.query, &profile, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };

    if !results.applied_rules.is_empty() || !results.skipped_rules.is_empty() {
        println!(
            "scoping rules applied: [{}] skipped: [{}] (flock of {})",
            results.applied_rules.join(", "),
            results.skipped_rules.join(", "),
            results.flock_size
        );
    }
    for hit in &results.hits {
        println!(
            "#{:<3} K={:<6.2} S={:<6.3} doc{} {}",
            hit.rank, hit.k, hit.s, hit.elem.doc.0, hit.text
        );
        if !hit.satisfied_kors.is_empty() || !hit.satisfied_optional.is_empty() {
            println!(
                "     because: kors={:?} optional={:?}",
                hit.satisfied_kors, hit.satisfied_optional
            );
        }
    }
    if results.hits.is_empty() {
        println!("(no answers)");
    }
    if args.explain {
        println!("\nplan: {}", results.explain);
        if !results.trace.is_empty() {
            println!("\n{}", results.trace);
        }
        println!(
            "stats: base={} pruned={} bulk={} ft_probes={} vor_cmps={}",
            results.stats.base_answers,
            results.stats.pruned,
            results.stats.bulk_pruned,
            results.stats.ft_probes,
            results.stats.vor_comparisons
        );
        if results.worker_stats.len() > 1 {
            let shard_breakdown = !results.shard_times_us.is_empty();
            for (i, w) in results.worker_stats.iter().enumerate() {
                let label = if shard_breakdown { "shard" } else { "worker" };
                let time = results
                    .shard_times_us
                    .get(i)
                    .map(|us| format!(" time={us}µs"))
                    .unwrap_or_default();
                println!(
                    "  {label} {i}: base={} pruned={} bulk={} ft_probes={} vor_cmps={}{time}",
                    w.base_answers, w.pruned, w.bulk_pruned, w.ft_probes, w.vor_comparisons
                );
            }
        }
    }
    ExitCode::SUCCESS
}
