//! LRU cache of compiled per-(user, query) state.
//!
//! Values are [`Arc<PreparedSearch>`] — the output of
//! [`pimento::Engine::prepare`], i.e. the SR conflict resolution, flock
//! encoding, VOR compilation and keyword analysis for one (profile,
//! query) pair. PIMENTO's premise is that profiles are long-lived
//! per-user state reused across many queries, so this work is paid once
//! per pair instead of per request.
//!
//! Keys carry two independent generations, and each write path purges
//! exactly its own entries:
//!
//! * the profile **generation** ([`crate::registry`]): a
//!   `register_profile` bumps the user's generation, so entries
//!   compiled against the old profile can never be returned again. The
//!   server also purges them eagerly via
//!   [`PreparedCache::invalidate_user`];
//! * the **corpus generation** ([`pimento::Engine::generation`]): an
//!   ingest publish bumps it, so plans compiled against the previous
//!   corpus (stale symbol tables, stale scoring stats) can never be
//!   returned again. The publish hook purges them eagerly via
//!   [`PreparedCache::purge_stale_corpus`].
//!
//! The cache itself is a plain `HashMap` + logical clock; eviction
//! scans for the least-recently-used entry, which is O(capacity) but
//! only runs on insert-over-capacity — capacities are small (hundreds)
//! and the scan touches no locks beyond the one the caller holds.

use pimento::PreparedSearch;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: one compiled plan per (user session, profile generation,
/// corpus generation, query text) tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Session key (empty string for the unpersonalized profile).
    pub user: String,
    /// Profile generation the entry was compiled against.
    pub generation: u64,
    /// Corpus generation the entry was compiled against.
    pub corpus: u64,
    /// Verbatim query text.
    pub query: String,
}

struct Entry {
    prepared: Arc<PreparedSearch>,
    last_used: u64,
}

/// The LRU cache. Not internally synchronized — the server wraps it in
/// one mutex and keeps `prepare` calls outside the critical section.
pub struct PreparedCache {
    capacity: usize,
    clock: u64,
    map: HashMap<CacheKey, Entry>,
}

impl PreparedCache {
    /// Cache holding at most `capacity` entries (`0` disables caching:
    /// every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> PreparedCache {
        PreparedCache {
            capacity,
            clock: 0,
            map: HashMap::new(),
        }
    }

    /// Look up a compiled entry, refreshing its recency on hit.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Arc<PreparedSearch>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.prepared)
        })
    }

    /// Insert a compiled entry; returns how many entries were evicted
    /// (0 or 1 — capacity shrinks by at most one per insert).
    pub fn insert(&mut self, key: CacheKey, prepared: Arc<PreparedSearch>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        self.clock += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
                evicted = 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                prepared,
                last_used: self.clock,
            },
        );
        evicted
    }

    /// Drop every entry belonging to `user` (all generations); returns
    /// how many were purged. Entries of other users — and anonymous
    /// entries — are untouched regardless of corpus generation.
    pub fn invalidate_user(&mut self, user: &str) -> usize {
        let before = self.map.len();
        self.map.retain(|k, _| k.user != user);
        before - self.map.len()
    }

    /// Drop every entry compiled against a corpus generation other than
    /// `current` (the ingest publish hook calls this with each newly
    /// published generation); returns how many were purged. Entries at
    /// the current generation — whoever owns them — are untouched.
    pub fn purge_stale_corpus(&mut self, current: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|k, _| k.corpus == current);
        before - self.map.len()
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento::profile::UserProfile;
    use pimento::Engine;

    fn prepared(e: &Engine, q: &str) -> Arc<PreparedSearch> {
        Arc::new(e.prepare(q, &UserProfile::new()).unwrap())
    }

    fn key(user: &str, generation: u64, query: &str) -> CacheKey {
        corpus_key(user, generation, 0, query)
    }

    fn corpus_key(user: &str, generation: u64, corpus: u64, query: &str) -> CacheKey {
        CacheKey {
            user: user.into(),
            generation,
            corpus,
            query: query.into(),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let e = Engine::from_xml_docs(&["<a><b>x</b><c>y</c></a>"]).unwrap();
        let mut cache = PreparedCache::new(2);
        assert!(cache.lookup(&key("u", 1, "//b")).is_none());
        cache.insert(key("u", 1, "//b"), prepared(&e, "//b"));
        cache.insert(key("u", 1, "//c"), prepared(&e, "//c"));
        // Touch //b so //c becomes the LRU victim.
        assert!(cache.lookup(&key("u", 1, "//b")).is_some());
        assert_eq!(cache.insert(key("u", 1, "//a"), prepared(&e, "//a")), 1);
        assert!(cache.lookup(&key("u", 1, "//b")).is_some());
        assert!(
            cache.lookup(&key("u", 1, "//c")).is_none(),
            "LRU entry gone"
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn generation_and_user_invalidation() {
        let e = Engine::from_xml_docs(&["<a><b>x</b></a>"]).unwrap();
        let mut cache = PreparedCache::new(8);
        cache.insert(key("u1", 1, "//b"), prepared(&e, "//b"));
        cache.insert(key("u1", 1, "//a"), prepared(&e, "//a"));
        cache.insert(key("u2", 1, "//b"), prepared(&e, "//b"));
        // A generation bump misses even before the purge.
        assert!(cache.lookup(&key("u1", 2, "//b")).is_none());
        assert_eq!(cache.invalidate_user("u1"), 2);
        assert!(cache.lookup(&key("u1", 1, "//b")).is_none());
        assert!(
            cache.lookup(&key("u2", 1, "//b")).is_some(),
            "other users untouched"
        );
    }

    /// Corpus-generation bumps and profile-generation bumps must each
    /// purge exactly their own entries: an ingest publish may not evict
    /// another corpus-current user's plans, a profile re-registration
    /// may not evict other users or anonymous plans, and neither purge
    /// may leave an entry that a stale key could still hit.
    #[test]
    fn purges_are_isolated_per_generation_axis() {
        struct Case {
            name: &'static str,
            // (user, profile_gen, corpus_gen) entries seeded before the purge.
            seeded: &'static [(&'static str, u64, u64)],
            // The purge to run: Some(user) = profile bump, None = corpus
            // publish at `corpus_now`.
            bump_user: Option<&'static str>,
            corpus_now: u64,
            expect_purged: usize,
            // Keys that must still hit / must now miss.
            survivors: &'static [(&'static str, u64, u64)],
            gone: &'static [(&'static str, u64, u64)],
        }
        let cases = [
            Case {
                name: "corpus publish purges only stale-corpus entries",
                seeded: &[("u1", 1, 0), ("u2", 1, 1), ("", 0, 0), ("", 0, 1)],
                bump_user: None,
                corpus_now: 1,
                expect_purged: 2,
                survivors: &[("u2", 1, 1), ("", 0, 1)],
                gone: &[("u1", 1, 0), ("", 0, 0)],
            },
            Case {
                name: "profile bump purges only that user",
                seeded: &[("u1", 1, 0), ("u1", 1, 1), ("u2", 1, 1), ("", 0, 1)],
                bump_user: Some("u1"),
                corpus_now: 1,
                expect_purged: 2,
                survivors: &[("u2", 1, 1), ("", 0, 1)],
                gone: &[("u1", 1, 0), ("u1", 1, 1)],
            },
            Case {
                name: "corpus publish with nothing stale purges nothing",
                seeded: &[("u1", 3, 2), ("", 0, 2)],
                bump_user: None,
                corpus_now: 2,
                expect_purged: 0,
                survivors: &[("u1", 3, 2), ("", 0, 2)],
                gone: &[],
            },
            Case {
                name: "profile bump of unknown user purges nothing",
                seeded: &[("u1", 1, 0), ("", 0, 0)],
                bump_user: Some("ghost"),
                corpus_now: 0,
                expect_purged: 0,
                survivors: &[("u1", 1, 0), ("", 0, 0)],
                gone: &[],
            },
        ];
        let e = Engine::from_xml_docs(&["<a><b>x</b></a>"]).unwrap();
        let p = prepared(&e, "//b");
        for case in &cases {
            let mut cache = PreparedCache::new(64);
            for &(user, pg, cg) in case.seeded {
                cache.insert(corpus_key(user, pg, cg, "//b"), Arc::clone(&p));
            }
            let purged = match case.bump_user {
                Some(user) => cache.invalidate_user(user),
                None => cache.purge_stale_corpus(case.corpus_now),
            };
            assert_eq!(purged, case.expect_purged, "{}: purge count", case.name);
            for &(user, pg, cg) in case.survivors {
                assert!(
                    cache.lookup(&corpus_key(user, pg, cg, "//b")).is_some(),
                    "{}: ({user},{pg},{cg}) must survive",
                    case.name
                );
            }
            for &(user, pg, cg) in case.gone {
                assert!(
                    cache.lookup(&corpus_key(user, pg, cg, "//b")).is_none(),
                    "{}: ({user},{pg},{cg}) must be purged",
                    case.name
                );
            }
            assert_eq!(
                cache.len(),
                case.survivors.len(),
                "{}: no other entries remain",
                case.name
            );
        }
    }

    #[test]
    fn zero_capacity_disables() {
        let e = Engine::from_xml_docs(&["<a><b>x</b></a>"]).unwrap();
        let mut cache = PreparedCache::new(0);
        assert_eq!(cache.insert(key("u", 1, "//b"), prepared(&e, "//b")), 0);
        assert!(cache.lookup(&key("u", 1, "//b")).is_none());
        assert!(cache.is_empty());
    }
}
