//! A minimal blocking client for the serve protocol — used by the
//! integration tests, the load generator, and the CLI smoke check. One
//! request in flight per connection (the server supports pipelining;
//! this client simply doesn't).

use crate::json::{obj, Value};
use crate::protocol::{read_frame, write_frame, FrameError, FRAME_HARD_CAP};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (including the server closing mid-reply).
    Io(io::Error),
    /// The reply frame wasn't valid protocol JSON.
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// Stable error kind (see [`crate::protocol::err_kind`]).
        kind: String,
        /// Human-readable detail.
        msg: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { kind, msg } => write!(f, "server error [{kind}]: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::TooLarge(n) => {
                ClientError::Protocol(format!("reply frame of {n} bytes exceeds the cap"))
            }
        }
    }
}

impl ClientError {
    /// The server-side error kind, if this is a typed server error.
    pub fn kind(&self) -> Option<&str> {
        match self {
            ClientError::Server { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

/// One connection to a pimento server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // One small request frame per round trip: Nagle only hurts here.
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Connect with a connect/read/write timeout (`None` blocks forever).
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".to_string()))?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream })
    }

    /// Send one request object, wait for its reply, and unwrap the
    /// `{"ok": …}` / `{"err": …}` envelope.
    pub fn request(&mut self, req: &Value) -> Result<Value, ClientError> {
        write_frame(&mut self.stream, req.render().as_bytes())?;
        let payload = read_frame(&mut self.stream, FRAME_HARD_CAP)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".to_string()))?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("reply is not UTF-8".to_string()))?;
        let reply =
            Value::parse(text).map_err(|e| ClientError::Protocol(format!("bad reply JSON: {e}")))?;
        if let Some(body) = reply.get("ok") {
            return Ok(body.clone());
        }
        if let Some(err) = reply.get("err") {
            return Err(ClientError::Server {
                kind: err.get("kind").and_then(Value::as_str).unwrap_or("internal").to_string(),
                msg: err.get("msg").and_then(Value::as_str).unwrap_or("").to_string(),
            });
        }
        Err(ClientError::Protocol("reply has neither `ok` nor `err`".to_string()))
    }

    /// `register_profile` for `user` from rule-language text.
    pub fn register_profile(&mut self, user: &str, rules: &str) -> Result<Value, ClientError> {
        self.request(&obj([
            ("cmd", "register_profile".into()),
            ("user", user.into()),
            ("rules", rules.into()),
        ]))
    }

    /// Top-`k` search as `user` (`None` = unpersonalized).
    pub fn search(&mut self, user: Option<&str>, query: &str, k: usize) -> Result<Value, ClientError> {
        let mut fields = vec![
            ("cmd".to_string(), Value::from("search")),
            ("query".to_string(), Value::from(query)),
            ("k".to_string(), Value::from(k)),
        ];
        if let Some(u) = user {
            fields.push(("user".to_string(), u.into()));
        }
        self.request(&Value::Obj(fields))
    }

    /// Metrics snapshot.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request(&obj([("cmd", "stats".into())]))
    }

    /// Ask the server to drain and stop; returns the final snapshot.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.request(&obj([("cmd", "shutdown".into())]))
    }
}
