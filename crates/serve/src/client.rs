//! A minimal blocking client for the serve protocol — used by the
//! integration tests, the load generator, and the CLI smoke check. One
//! request in flight per connection (the server supports pipelining;
//! this client simply doesn't).
//!
//! [`Client::request_with_retry`] adds bounded exponential backoff with
//! deterministic jitter for `overloaded` rejections and transient
//! transport failures (reconnecting for the latter). Retries are
//! at-least-once: every protocol command is idempotent on the server
//! (`register_profile` re-registration is a no-op-equivalent generation
//! bump), so a retried request that already executed is safe.

use crate::json::{obj, Value};
use crate::protocol::{read_frame, write_frame, FrameError, FRAME_HARD_CAP};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (including the server closing mid-reply).
    Io(io::Error),
    /// The reply frame wasn't valid protocol JSON.
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// Stable error kind (see [`crate::protocol::err_kind`]).
        kind: String,
        /// Human-readable detail.
        msg: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { kind, msg } => write!(f, "server error [{kind}]: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::TooLarge(n) => {
                ClientError::Protocol(format!("reply frame of {n} bytes exceeds the cap"))
            }
        }
    }
}

impl ClientError {
    /// The server-side error kind, if this is a typed server error.
    pub fn kind(&self) -> Option<&str> {
        match self {
            ClientError::Server { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

/// Bounded exponential backoff with deterministic jitter, for
/// [`Client::request_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = fail fast).
    pub max_retries: u32,
    /// Delay before the first retry; doubles each attempt.
    pub base_delay: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_delay: Duration,
    /// Jitter seed. The whole backoff schedule is a pure function of
    /// (seed, attempt), so retry timing is reproducible in tests.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retry number `attempt` (0-based):
    /// `min(max_delay, base_delay · 2^attempt)` scaled by a
    /// deterministic jitter factor in `[0.5, 1.0]` — jitter spreads
    /// synchronized retry storms without ever exceeding the cap.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.max_delay);
        // splitmix64 of (seed, attempt) → uniform fraction in [0.5, 1.0).
        let mut z = self.seed ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = 0.5 + ((z >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
        capped.mul_f64(frac)
    }
}

/// What a retry should do about the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetryAction {
    /// Not retryable (typed server errors other than `overloaded`,
    /// malformed replies): the request itself is wrong.
    No,
    /// Retry on the same connection after backing off (`overloaded`:
    /// the connection is fine, the queue was full).
    SameConn,
    /// The connection is suspect (reset, EOF mid-reply, timeout —
    /// frames may be desynchronized): back off, then reconnect.
    Reconnect,
}

fn retry_action(err: &ClientError) -> RetryAction {
    match err {
        ClientError::Server { kind, .. } if kind == "overloaded" => RetryAction::SameConn,
        ClientError::Server { .. } => RetryAction::No,
        ClientError::Io(e) => match e.kind() {
            io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock => RetryAction::Reconnect,
            _ => RetryAction::No,
        },
        // The server (or a proxy) closed before replying — transient by
        // construction: a draining server does exactly this.
        ClientError::Protocol(msg) if msg.starts_with("server closed") => RetryAction::Reconnect,
        ClientError::Protocol(_) => RetryAction::No,
    }
}

/// One connection to a pimento server.
pub struct Client {
    stream: TcpStream,
    /// Resolved peer, kept for reconnects during retry.
    peer: Option<SocketAddr>,
    /// The timeout the connection was configured with, reapplied on
    /// reconnect.
    timeout: Option<Duration>,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // One small request frame per round trip: Nagle only hurts here.
        let _ = stream.set_nodelay(true);
        let peer = stream.peer_addr().ok();
        Ok(Client {
            stream,
            peer,
            timeout: None,
        })
    }

    /// Connect with a connect/read/write timeout (`None` blocks forever).
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".to_string()))?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client {
            stream,
            peer: Some(resolved),
            timeout: Some(timeout),
        })
    }

    /// Drop the current stream and dial the remembered peer again.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let peer = self.peer.ok_or_else(|| {
            ClientError::Protocol("no peer address remembered for reconnect".to_string())
        })?;
        let stream = match self.timeout {
            Some(t) => TcpStream::connect_timeout(&peer, t)?,
            None => TcpStream::connect(peer)?,
        };
        let _ = stream.set_nodelay(true);
        if let Some(t) = self.timeout {
            stream.set_read_timeout(Some(t))?;
            stream.set_write_timeout(Some(t))?;
        }
        self.stream = stream;
        Ok(())
    }

    /// Send one request object, wait for its reply, and unwrap the
    /// `{"ok": …}` / `{"err": …}` envelope.
    pub fn request(&mut self, req: &Value) -> Result<Value, ClientError> {
        write_frame(&mut self.stream, req.render().as_bytes())?;
        let payload = read_frame(&mut self.stream, FRAME_HARD_CAP)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".to_string()))?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| ClientError::Protocol("reply is not UTF-8".to_string()))?;
        let reply = Value::parse(text)
            .map_err(|e| ClientError::Protocol(format!("bad reply JSON: {e}")))?;
        if let Some(body) = reply.get("ok") {
            return Ok(body.clone());
        }
        if let Some(err) = reply.get("err") {
            return Err(ClientError::Server {
                kind: err
                    .get("kind")
                    .and_then(Value::as_str)
                    .unwrap_or("internal")
                    .to_string(),
                msg: err
                    .get("msg")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            });
        }
        Err(ClientError::Protocol(
            "reply has neither `ok` nor `err`".to_string(),
        ))
    }

    /// [`Client::request`] under a [`RetryPolicy`]: `overloaded`
    /// rejections back off and retry on the same connection; transient
    /// transport failures back off, reconnect, and retry. Typed server
    /// errors and malformed replies fail immediately. At-least-once:
    /// a retried request may have already executed on the server.
    pub fn request_with_retry(
        &mut self,
        req: &Value,
        policy: &RetryPolicy,
    ) -> Result<Value, ClientError> {
        let mut attempt = 0u32;
        loop {
            let err = match self.request(req) {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let action = retry_action(&err);
            if action == RetryAction::No || attempt >= policy.max_retries {
                return Err(err);
            }
            thread::sleep(policy.backoff(attempt));
            if action == RetryAction::Reconnect {
                // Best-effort: a refused reconnect just burns this
                // attempt; the next one dials again.
                let _ = self.reconnect();
            }
            attempt += 1;
        }
    }

    /// `register_profile` for `user` from rule-language text.
    pub fn register_profile(&mut self, user: &str, rules: &str) -> Result<Value, ClientError> {
        self.request(&obj([
            ("cmd", "register_profile".into()),
            ("user", user.into()),
            ("rules", rules.into()),
        ]))
    }

    /// Top-`k` search as `user` (`None` = unpersonalized).
    pub fn search(
        &mut self,
        user: Option<&str>,
        query: &str,
        k: usize,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            ("cmd".to_string(), Value::from("search")),
            ("query".to_string(), Value::from(query)),
            ("k".to_string(), Value::from(k)),
        ];
        if let Some(u) = user {
            fields.push(("user".to_string(), u.into()));
        }
        self.request(&Value::Obj(fields))
    }

    /// `add_documents`: ingest a batch of XML documents. The response's
    /// `generation` is already visible to every later search (and
    /// durable, when the server persists its corpus).
    pub fn add_documents(&mut self, docs: &[String]) -> Result<Value, ClientError> {
        let docs: Vec<Value> = docs.iter().map(|d| d.as_str().into()).collect();
        self.request(&obj([
            ("cmd", "add_documents".into()),
            ("docs", Value::Arr(docs)),
        ]))
    }

    /// `delete_documents`: tombstone a batch of document ids.
    pub fn delete_documents(&mut self, ids: &[u32]) -> Result<Value, ClientError> {
        let ids: Vec<Value> = ids.iter().map(|&i| u64::from(i).into()).collect();
        self.request(&obj([
            ("cmd", "delete_documents".into()),
            ("ids", Value::Arr(ids)),
        ]))
    }

    /// Metrics snapshot.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request(&obj([("cmd", "stats".into())]))
    }

    /// Ask the server to drain and stop; returns the final snapshot.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.request(&obj([("cmd", "shutdown".into())]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(120),
            seed: 42,
        };
        for attempt in 0..10 {
            let d = p.backoff(attempt);
            assert_eq!(d, p.backoff(attempt), "same (seed, attempt) → same delay");
            assert!(d <= p.max_delay, "attempt {attempt}: {d:?} over cap");
            // Jitter floor: at least half the uncapped exponential.
            let exp = p
                .base_delay
                .saturating_mul(1u32 << attempt.min(16))
                .min(p.max_delay);
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} under jitter floor");
        }
        // A different seed shifts the schedule somewhere.
        let q = RetryPolicy {
            seed: 43,
            ..p.clone()
        };
        assert!((0..10).any(|a| p.backoff(a) != q.backoff(a)));
        // Huge attempt numbers don't overflow.
        let _ = p.backoff(u32::MAX);
    }

    #[test]
    fn retry_classification() {
        let overloaded = ClientError::Server {
            kind: "overloaded".to_string(),
            msg: "queue full".to_string(),
        };
        assert_eq!(retry_action(&overloaded), RetryAction::SameConn);
        let query_err = ClientError::Server {
            kind: "query".to_string(),
            msg: "bad".to_string(),
        };
        assert_eq!(retry_action(&query_err), RetryAction::No);
        let reset = ClientError::Io(io::Error::from(io::ErrorKind::ConnectionReset));
        assert_eq!(retry_action(&reset), RetryAction::Reconnect);
        let perm = ClientError::Io(io::Error::from(io::ErrorKind::PermissionDenied));
        assert_eq!(retry_action(&perm), RetryAction::No);
        let closed = ClientError::Protocol("server closed before replying".to_string());
        assert_eq!(retry_action(&closed), RetryAction::Reconnect);
        let garbage = ClientError::Protocol("bad reply JSON: x".to_string());
        assert_eq!(retry_action(&garbage), RetryAction::No);
    }

    #[test]
    fn none_policy_fails_fast() {
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }
}
