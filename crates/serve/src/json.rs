//! Minimal JSON for the wire protocol (DESIGN.md §11).
//!
//! The serving layer is dependency-free, so this module implements the
//! exact JSON subset the protocol needs: a [`Value`] tree, a recursive
//! descent parser with a depth cap (untrusted input must not overflow
//! the stack), and a writer whose `f64` rendering round-trips exactly —
//! `Display` for `f64` is shortest-round-trip, which is what keeps the
//! `S`/`K` scores bit-identical across the wire (the loopback
//! equivalence tests compare `f64::to_bits`).

use std::fmt;

/// Nesting depth past which the parser refuses (arrays/objects).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the protocol's integers stay exact below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects negatives,
    /// NaN and fractional values — protocol counters and sizes only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing bytes after JSON value"));
        }
        Ok(v)
    }

    /// Serialize to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

/// Build an object value: `obj([("cmd", "search".into()), …])`.
pub fn obj<const N: usize>(fields: [(&str, Value); N]) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        // Integer-valued floats print without the fraction; both forms
        // parse back to the identical f64 (exact integers round-trip).
        // Negative zero takes the `{n}` path so its sign bit survives.
        if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 && (n != 0.0 || n.is_sign_positive()) {
            let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
        } else {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
    } else {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_lit(&mut self, lit: &str) -> Result<(), JsonError> {
        if self
            .bytes
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(lit.as_bytes()))
        {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_lit("null").map(|()| Value::Null),
            Some(b't') => self.expect_lit("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_lit("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]`"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:`"));
            }
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}`"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            match self.bytes.get(start..self.pos).map(std::str::from_utf8) {
                Some(Ok(chunk)) => out.push_str(chunk),
                _ => return Err(self.err("invalid UTF-8 in string")),
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control byte in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the matching low half.
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(self.err("invalid \\u escape")),
                }
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = match self.bytes.get(start..self.pos).map(std::str::from_utf8) {
            Some(Ok(t)) => t,
            _ => return Err(self.err("invalid number")),
        };
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"[1,2,3]"#,
            r#"{"a":1,"b":[true,null],"c":{"d":"x"}}"#,
            r#""quote \" backslash \\ newline \n""#,
        ];
        for c in cases {
            let v = Value::parse(c).unwrap();
            let w = Value::parse(&v.render()).unwrap();
            assert_eq!(v, w, "{c}");
        }
    }

    #[test]
    fn f64_round_trips_bit_identical() {
        for n in [0.1 + 0.2, 1.0 / 3.0, 2.0, -0.0, 1e-300, 123456789.123456] {
            let rendered = Value::Num(n).render();
            let back = Value::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse(r#""a\u00e9b\ud83d\ude00c""#).unwrap();
        assert_eq!(v.as_str(), Some("aéb😀c"));
        // Control chars render escaped and round-trip.
        let s = Value::Str("\u{0001}x".to_string());
        assert_eq!(Value::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "1 2",
            "\"\\u12\"",
            "nan",
            "--1",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad}");
        }
        // Depth cap holds.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"k":10,"q":"//car","flag":true,"xs":[1]}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(10));
        assert_eq!(v.get("q").and_then(Value::as_str), Some("//car"));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Value::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
    }
}
