//! # pimento-serve
//!
//! A resident, concurrent query service over a [`pimento::Engine`]
//! (DESIGN.md §11). PIMENTO's cost model assumes profiles are long-lived
//! state reused across many queries; a per-process CLI re-pays parsing,
//! scoping enforcement, and VOR compilation on every invocation. This
//! crate keeps the engine warm behind a TCP endpoint and caches compiled
//! per-(user, query) state across requests.
//!
//! Dependency-free by design: `std::net` sockets, a vendored JSON module
//! ([`json`]), and a 4-byte length-delimited frame protocol
//! ([`protocol`]). Layers:
//!
//! * [`registry`] — per-user profile sessions with generation stamps;
//! * [`cache`] — LRU of `Arc<PreparedSearch>` keyed by
//!   (user, generation, query);
//! * [`metrics`] — lock-cheap counters + latency histograms;
//! * [`server`] — acceptor / reader / worker-pool topology with bounded
//!   queueing, deadlines, and draining shutdown;
//! * [`client`] — a small blocking client for tests and tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;

pub use cache::{CacheKey, PreparedCache};
pub use client::{Client, ClientError};
pub use json::Value;
pub use metrics::Metrics;
pub use protocol::{err_kind, Request};
pub use registry::ProfileRegistry;
pub use server::{ServeConfig, ServeError, Server};
