//! # pimento-serve
//!
//! A resident, concurrent query service over a [`pimento::Engine`]
//! (DESIGN.md §11). PIMENTO's cost model assumes profiles are long-lived
//! state reused across many queries; a per-process CLI re-pays parsing,
//! scoping enforcement, and VOR compilation on every invocation. This
//! crate keeps the engine warm behind a TCP endpoint and caches compiled
//! per-(user, query) state across requests.
//!
//! Dependency-free by design: `std::net` sockets, a vendored JSON module
//! ([`json`]), and a 4-byte length-delimited frame protocol
//! ([`protocol`]). Layers:
//!
//! * [`registry`] — per-user profile sessions with generation stamps;
//! * [`cache`] — LRU of `Arc<PreparedSearch>` keyed by
//!   (user, generation, query);
//! * [`metrics`] — lock-cheap counters + latency histograms;
//! * [`server`] — acceptor / reader / worker-pool topology with bounded
//!   queueing, deadlines, per-request panic isolation, and draining
//!   shutdown;
//! * [`store`] — crash-safe durable profile persistence (write-temp +
//!   fsync + atomic rename, checksummed, quarantine-on-corrupt);
//! * [`scrub`] — online integrity scrubber: periodic re-verification of
//!   every durable artifact with quarantine-and-repair and the `health`
//!   verb (DESIGN.md §17);
//! * [`client`] — a small blocking client with bounded-backoff retry for
//!   tests and tooling.
//!
//! The failure model — which fault can fire where, and what typed error
//! or degradation each one maps to — is cataloged in DESIGN.md §12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod scrub;
pub mod server;
pub mod store;

/// The deterministic fault-injection registry, re-exported so the chaos
/// suite can install seeded [`pimento_faults::FaultPlan`]s against the
/// named fault points this crate compiles in.
#[cfg(feature = "fault-injection")]
pub use pimento_faults as faults;

pub use cache::{CacheKey, PreparedCache};
pub use client::{Client, ClientError, RetryPolicy};
pub use json::Value;
pub use metrics::Metrics;
pub use protocol::{err_kind, Request};
pub use registry::ProfileRegistry;
pub use scrub::{
    spawn_scrubber, ComponentHealth, HealthLevel, HealthReport, PassSummary, Scrubber,
    ScrubberHandle,
};
pub use server::{ServeConfig, ServeError, Server};
pub use store::{ProfileStore, Recovered, StoreError};
