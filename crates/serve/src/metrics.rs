//! Lock-cheap service metrics (DESIGN.md §11).
//!
//! All counters are relaxed atomics — the registry sits on the request
//! path, so it must never contend. Two identities tie the registry
//! together, asserted by the integration tests and checkable from any
//! `stats` snapshot:
//!
//! * `requests == responses_ok + responses_err + rejected_overload +
//!   rejected_deadline` — every decoded request is answered exactly once;
//! * `cache_lookups == cache_hits + cache_misses`.

use crate::json::{obj, Value};
use pimento::algebra::ExecStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Upper bounds (µs) of the fixed latency histogram buckets; one
/// implicit `+Inf` bucket follows.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000, 250_000, 1_000_000,
];

/// Per-shard scan-time slots in the registry. Engines with more segments
/// fold the excess into the last slot.
pub const MAX_SHARD_SLOTS: usize = 16;

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// The service metrics registry.
        #[derive(Debug)]
        pub struct Metrics {
            start: Instant,
            $($(#[$doc])* pub $name: AtomicU64,)*
            /// Latency histogram bucket counts (`LATENCY_BUCKETS_US` + `+Inf`).
            pub lat_buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
            /// Total observed latency, µs.
            pub lat_sum_us: AtomicU64,
            /// Observations in the histogram.
            pub lat_count: AtomicU64,
            /// Cumulative per-shard scan wall time, µs; slot `i` holds
            /// segment `i` (segments past `MAX_SHARD_SLOTS` fold into the
            /// last slot).
            pub shard_scan_us: [AtomicU64; MAX_SHARD_SLOTS],
        }

        impl Metrics {
            /// Fresh registry; `start` anchors the uptime report.
            pub fn new() -> Metrics {
                Metrics {
                    start: Instant::now(),
                    $($name: AtomicU64::new(0),)*
                    lat_buckets: Default::default(),
                    lat_sum_us: AtomicU64::new(0),
                    lat_count: AtomicU64::new(0),
                    shard_scan_us: Default::default(),
                }
            }
        }
    };
}

counters! {
    /// Connections the acceptor admitted.
    conns_accepted,
    /// Connections turned away (connection limit or draining).
    conns_rejected,
    /// Requests decoded off an admitted connection.
    requests,
    /// Requests answered with `{"ok": …}`.
    responses_ok,
    /// Requests answered with a typed error other than a rejection.
    responses_err,
    /// Requests rejected because the bounded queue was full.
    rejected_overload,
    /// Requests rejected because their deadline expired while queued.
    rejected_deadline,
    /// Request handlers that panicked; each also counts one
    /// `responses_err` (the caller gets a typed `internal` error).
    panics,
    /// Worker threads respawned after their loop panicked outside a
    /// request handler.
    worker_respawns,
    /// `ok` responses served in degraded (unpersonalized-fallback) mode;
    /// a subset of `responses_ok`.
    degraded,
    /// Profile persistence failures (registration stayed live in memory).
    store_errors,
    /// Profiles recovered intact from the durable store at startup.
    profiles_recovered,
    /// Corrupt store files quarantined at startup.
    profiles_quarantined,
    /// Compiled-profile cache probes.
    cache_lookups,
    /// Cache probes that found a live entry.
    cache_hits,
    /// Cache probes that missed (a `prepare` followed).
    cache_misses,
    /// Entries evicted by LRU capacity pressure.
    cache_evictions,
    /// Entries purged by `register_profile` generation bumps.
    cache_invalidations,
    /// Milliseconds spent building or opening the engine before the
    /// server was bound (a gauge, set once at startup).
    startup_load_ms,
    /// Snapshot format version the engine was opened from (`3` legacy,
    /// `4` columnar, `0` = built from XML; set once at startup).
    startup_snapshot_format,
    /// Segment count of the served engine (a gauge, set once at startup;
    /// `1` = monolithic).
    shards,
    /// Sum of `ExecStats::base_answers` across served searches.
    exec_base_answers,
    /// Sum of `ExecStats::pruned`.
    exec_pruned,
    /// Sum of `ExecStats::bulk_pruned`.
    exec_bulk_pruned,
    /// Sum of `ExecStats::ft_probes`.
    exec_ft_probes,
    /// Sum of `ExecStats::vor_comparisons`.
    exec_vor_comparisons,
    /// Sum of `ExecStats::emitted`.
    exec_emitted,
    /// Ingest requests admitted (`add_documents` + `delete_documents`).
    ingest_requests,
    /// Ingest requests that failed with a typed error (bad XML, unknown
    /// doc id, persistence failure — the live corpus is unchanged).
    ingest_errors,
    /// Documents added across all accepted ingest batches.
    docs_added,
    /// Documents newly tombstoned across all accepted delete batches.
    docs_deleted,
    /// Compactions performed, including by the background merger
    /// (a gauge mirrored from the ingestor at `stats` time).
    merges,
    /// Background compactions that failed and will be retried
    /// (a gauge mirrored from the ingestor at `stats` time).
    merge_failures,
    /// Corpus generation currently being served (a gauge).
    corpus_generation,
    /// Total documents in the served corpus, tombstoned included
    /// (a gauge refreshed at `stats` time).
    corpus_docs,
    /// Live (non-tombstoned) documents in the served corpus
    /// (a gauge refreshed at `stats` time).
    corpus_live_docs,
    /// Write-path requests that failed with the typed disk-full error
    /// (the previous generation kept serving; the client may retry).
    disk_full,
    /// Completed scrub passes (DESIGN.md §17).
    scrub_passes,
    /// Checksummed units the scrubber verified (manifest, v4 sections,
    /// tombstone sidecars, profile files).
    scrub_sections,
    /// Artifacts the scrubber found damaged.
    scrub_corruptions,
    /// Successful scrubber repairs (corpus re-publishes + re-persisted
    /// profiles).
    scrub_repairs,
    /// Scrubber repairs that failed (drives the `corrupt` health level).
    scrub_repair_failures,
    /// Wall time of the most recent scrub pass, µs (a gauge).
    scrub_last_pass_us,
    /// Corpus health from the last scrub pass: 0 ok, 1 degraded,
    /// 2 corrupt (a gauge).
    health_corpus,
    /// Profile-store health from the last scrub pass (same encoding;
    /// a gauge).
    health_profiles,
    /// `*.quarantined` files currently retained across both stores
    /// (a gauge refreshed by the scrubber).
    quarantined_files,
    /// Total bytes of retained `*.quarantined` files (a gauge).
    quarantined_bytes,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Bump a counter by one.
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump a counter by `n`.
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one request latency (decode → response written).
    pub fn observe_latency_us(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&le| us <= le)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        if let Some(bucket) = self.lat_buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.lat_sum_us.fetch_add(us, Ordering::Relaxed);
        self.lat_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the startup gauges: how long the engine took to build or
    /// open, and which snapshot format (if any) it came from.
    pub fn set_startup(&self, load_ms: u64, snapshot_format: Option<u32>) {
        self.startup_load_ms.store(load_ms, Ordering::Relaxed);
        self.startup_snapshot_format
            .store(u64::from(snapshot_format.unwrap_or(0)), Ordering::Relaxed);
    }

    /// Record the served engine's segment count (a startup gauge).
    pub fn set_shards(&self, shards: usize) {
        self.shards.store(shards as u64, Ordering::Relaxed);
    }

    /// Refresh the write-path gauges (called with the live engine's
    /// point-in-time state whenever a `stats` snapshot is taken, and by
    /// the publish hook as generations advance).
    pub fn set_ingest_gauges(
        &self,
        generation: u64,
        docs: usize,
        live_docs: usize,
        merges: u64,
        merge_failures: u64,
    ) {
        self.corpus_generation.store(generation, Ordering::Relaxed);
        self.corpus_docs.store(docs as u64, Ordering::Relaxed);
        self.corpus_live_docs
            .store(live_docs as u64, Ordering::Relaxed);
        self.merges.store(merges, Ordering::Relaxed);
        self.merge_failures.store(merge_failures, Ordering::Relaxed);
    }

    /// Fold one search's per-segment scan times into the cumulative
    /// per-shard slots. No-op on monolithic results (empty slice);
    /// segments past `MAX_SHARD_SLOTS` fold into the last slot.
    pub fn absorb_shard_times(&self, times_us: &[u64]) {
        for (i, &us) in times_us.iter().enumerate() {
            let idx = i.min(MAX_SHARD_SLOTS - 1);
            if let Some(slot) = self.shard_scan_us.get(idx) {
                slot.fetch_add(us, Ordering::Relaxed);
            }
        }
    }

    /// Fold one search's execution counters into the aggregates.
    pub fn absorb_exec(&self, stats: &ExecStats) {
        self.add(&self.exec_base_answers, stats.base_answers);
        self.add(&self.exec_pruned, stats.pruned);
        self.add(&self.exec_bulk_pruned, stats.bulk_pruned);
        self.add(&self.exec_ft_probes, stats.ft_probes);
        self.add(&self.exec_vor_comparisons, stats.vor_comparisons);
        self.add(&self.exec_emitted, stats.emitted);
    }

    /// Snapshot everything as the `stats` response body. `cache_entries`
    /// and `profiles` are point-in-time gauges supplied by the server.
    pub fn snapshot(&self, cache_entries: usize, profiles: usize) -> Value {
        let g = |c: &AtomicU64| -> Value { c.load(Ordering::Relaxed).into() };
        let buckets: Vec<Value> = self
            .lat_buckets
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let le: Value = match LATENCY_BUCKETS_US.get(i) {
                    Some(&us) => us.into(),
                    None => "inf".into(),
                };
                obj([("le_us", le), ("count", g(c))])
            })
            .collect();
        obj([
            (
                "uptime_ms",
                (self.start.elapsed().as_millis() as u64).into(),
            ),
            (
                "startup",
                obj([
                    ("load_ms", g(&self.startup_load_ms)),
                    ("snapshot_format", g(&self.startup_snapshot_format)),
                ]),
            ),
            ("conns_accepted", g(&self.conns_accepted)),
            ("conns_rejected", g(&self.conns_rejected)),
            ("requests", g(&self.requests)),
            ("responses_ok", g(&self.responses_ok)),
            ("responses_err", g(&self.responses_err)),
            ("rejected_overload", g(&self.rejected_overload)),
            ("rejected_deadline", g(&self.rejected_deadline)),
            ("panics", g(&self.panics)),
            ("worker_respawns", g(&self.worker_respawns)),
            ("degraded", g(&self.degraded)),
            ("disk_full", g(&self.disk_full)),
            (
                "store",
                obj([
                    ("errors", g(&self.store_errors)),
                    ("profiles_recovered", g(&self.profiles_recovered)),
                    ("profiles_quarantined", g(&self.profiles_quarantined)),
                    ("quarantined_files", g(&self.quarantined_files)),
                    ("quarantined_bytes", g(&self.quarantined_bytes)),
                ]),
            ),
            (
                "scrub",
                obj([
                    ("passes", g(&self.scrub_passes)),
                    ("sections", g(&self.scrub_sections)),
                    ("corruptions", g(&self.scrub_corruptions)),
                    ("repairs", g(&self.scrub_repairs)),
                    ("repair_failures", g(&self.scrub_repair_failures)),
                    ("last_pass_us", g(&self.scrub_last_pass_us)),
                ]),
            ),
            (
                "health",
                obj([
                    ("corpus", g(&self.health_corpus)),
                    ("profiles", g(&self.health_profiles)),
                ]),
            ),
            (
                "cache",
                obj([
                    ("lookups", g(&self.cache_lookups)),
                    ("hits", g(&self.cache_hits)),
                    ("misses", g(&self.cache_misses)),
                    ("evictions", g(&self.cache_evictions)),
                    ("invalidations", g(&self.cache_invalidations)),
                    ("entries", cache_entries.into()),
                ]),
            ),
            ("profiles", profiles.into()),
            (
                "latency_us",
                obj([
                    ("count", g(&self.lat_count)),
                    ("sum", g(&self.lat_sum_us)),
                    ("buckets", Value::Arr(buckets)),
                ]),
            ),
            (
                "shards",
                obj([
                    ("count", g(&self.shards)),
                    ("scan_us", {
                        let live = (self.shards.load(Ordering::Relaxed) as usize)
                            .min(MAX_SHARD_SLOTS);
                        Value::Arr(self.shard_scan_us.iter().take(live).map(g).collect())
                    }),
                ]),
            ),
            (
                "ingest",
                obj([
                    ("requests", g(&self.ingest_requests)),
                    ("errors", g(&self.ingest_errors)),
                    ("docs_added", g(&self.docs_added)),
                    ("docs_deleted", g(&self.docs_deleted)),
                    ("merges", g(&self.merges)),
                    ("merge_failures", g(&self.merge_failures)),
                    ("generation", g(&self.corpus_generation)),
                    ("docs", g(&self.corpus_docs)),
                    ("live_docs", g(&self.corpus_live_docs)),
                ]),
            ),
            (
                "exec",
                obj([
                    ("base_answers", g(&self.exec_base_answers)),
                    ("pruned", g(&self.exec_pruned)),
                    ("bulk_pruned", g(&self.exec_bulk_pruned)),
                    ("ft_probes", g(&self.exec_ft_probes)),
                    ("vor_comparisons", g(&self.exec_vor_comparisons)),
                    ("emitted", g(&self.exec_emitted)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let m = Metrics::new();
        m.observe_latency_us(10); // -> le 50
        m.observe_latency_us(50); // -> le 50 (inclusive)
        m.observe_latency_us(51); // -> le 100
        m.observe_latency_us(2_000_000); // -> +Inf
        assert_eq!(m.lat_buckets[0].load(Ordering::Relaxed), 2);
        assert_eq!(m.lat_buckets[1].load(Ordering::Relaxed), 1);
        assert_eq!(
            m.lat_buckets[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed),
            1
        );
        assert_eq!(m.lat_count.load(Ordering::Relaxed), 4);
        assert_eq!(
            m.lat_sum_us.load(Ordering::Relaxed),
            10 + 50 + 51 + 2_000_000
        );
    }

    #[test]
    fn snapshot_shape() {
        let m = Metrics::new();
        m.inc(&m.requests);
        m.inc(&m.responses_ok);
        m.absorb_exec(&ExecStats {
            base_answers: 4,
            emitted: 2,
            ..Default::default()
        });
        m.set_startup(17, Some(4));
        let snap = m.snapshot(3, 1);
        assert_eq!(snap.get("requests").and_then(Value::as_u64), Some(1));
        let startup = snap.get("startup").expect("startup block");
        assert_eq!(startup.get("load_ms").and_then(Value::as_u64), Some(17));
        assert_eq!(
            startup.get("snapshot_format").and_then(Value::as_u64),
            Some(4)
        );
        let cache = snap.get("cache").expect("cache block");
        assert_eq!(cache.get("entries").and_then(Value::as_u64), Some(3));
        let exec = snap.get("exec").expect("exec block");
        assert_eq!(exec.get("base_answers").and_then(Value::as_u64), Some(4));
        // Renders as valid JSON.
        assert!(Value::parse(&snap.render()).is_ok());
    }

    #[test]
    fn shard_slots_accumulate_and_fold() {
        let m = Metrics::new();
        m.set_shards(4);
        m.absorb_shard_times(&[10, 20, 30, 40]);
        m.absorb_shard_times(&[1, 2, 3, 4]);
        m.absorb_shard_times(&[]); // monolithic search: no-op
        let snap = m.snapshot(0, 0);
        let shards = snap.get("shards").expect("shards block");
        assert_eq!(shards.get("count").and_then(Value::as_u64), Some(4));
        let Some(Value::Arr(scan)) = shards.get("scan_us") else {
            panic!("scan_us array");
        };
        let vals: Vec<u64> = scan.iter().filter_map(Value::as_u64).collect();
        assert_eq!(vals, vec![11, 22, 33, 44]);
        // Past-capacity segments fold into the last slot instead of
        // being dropped.
        let big: Vec<u64> = (0..MAX_SHARD_SLOTS as u64 + 4).map(|_| 1).collect();
        m.absorb_shard_times(&big);
        assert_eq!(
            m.shard_scan_us[MAX_SHARD_SLOTS - 1].load(Ordering::Relaxed),
            5
        );
    }
}
