//! Wire protocol: length-delimited JSON frames and the typed commands
//! they carry (DESIGN.md §11).
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. Requests are objects with a `"cmd"` field
//! (`register_profile`, `search`, `explain`, `stats`, `shutdown`);
//! responses are `{"ok": …}` or `{"err": {"kind": …, "msg": …}}`.

use crate::json::{obj, Value};
use pimento::PlanStrategy;
use std::io::{self, Read, Write};

/// Hard cap a frame may declare regardless of configuration (16 MiB) —
/// a corrupt length prefix must not turn into an allocation bomb.
pub const FRAME_HARD_CAP: usize = 16 * 1024 * 1024;

/// Typed error kinds the server emits. Stable protocol strings.
pub mod err_kind {
    /// The bounded request queue is full (backpressure).
    pub const OVERLOADED: &str = "overloaded";
    /// The request's deadline expired before evaluation started.
    pub const DEADLINE: &str = "deadline";
    /// Malformed frame / JSON / missing or ill-typed fields.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The query failed to parse or plan.
    pub const QUERY: &str = "query";
    /// The profile failed to parse or its scoping rules conflict.
    pub const PROFILE: &str = "profile";
    /// `search` referenced a user no `register_profile` created.
    pub const UNKNOWN_USER: &str = "unknown_user";
    /// The server is draining and no longer admits connections.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// An ingest write was invalid (bad XML, unknown doc id, empty
    /// batch) or the server has no write path configured.
    pub const INGEST: &str = "ingest";
    /// The disk is full (`ENOSPC`): the write was rejected, the
    /// previous generation is still served, and the request is
    /// retryable once space frees.
    pub const DISK_FULL: &str = "disk_full";
    /// Anything else (I/O mid-response, poisoned state, …).
    pub const INTERNAL: &str = "internal";
}

/// Framing-layer failure.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error (including mid-frame EOF).
    Io(io::Error),
    /// The declared payload length exceeds the limit.
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds the limit"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame (length prefix + payload). Header and payload go out
/// as a single write: two small writes per frame interact badly with
/// Nagle + delayed ACK on real sockets (tens of ms of stall per frame).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary;
/// `max_len` bounds the declared payload (additionally capped by
/// [`FRAME_HARD_CAP`]).
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_len.min(FRAME_HARD_CAP) {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Everything a `search` / `explain` command can carry.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Registered profile to personalize under; `None` = unpersonalized.
    pub user: Option<String>,
    /// The tree-pattern query text.
    pub query: String,
    /// Answers to return (default 10).
    pub k: usize,
    /// Pagination offset.
    pub offset: usize,
    /// Plan strategy override (`None` = the engine default, `PtpkP`).
    pub strategy: Option<PlanStrategy>,
    /// Per-request execution threads override (`None` = server config).
    pub threads: Option<usize>,
    /// Deadline budget in milliseconds, measured from request arrival
    /// (`None` = server default).
    pub timeout_ms: Option<u64>,
}

/// A decoded protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Register (or replace) a user's profile from rule-language text.
    RegisterProfile {
        /// Session key the profile lives under.
        user: String,
        /// Profile in the paper's rule language (`pimento_profile::parse`).
        rules: String,
    },
    /// Execute a personalized top-k search.
    Search(QuerySpec),
    /// Return the plan the engine would run, without executing it.
    Explain(QuerySpec),
    /// Ingest XML documents into the live corpus (back-office write
    /// path): published as an immutable delta segment at the next
    /// corpus generation.
    AddDocuments {
        /// The documents, one XML string each.
        docs: Vec<String>,
    },
    /// Tombstone documents by corpus-global doc id: they vanish from
    /// results at the next corpus generation and are reclaimed by the
    /// background merge.
    DeleteDocuments {
        /// Corpus-global doc ids to delete.
        ids: Vec<u32>,
    },
    /// Metrics snapshot.
    Stats,
    /// Scrubber health report (`ok` / `degraded` / `corrupt` with
    /// per-component detail — DESIGN.md §17).
    Health,
    /// Drain in-flight requests and stop the server.
    Shutdown,
}

/// Decode a request object; the error string is the `bad_request` message.
pub fn parse_request(v: &Value) -> Result<Request, String> {
    let cmd = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string field `cmd`".to_string())?;
    match cmd {
        "register_profile" => {
            let user = req_str(v, "user")?;
            let rules = req_str(v, "rules")?;
            Ok(Request::RegisterProfile { user, rules })
        }
        "search" => Ok(Request::Search(query_spec(v)?)),
        "explain" => Ok(Request::Explain(query_spec(v)?)),
        "add_documents" => {
            let docs = v
                .get("docs")
                .and_then(Value::as_arr)
                .ok_or_else(|| "missing array field `docs`".to_string())?
                .iter()
                .map(|d| {
                    d.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "field `docs` must contain strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            if docs.is_empty() {
                return Err("field `docs` must not be empty".to_string());
            }
            Ok(Request::AddDocuments { docs })
        }
        "delete_documents" => {
            let ids = v
                .get("ids")
                .and_then(Value::as_arr)
                .ok_or_else(|| "missing array field `ids`".to_string())?
                .iter()
                .map(|d| {
                    d.as_u64()
                        .filter(|&n| n <= u32::MAX as u64)
                        .map(|n| n as u32)
                        .ok_or_else(|| "field `ids` must contain doc ids (u32)".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            if ids.is_empty() {
                return Err("field `ids` must not be empty".to_string());
            }
            Ok(Request::DeleteDocuments { ids })
        }
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn query_spec(v: &Value) -> Result<QuerySpec, String> {
    let query = req_str(v, "query")?;
    let user = match v.get("user") {
        None | Some(Value::Null) => None,
        Some(u) => Some(
            u.as_str()
                .map(str::to_string)
                .ok_or_else(|| "field `user` must be a string".to_string())?,
        ),
    };
    let strategy = match v.get("strategy").and_then(Value::as_str) {
        None => None,
        Some("naive") => Some(PlanStrategy::Naive),
        Some("il") => Some(PlanStrategy::InterleaveUnsorted),
        Some("sil") => Some(PlanStrategy::InterleaveSorted),
        Some("push") => Some(PlanStrategy::Push),
        Some(other) => return Err(format!("unknown strategy `{other}` (naive|il|sil|push)")),
    };
    Ok(QuerySpec {
        user,
        query,
        k: opt_u64(v, "k")?.unwrap_or(10) as usize,
        offset: opt_u64(v, "offset")?.unwrap_or(0) as usize,
        strategy,
        threads: opt_u64(v, "threads")?.map(|n| n as usize),
        timeout_ms: opt_u64(v, "timeout_ms")?,
    })
}

/// Encode a success response frame payload.
pub fn ok_payload(body: Value) -> Vec<u8> {
    obj([("ok", body)]).render().into_bytes()
}

/// Encode a typed error response frame payload.
pub fn err_payload(kind: &str, msg: &str) -> Vec<u8> {
    obj([("err", obj([("kind", kind.into()), ("msg", msg.into())]))])
        .render()
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"cmd\":\"stats\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, 1024).unwrap().unwrap(),
            b"{\"cmd\":\"stats\"}"
        );
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn frame_limits_and_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&buf), 10),
            Err(FrameError::TooLarge(100))
        ));
        // EOF mid-frame is an I/O error, not a clean close.
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&buf[..50]), 1024),
            Err(FrameError::Io(_))
        ));
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&buf[..2]), 1024),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn parses_commands() {
        let v = Value::parse(
            r#"{"cmd":"search","user":"u1","query":"//car","k":5,"offset":2,"strategy":"sil","threads":2,"timeout_ms":250}"#,
        )
        .unwrap();
        match parse_request(&v).unwrap() {
            Request::Search(s) => {
                assert_eq!(s.user.as_deref(), Some("u1"));
                assert_eq!(s.query, "//car");
                assert_eq!((s.k, s.offset), (5, 2));
                assert_eq!(s.strategy, Some(PlanStrategy::InterleaveSorted));
                assert_eq!(s.threads, Some(2));
                assert_eq!(s.timeout_ms, Some(250));
            }
            other => panic!("wrong request: {other:?}"),
        }
        let v = Value::parse(r#"{"cmd":"search","query":"//car"}"#).unwrap();
        match parse_request(&v).unwrap() {
            Request::Search(s) => {
                assert!(s.user.is_none());
                assert_eq!(s.k, 10);
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request(&Value::parse(r#"{"cmd":"shutdown"}"#).unwrap()).unwrap(),
            Request::Shutdown
        ));
        assert!(matches!(
            parse_request(&Value::parse(r#"{"cmd":"health"}"#).unwrap()).unwrap(),
            Request::Health
        ));
    }

    #[test]
    fn rejects_bad_requests() {
        for bad in [
            r#"{}"#,
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"search"}"#,
            r#"{"cmd":"search","query":"//a","k":-1}"#,
            r#"{"cmd":"search","query":"//a","strategy":"quantum"}"#,
            r#"{"cmd":"register_profile","user":"u"}"#,
            r#"{"cmd":"add_documents"}"#,
            r#"{"cmd":"add_documents","docs":[]}"#,
            r#"{"cmd":"add_documents","docs":"<a/>"}"#,
            r#"{"cmd":"add_documents","docs":[7]}"#,
            r#"{"cmd":"delete_documents"}"#,
            r#"{"cmd":"delete_documents","ids":[]}"#,
            r#"{"cmd":"delete_documents","ids":["0"]}"#,
            r#"{"cmd":"delete_documents","ids":[1.5]}"#,
            r#"{"cmd":"delete_documents","ids":[4294967296]}"#,
        ] {
            let v = Value::parse(bad).unwrap();
            assert!(parse_request(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_ingest_requests() {
        let v = Value::parse(r#"{"cmd":"add_documents","docs":["<a/>","<b>x</b>"]}"#).unwrap();
        let Ok(Request::AddDocuments { docs }) = parse_request(&v) else {
            panic!("add_documents should parse");
        };
        assert_eq!(docs, vec!["<a/>".to_string(), "<b>x</b>".to_string()]);
        let v = Value::parse(r#"{"cmd":"delete_documents","ids":[0,7,4294967295]}"#).unwrap();
        let Ok(Request::DeleteDocuments { ids }) = parse_request(&v) else {
            panic!("delete_documents should parse");
        };
        assert_eq!(ids, vec![0, 7, u32::MAX]);
    }

    #[test]
    fn payload_helpers() {
        let ok = String::from_utf8(ok_payload(Value::Num(1.0))).unwrap();
        assert_eq!(ok, r#"{"ok":1}"#);
        let err = String::from_utf8(err_payload(err_kind::OVERLOADED, "queue full")).unwrap();
        assert!(err.contains(r#""kind":"overloaded""#), "{err}");
    }
}
