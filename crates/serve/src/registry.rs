//! Per-user profile sessions.
//!
//! `register_profile` installs a parsed [`UserProfile`] under a session
//! key; searches resolve the key to an `Arc` snapshot, so a concurrent
//! re-registration never mutates a profile mid-query — in-flight
//! requests keep the `Arc` they resolved. Each registration gets a
//! fresh **generation** from a process-wide counter; the generation is
//! part of the compiled-plan cache key ([`crate::cache`]), which is what
//! makes re-registration a cache invalidation.

use pimento_profile::UserProfile;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A registered profile and the generation it was installed at.
#[derive(Debug, Clone)]
pub struct ProfileSession {
    /// The immutable profile snapshot.
    pub profile: Arc<UserProfile>,
    /// Monotonic installation stamp (unique across all users).
    pub generation: u64,
    /// `Some(reason)` when this session is a degraded placeholder: the
    /// user is known but their persisted profile could not be recovered
    /// (DESIGN.md §12), so searches run unpersonalized and stamp
    /// `degraded: true`. A fresh `register_profile` clears it.
    pub degraded: Option<String>,
    /// The rule text the profile was registered from, when known. The
    /// in-memory registry is the durable store's source of truth for
    /// repair: the scrubber re-persists from here after quarantining a
    /// damaged profile file (DESIGN.md §17).
    pub rules: Option<Arc<String>>,
}

/// Thread-safe user → profile map.
#[derive(Debug, Default)]
pub struct ProfileRegistry {
    sessions: RwLock<HashMap<String, ProfileSession>>,
    next_generation: AtomicU64,
}

impl ProfileRegistry {
    /// Empty registry.
    pub fn new() -> ProfileRegistry {
        ProfileRegistry::default()
    }

    /// Install (or replace) `user`'s profile; returns the new generation.
    pub fn register(&self, user: &str, profile: UserProfile) -> u64 {
        self.install(user, profile, None, None)
    }

    /// Like [`ProfileRegistry::register`], also remembering the rule
    /// text the profile was parsed from so the scrubber can re-persist
    /// it if the on-disk copy is damaged.
    pub fn register_with_rules(&self, user: &str, profile: UserProfile, rules: &str) -> u64 {
        self.install(user, profile, None, Some(Arc::new(rules.to_string())))
    }

    fn install(
        &self,
        user: &str,
        profile: UserProfile,
        degraded: Option<String>,
        rules: Option<Arc<String>>,
    ) -> u64 {
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed) + 1;
        let session = ProfileSession {
            profile: Arc::new(profile),
            generation,
            degraded,
            rules,
        };
        write_guard(&self.sessions).insert(user.to_string(), session);
        generation
    }

    /// Every `(user, rules)` pair the registry can vouch for — the
    /// repair set the scrubber re-persists from. Degraded placeholders
    /// and sessions registered without rule text are excluded.
    pub fn persisted_rules(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = read_guard(&self.sessions)
            .iter()
            .filter(|(_, s)| s.degraded.is_none())
            .filter_map(|(user, s)| {
                s.rules
                    .as_ref()
                    .map(|r| (user.clone(), r.as_ref().clone()))
            })
            .collect();
        out.sort();
        out
    }

    /// Install a degraded placeholder for `user`: an empty profile marked
    /// with `reason`. Used by startup recovery when a persisted profile
    /// is corrupt — the user keeps getting (unpersonalized, explicitly
    /// flagged) answers instead of `unknown_user` errors.
    pub fn register_degraded(&self, user: &str, reason: &str) -> u64 {
        self.install(user, UserProfile::new(), Some(reason.to_string()), None)
    }

    /// Resolve a session key to its current profile snapshot.
    pub fn get(&self, user: &str) -> Option<ProfileSession> {
        read_guard(&self.sessions).get(user).cloned()
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        read_guard(&self.sessions).len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// A poisoned registry lock only means another thread panicked while
// holding it; the map itself is always in a consistent state (single
// `insert` calls), so recover the guard instead of propagating panics
// across the whole server.
fn read_guard<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_guard<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimento_profile::KeywordOrderingRule;

    #[test]
    fn generations_are_monotonic_and_snapshots_stable() {
        let r = ProfileRegistry::new();
        assert!(r.get("u1").is_none());
        let g1 = r.register("u1", UserProfile::new());
        let s1 = r.get("u1").expect("registered");
        let profile2 = UserProfile::new().with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"));
        let g2 = r.register("u1", profile2);
        assert!(g2 > g1);
        // The old snapshot is unaffected by re-registration.
        assert!(s1.profile.kors.is_empty());
        assert_eq!(r.get("u1").expect("registered").profile.kors.len(), 1);
        let g3 = r.register("u2", UserProfile::new());
        assert!(g3 > g2, "generations unique across users");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn degraded_sessions_are_flagged_and_cleared_by_reregistration() {
        let r = ProfileRegistry::new();
        let g1 = r.register_degraded("victim", "profile snapshot corrupt");
        let s = r.get("victim").expect("registered");
        assert_eq!(s.generation, g1);
        assert_eq!(s.degraded.as_deref(), Some("profile snapshot corrupt"));
        assert!(
            s.profile.is_empty(),
            "degraded placeholder is the empty profile"
        );
        let g2 = r.register("victim", UserProfile::new());
        assert!(g2 > g1);
        assert!(r.get("victim").expect("registered").degraded.is_none());
    }
}
