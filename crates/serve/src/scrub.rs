//! The online integrity scrubber (DESIGN.md §17).
//!
//! A background pass over every durable artifact the server owns: the
//! segment-store manifest, each live segment's v4 section checksums,
//! tombstone sidecars, and every stored profile. Damage is never served
//! and never fatal — a corrupt artifact is **quarantined** (renamed
//! aside under the bounded `*.quarantined` policy) and **repaired** from
//! the last good generation: the in-memory engine for corpus artifacts
//! (publishes swap it in only after a durable commit, so it *is* the
//! last good generation), the in-memory profile registry for profiles.
//!
//! Health is recomputed from scratch on every pass, so the reported
//! level follows the disk: `ok` → `degraded` when damage is found and
//! repaired, back to `ok` once a clean pass confirms the repair, and
//! `corrupt` only when a repair itself failed — the one state that
//! needs an operator.
//!
//! [`Scrubber::run_pass`] is public and synchronous so tests (and the
//! `pimento scrub` one-shot subcommand) can drive passes
//! deterministically; [`spawn_scrubber`] wraps it in the periodic
//! thread the server runs under `--scrub-interval-ms`.

use crate::json::{obj, Value};
use crate::metrics::Metrics;
use crate::registry::ProfileRegistry;
use crate::store::ProfileStore;
use pimento_faults::vfs::{enforce_quarantine_cap, quarantine_file, quarantine_stats, Vfs};

/// The quarantine retention policy, re-exported for callers that tune it
/// via [`Scrubber::set_quarantine_cap`].
pub use pimento_faults::vfs::QuarantineCap;
use pimento_index::{inspect, TombstoneSet, MANIFEST_FILE};
use pimento_ingest::Ingestor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Component health, worst-first ordering: `Ok < Degraded < Corrupt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthLevel {
    /// Every artifact verified on the last pass.
    Ok,
    /// Damage was found but quarantined and repaired; answers were never
    /// served from the damaged artifact. Clears on the next clean pass.
    Degraded,
    /// A repair failed: durability is impaired until an operator (or a
    /// later successful pass) restores it. Serving continues from the
    /// intact in-memory state.
    Corrupt,
}

impl HealthLevel {
    /// Protocol string (`health` verb).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthLevel::Ok => "ok",
            HealthLevel::Degraded => "degraded",
            HealthLevel::Corrupt => "corrupt",
        }
    }

    /// Numeric gauge encoding (`0`/`1`/`2`) for the stats snapshot.
    pub fn as_gauge(self) -> u64 {
        match self {
            HealthLevel::Ok => 0,
            HealthLevel::Degraded => 1,
            HealthLevel::Corrupt => 2,
        }
    }
}

/// One component's verdict plus a human-readable reason.
#[derive(Debug, Clone)]
pub struct ComponentHealth {
    /// The level.
    pub level: HealthLevel,
    /// What the last pass saw, for the `health` response.
    pub detail: String,
}

impl ComponentHealth {
    fn ok(detail: &str) -> ComponentHealth {
        ComponentHealth {
            level: HealthLevel::Ok,
            detail: detail.to_string(),
        }
    }
}

/// The scrubber's current verdict, refreshed on every pass.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Segment store: manifest, segment sections, tombstone sidecars.
    pub corpus: ComponentHealth,
    /// Durable profile store.
    pub profiles: ComponentHealth,
    /// Completed scrub passes.
    pub passes: u64,
    /// Counters from the most recent pass.
    pub last_pass: PassSummary,
}

impl HealthReport {
    fn initial() -> HealthReport {
        HealthReport {
            corpus: ComponentHealth::ok("not yet scrubbed"),
            profiles: ComponentHealth::ok("not yet scrubbed"),
            passes: 0,
            last_pass: PassSummary::default(),
        }
    }

    /// The worst component level.
    pub fn overall(&self) -> HealthLevel {
        self.corpus.level.max(self.profiles.level)
    }
}

/// What one scrub pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassSummary {
    /// Checksummed units that verified: manifest, v4 sections, tombstone
    /// sidecars, profile files.
    pub sections_verified: u64,
    /// Artifacts found damaged (checksum mismatch, unreadable, unparsable).
    pub corrupt_artifacts: u64,
    /// Damaged artifacts successfully renamed aside.
    pub quarantined: u64,
    /// Successful repairs (corpus re-publish counts once; each
    /// re-persisted profile counts once).
    pub repairs: u64,
    /// Repairs that failed (drives the `corrupt` level).
    pub repair_failures: u64,
}

/// The scrubber: owns handles to every durable store and the registry
/// that backs profile repair. See the module docs for the pass
/// algorithm and health semantics.
pub struct Scrubber {
    ingest: Arc<Ingestor>,
    profiles: Option<ProfileStore>,
    registry: Arc<ProfileRegistry>,
    metrics: Arc<Metrics>,
    health: Mutex<HealthReport>,
    cap: QuarantineCap,
}

impl Scrubber {
    /// Wire a scrubber over the server's stores. `profiles` is `None`
    /// when profile persistence is disabled; the corpus side is skipped
    /// automatically when the ingestor has no data dir.
    pub fn new(
        ingest: Arc<Ingestor>,
        profiles: Option<ProfileStore>,
        registry: Arc<ProfileRegistry>,
        metrics: Arc<Metrics>,
    ) -> Scrubber {
        Scrubber {
            ingest,
            profiles,
            registry,
            metrics,
            health: Mutex::new(HealthReport::initial()),
            cap: QuarantineCap::default(),
        }
    }

    /// Override the quarantine retention policy (tests use tiny caps).
    pub fn set_quarantine_cap(&mut self, cap: QuarantineCap) {
        self.cap = cap;
    }

    /// One full scrub pass: verify → quarantine → repair → refresh
    /// health and metrics. Synchronous; the periodic thread and the
    /// one-shot CLI both call this.
    pub fn run_pass(&self) -> PassSummary {
        let started = Instant::now();
        let mut pass = PassSummary::default();
        let corpus = self.scrub_corpus(&mut pass);
        let profiles = self.scrub_profiles(&mut pass);
        self.refresh_quarantine_gauges();

        let m = &self.metrics;
        m.inc(&m.scrub_passes);
        m.add(&m.scrub_sections, pass.sections_verified);
        m.add(&m.scrub_corruptions, pass.corrupt_artifacts);
        m.add(&m.scrub_repairs, pass.repairs);
        m.add(&m.scrub_repair_failures, pass.repair_failures);
        m.scrub_last_pass_us
            .store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        m.health_corpus
            .store(corpus.level.as_gauge(), Ordering::Relaxed);
        m.health_profiles
            .store(profiles.level.as_gauge(), Ordering::Relaxed);

        let mut health = lock(&self.health);
        health.corpus = corpus;
        health.profiles = profiles;
        health.passes += 1;
        health.last_pass = pass.clone();
        pass
    }

    /// The current health report (a clone; the scrubber keeps running).
    pub fn health(&self) -> HealthReport {
        lock(&self.health).clone()
    }

    /// The `health` verb's response body.
    pub fn health_body(&self) -> Value {
        let h = self.health();
        let component = |c: &ComponentHealth| {
            obj([
                ("status", c.level.as_str().into()),
                ("detail", c.detail.as_str().into()),
            ])
        };
        obj([
            ("status", h.overall().as_str().into()),
            ("corpus", component(&h.corpus)),
            ("profiles", component(&h.profiles)),
            ("passes", h.passes.into()),
            (
                "last_pass",
                obj([
                    ("sections_verified", h.last_pass.sections_verified.into()),
                    ("corrupt_artifacts", h.last_pass.corrupt_artifacts.into()),
                    ("quarantined", h.last_pass.quarantined.into()),
                    ("repairs", h.last_pass.repairs.into()),
                    ("repair_failures", h.last_pass.repair_failures.into()),
                ]),
            ),
        ])
    }

    /// Verify the segment store: manifest parse, per-segment v4 section
    /// CRCs, tombstone sidecar parses. Any damage quarantines the
    /// artifact and re-publishes the whole generation from the live
    /// engine (`Ingestor::repair_persist`).
    fn scrub_corpus(&self, pass: &mut PassSummary) -> ComponentHealth {
        let Some(store) = self.ingest.store() else {
            return ComponentHealth::ok("corpus is memory-only (no data dir)");
        };
        let vfs = Arc::clone(store.vfs());
        let dir = store.dir().to_path_buf();
        let mut damaged: Vec<(PathBuf, String)> = Vec::new();

        match store.manifest() {
            Ok(manifest) => {
                pass.sections_verified += 1;
                for entry in &manifest.segments {
                    let path = dir.join(&entry.file);
                    match vfs.read(&path) {
                        Ok(bytes) => match inspect(&bytes) {
                            Ok(report) => {
                                let mut bad: Vec<&str> = Vec::new();
                                if !report.directory_ok {
                                    bad.push("section directory");
                                }
                                for s in &report.sections {
                                    if s.crc_ok {
                                        pass.sections_verified += 1;
                                    } else {
                                        bad.push(&s.name);
                                    }
                                }
                                if !bad.is_empty() {
                                    damaged.push((
                                        path,
                                        format!("checksum mismatch in {}", bad.join(", ")),
                                    ));
                                }
                            }
                            Err(e) => damaged.push((path, format!("uninspectable: {e}"))),
                        },
                        Err(e) => damaged.push((path, format!("unreadable: {e}"))),
                    }
                    if let Some(tomb) = &entry.tombstones {
                        let path = dir.join(tomb);
                        let parsed = vfs
                            .read(&path)
                            .map_err(|e| e.to_string())
                            .and_then(|raw| {
                                String::from_utf8(raw)
                                    .map_err(|_| "not UTF-8".to_string())
                            })
                            .and_then(|text| {
                                TombstoneSet::parse(&text)
                                    .map(|_| ())
                                    .map_err(|e| e.to_string())
                            });
                        match parsed {
                            Ok(()) => pass.sections_verified += 1,
                            Err(e) => damaged.push((path, format!("tombstone sidecar: {e}"))),
                        }
                    }
                }
            }
            Err(e) => damaged.push((dir.join(MANIFEST_FILE), format!("manifest: {e}"))),
        }

        if damaged.is_empty() {
            return ComponentHealth::ok("all segment sections, tombstones and the manifest verified");
        }
        let mut details: Vec<String> = Vec::new();
        for (path, why) in &damaged {
            pass.corrupt_artifacts += 1;
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("<artifact>");
            if quarantine_file(&*vfs, path, self.cap).is_ok() {
                pass.quarantined += 1;
            }
            details.push(format!("{name}: {why}"));
        }
        // The live engine is the last good generation — publishes only
        // swap it in after a durable commit — so one re-publish restores
        // everything the quarantine removed.
        match self.ingest.repair_persist() {
            Ok(_) => {
                pass.repairs += 1;
                ComponentHealth {
                    level: HealthLevel::Degraded,
                    detail: format!(
                        "quarantined and re-published from the live generation: {}",
                        details.join("; ")
                    ),
                }
            }
            Err(e) => {
                pass.repair_failures += 1;
                ComponentHealth {
                    level: HealthLevel::Corrupt,
                    detail: format!(
                        "repair failed ({e}) after quarantining: {}",
                        details.join("; ")
                    ),
                }
            }
        }
    }

    /// Verify every stored profile file, quarantine damage, then
    /// re-persist any registry session whose rule text is known but
    /// whose file is missing (covers both just-quarantined files and
    /// files lost earlier).
    fn scrub_profiles(&self, pass: &mut PassSummary) -> ComponentHealth {
        let Some(store) = &self.profiles else {
            return ComponentHealth::ok("profiles are memory-only (no profile dir)");
        };
        let vfs = store.vfs();
        let mut details: Vec<String> = Vec::new();
        let mut corrupt = 0u64;
        for path in vfs.list(store.dir()).unwrap_or_default() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if !name.ends_with(".profile") {
                continue;
            }
            let verdict = match vfs.read(&path) {
                Ok(bytes) => ProfileStore::verify_bytes(&bytes).map_err(|(_, d)| d),
                Err(e) => Err(format!("unreadable: {e}")),
            };
            match verdict {
                Ok(_) => pass.sections_verified += 1,
                Err(why) => {
                    corrupt += 1;
                    pass.corrupt_artifacts += 1;
                    if store.quarantine(&path).is_ok() {
                        pass.quarantined += 1;
                    }
                    details.push(format!("{name}: {why}"));
                }
            }
        }
        let mut repaired = 0u64;
        let mut failures = 0u64;
        for (user, rules) in self.registry.persisted_rules() {
            if !vfs.exists(&store.path_for(&user)) {
                match store.persist(&user, &rules) {
                    Ok(_) => repaired += 1,
                    Err(e) => {
                        failures += 1;
                        details.push(format!("re-persist `{user}`: {e}"));
                    }
                }
            }
        }
        pass.repairs += repaired;
        pass.repair_failures += failures;
        if failures > 0 {
            ComponentHealth {
                level: HealthLevel::Corrupt,
                detail: format!("profile repair failed: {}", details.join("; ")),
            }
        } else if corrupt > 0 || repaired > 0 {
            ComponentHealth {
                level: HealthLevel::Degraded,
                detail: format!(
                    "quarantined {corrupt}, re-persisted {repaired}: {}",
                    details.join("; ")
                ),
            }
        } else {
            ComponentHealth::ok("all stored profiles verified")
        }
    }

    /// Age out quarantined wreckage beyond the retention cap and refresh
    /// the `store.quarantined_*` gauges across both stores.
    fn refresh_quarantine_gauges(&self) {
        let mut files = 0u64;
        let mut bytes = 0u64;
        let mut dirs: Vec<(Arc<dyn Vfs>, PathBuf)> = Vec::new();
        if let Some(store) = self.ingest.store() {
            dirs.push((Arc::clone(store.vfs()), store.dir().to_path_buf()));
        }
        if let Some(store) = &self.profiles {
            dirs.push((Arc::clone(store.vfs()), store.dir().to_path_buf()));
        }
        for (vfs, dir) in dirs {
            enforce_quarantine_cap(&*vfs, &dir, self.cap);
            let q = quarantine_stats(&*vfs, &dir);
            files += q.len() as u64;
            bytes += q.iter().map(|f| f.len).sum::<u64>();
        }
        self.metrics
            .quarantined_files
            .store(files, Ordering::Relaxed);
        self.metrics
            .quarantined_bytes
            .store(bytes, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Scrubber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scrubber")
            .field("health", &self.health())
            .finish_non_exhaustive()
    }
}

/// Handle to a running scrubber thread; [`ScrubberHandle::stop`] wakes
/// and joins it.
pub struct ScrubberHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: thread::JoinHandle<()>,
}

impl ScrubberHandle {
    /// Signal the thread to exit and wait for it.
    pub fn stop(self) {
        let (flag, wake) = &*self.stop;
        *lock(flag) = true;
        wake.notify_all();
        let _ = self.handle.join();
    }
}

/// Spawn the periodic scrub thread: one pass immediately, then one per
/// `interval` until stopped. A panic inside a pass is isolated (counted
/// as `panics`) — the scrubber must never take the server down.
pub fn spawn_scrubber(
    scrubber: &Arc<Scrubber>,
    interval: Duration,
) -> std::io::Result<ScrubberHandle> {
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let flag = Arc::clone(&stop);
    let s = Arc::clone(scrubber);
    let handle = thread::Builder::new()
        .name("pimento-scrub".to_string())
        .spawn(move || loop {
            if catch_unwind(AssertUnwindSafe(|| s.run_pass())).is_err() {
                s.metrics.inc(&s.metrics.panics);
            }
            let deadline = Instant::now() + interval;
            let (stopped, wake) = &*flag;
            let mut g = lock(stopped);
            loop {
                if *g {
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                g = match wake.wait_timeout(g, deadline - now) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        })?;
    Ok(ScrubberHandle { stop, handle })
}

// The stop flag and health report are plain data: recover poisoned
// guards instead of cascading a panic into the server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_levels_order_and_encode() {
        assert!(HealthLevel::Ok < HealthLevel::Degraded);
        assert!(HealthLevel::Degraded < HealthLevel::Corrupt);
        assert_eq!(HealthLevel::Ok.as_str(), "ok");
        assert_eq!(HealthLevel::Degraded.as_gauge(), 1);
        assert_eq!(HealthLevel::Corrupt.as_gauge(), 2);
        let report = HealthReport {
            corpus: ComponentHealth::ok("fine"),
            profiles: ComponentHealth {
                level: HealthLevel::Degraded,
                detail: "repaired".to_string(),
            },
            passes: 3,
            last_pass: PassSummary::default(),
        };
        assert_eq!(report.overall(), HealthLevel::Degraded);
    }
}
