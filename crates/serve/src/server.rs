//! The resident query server (DESIGN.md §11).
//!
//! Topology: one **acceptor** (the thread that called [`Server::run`]),
//! one lightweight **reader** thread per admitted connection (I/O-bound:
//! it decodes frames and enqueues), and a **fixed worker pool** (CPU
//! side: it evaluates queries and writes responses). Sizing goes through
//! the same `resolve_threads` / `effective_workers` clamp as the
//! parallel scan, so one knob family governs all parallelism.
//!
//! Robustness invariants, asserted by the loopback integration tests:
//!
//! * the request queue is **bounded** — a full queue rejects with a
//!   typed `overloaded` error instead of buffering without limit;
//! * every decoded request is answered **exactly once** (`requests ==
//!   responses_ok + responses_err + rejected_overload +
//!   rejected_deadline`);
//! * per-request **deadlines** are enforced at dispatch: a request whose
//!   budget expired while queued is abandoned before evaluation starts
//!   (evaluation itself is never preempted — determinism);
//! * `shutdown` **drains**: requests admitted to the queue before the
//!   drain began are all answered, then the pool exits and the final
//!   metrics snapshot is returned from [`Server::run`];
//! * request handlers are **panic-isolated**: a panic while evaluating
//!   one request becomes that request's typed `internal` error (and a
//!   `panics` metric), never a dead worker or a dead server; a panic
//!   outside any handler respawns the worker loop (`worker_respawns`);
//! * personalization **degrades before it fails**: a user whose profile
//!   cannot be applied (conflict at prepare time, or corrupt persisted
//!   profile at recovery) gets the unpersonalized base answers with
//!   `degraded: true` and a reason, not an error.
//!
//! The full failure model — which fault can fire where and what each one
//! maps to — is cataloged in DESIGN.md §12.

use crate::cache::{CacheKey, PreparedCache};
use crate::json::{obj, Value};
use crate::metrics::Metrics;
use crate::protocol::{
    err_kind, err_payload, ok_payload, parse_request, write_frame, QuerySpec, Request,
    FRAME_HARD_CAP,
};
use crate::registry::ProfileRegistry;
use crate::scrub::{spawn_scrubber, Scrubber};
use crate::store::{ProfileStore, Recovered, StoreError};
use pimento::profile::{parse_profile, validate, PrefRelRegistry, UserProfile};
use pimento::{Engine, Error, SearchOptions, SearchResults};
use pimento_index::{effective_workers, resolve_threads};
use pimento_ingest::{spawn_merger, IngestConfig, Ingestor, LiveEngine, MergerHandle};
use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// Server configuration. `Default` is suitable for tests and loopback
/// benches; production deployments override the capacities.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port `0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker pool size: `0` = machine parallelism. Routed through
    /// `index::resolve_threads` + `index::effective_workers`, the same
    /// clamp as `--threads` on the search path.
    pub workers: usize,
    /// Bounded request queue capacity; a full queue rejects with
    /// `overloaded` (`0` rejects everything — useful for tests).
    pub queue_capacity: usize,
    /// Compiled-profile cache capacity, in (user, generation, query)
    /// entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Maximum concurrent connections; excess connections receive one
    /// `overloaded` error frame and are closed.
    pub max_connections: usize,
    /// Largest request frame accepted (hard-capped at 16 MiB).
    pub max_frame_bytes: usize,
    /// Idle connections are closed after this long without a frame.
    pub idle_timeout: Duration,
    /// Default per-request deadline when a request carries no
    /// `timeout_ms` (`None` = no deadline).
    pub default_timeout: Option<Duration>,
    /// Execution threads per query when the request doesn't override
    /// (`1` = sequential; the pool provides the concurrency, so this
    /// stays at 1 unless workers outnumber concurrent requests).
    pub query_threads: usize,
    /// Artificial per-job delay before processing — a determinism lever
    /// for the drain/overload tests and the load generator. Always
    /// `None` in production use.
    pub worker_delay: Option<Duration>,
    /// Write timeout on connection sockets (both response writers and
    /// the acceptor's rejection frames): a client that stops reading
    /// must not wedge a worker — or the acceptor — forever.
    pub conn_timeout: Duration,
    /// Directory for the durable profile store. `None` disables
    /// persistence; profiles live only in memory.
    pub profile_dir: Option<PathBuf>,
    /// Directory for the durable segment store: every published corpus
    /// generation is persisted there before it becomes visible, and a
    /// restarted server recovers the last published generation from it.
    /// `None` keeps ingested documents memory-only.
    pub data_dir: Option<PathBuf>,
    /// Compact once this many delta segments have accumulated; `0`
    /// disables the background merger entirely.
    pub merge_threshold: usize,
    /// Period of the online integrity scrubber (DESIGN.md §17): every
    /// interval it re-verifies all durable artifacts, quarantining and
    /// repairing damage. `None` disables the background thread (the
    /// `health` verb then reports the never-scrubbed initial state).
    pub scrub_interval: Option<Duration>,
    /// How long the engine took to build or open before `bind`, in
    /// milliseconds — reported in the `stats` startup block.
    pub startup_load_ms: u64,
    /// Snapshot format version the engine was opened from (`None` when
    /// it was built by parsing XML) — reported in the `stats` startup
    /// block.
    pub startup_snapshot_format: Option<u32>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 256,
            max_connections: 256,
            max_frame_bytes: 1024 * 1024,
            idle_timeout: Duration::from_secs(30),
            default_timeout: None,
            query_threads: 1,
            worker_delay: None,
            conn_timeout: Duration::from_secs(5),
            profile_dir: None,
            data_dir: None,
            merge_threshold: 8,
            scrub_interval: None,
            startup_load_ms: 0,
            startup_snapshot_format: None,
        }
    }
}

/// Server-level failure (binding, thread spawning, fatal accept).
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind the listen address.
    Bind {
        /// The address that failed.
        addr: String,
        /// The underlying error.
        err: io::Error,
    },
    /// Could not spawn a pool thread.
    Spawn(io::Error),
    /// Listener configuration failed.
    Io(io::Error),
    /// The durable profile store failed at the filesystem level
    /// (corrupt *files* never produce this — they are quarantined).
    Store(StoreError),
    /// The ingest pipeline could not be attached (segment store I/O at
    /// startup, or the bootstrap persist of the boot corpus failed).
    Ingest(Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, err } => write!(f, "cannot bind {addr}: {err}"),
            ServeError::Spawn(e) => write!(f, "cannot spawn server thread: {e}"),
            ServeError::Io(e) => write!(f, "server I/O error: {e}"),
            ServeError::Store(e) => write!(f, "profile store: {e}"),
            ServeError::Ingest(e) => write!(f, "ingest pipeline: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    merger: Option<MergerHandle>,
}

/// State shared by the acceptor, readers, and workers.
struct Shared {
    /// The live engine cell. Each request loads one `Arc<Engine>` and
    /// uses it for its whole lifetime (prepare + execute), so a publish
    /// mid-request can never mix corpus generations in one answer.
    live: Arc<LiveEngine>,
    /// The single-writer ingest pipeline behind `add_documents` /
    /// `delete_documents` (its writer mutex serializes concurrent
    /// ingest jobs across the worker pool).
    ingest: Arc<Ingestor>,
    cfg: ServeConfig,
    registry: Arc<ProfileRegistry>,
    /// Shared with the ingest publish hook, which purges corpus-stale
    /// entries the instant a new generation goes live.
    cache: Arc<Mutex<PreparedCache>>,
    queue: BoundedQueue<Job>,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    live_conns: AtomicUsize,
    addr: SocketAddr,
    empty_profile: Arc<UserProfile>,
    store: Option<ProfileStore>,
    /// The online integrity scrubber. Always constructed (the `health`
    /// verb needs it); the periodic thread only runs when
    /// `cfg.scrub_interval` is set.
    scrub: Arc<Scrubber>,
}

/// One admitted request, waiting in the queue.
struct Job {
    req: Request,
    conn: Arc<Conn>,
    /// When the frame was decoded (latency + deadline anchor).
    arrival: Instant,
    /// Deadline budget measured from `arrival`.
    budget: Option<Duration>,
}

/// The response half of a connection, shared between its reader and
/// whichever worker answers its requests.
struct Conn {
    writer: Mutex<TcpStream>,
}

impl Conn {
    /// Write one response frame; a dead client is not an error (the
    /// response is still accounted — it was produced).
    fn respond(&self, payload: &[u8]) {
        let mut w = lock(&self.writer);
        let _ = write_frame(&mut *w, payload);
    }
}

impl Server {
    /// Bind `cfg.addr`, prepare the shared state, and — when
    /// `cfg.profile_dir` is set — recover persisted profiles. Corrupt
    /// store files are quarantined and their users registered as
    /// degraded sessions; only filesystem-level store failures abort the
    /// bind. The server starts serving when [`Server::run`] is called.
    pub fn bind(engine: Arc<Engine>, cfg: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|err| ServeError::Bind {
            addr: cfg.addr.clone(),
            err,
        })?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        let store = match &cfg.profile_dir {
            Some(dir) => Some(ProfileStore::open(dir.clone()).map_err(ServeError::Store)?),
            None => None,
        };
        let live = Arc::new(LiveEngine::from_arc(engine));
        let ingest = Arc::new(
            Ingestor::new(
                Arc::clone(&live),
                IngestConfig {
                    data_dir: cfg.data_dir.clone(),
                    merge_threshold: cfg.merge_threshold,
                    // Compaction rebuilds into the layout the corpus
                    // booted with.
                    compact_shards: live.load().shard_count(),
                    vfs: None,
                },
            )
            .map_err(ServeError::Ingest)?,
        );
        let cache = Arc::new(Mutex::new(PreparedCache::new(cfg.cache_capacity)));
        let metrics = Arc::new(Metrics::new());
        {
            // Publish hook: the moment any write path (request or
            // background merge) publishes a generation, plans compiled
            // against older corpora become unreachable and are purged.
            let cache = Arc::clone(&cache);
            let metrics = Arc::clone(&metrics);
            ingest.set_on_publish(move |generation| {
                let purged = lock(&cache).purge_stale_corpus(generation);
                metrics.add(&metrics.cache_invalidations, purged as u64);
                metrics
                    .corpus_generation
                    .store(generation, Ordering::Relaxed);
            });
        }
        let merger = if cfg.merge_threshold > 0 {
            Some(spawn_merger(&ingest).map_err(ServeError::Ingest)?)
        } else {
            None
        };
        let registry = Arc::new(ProfileRegistry::new());
        let scrub = Arc::new(Scrubber::new(
            Arc::clone(&ingest),
            store.clone(),
            Arc::clone(&registry),
            Arc::clone(&metrics),
        ));
        let shared = Arc::new(Shared {
            cache,
            queue: BoundedQueue::new(cfg.queue_capacity),
            registry,
            metrics,
            shutdown: AtomicBool::new(false),
            live_conns: AtomicUsize::new(0),
            addr,
            empty_profile: Arc::new(UserProfile::new()),
            store,
            scrub,
            live,
            ingest,
            cfg,
        });
        shared.metrics.set_startup(
            shared.cfg.startup_load_ms,
            shared.cfg.startup_snapshot_format,
        );
        let engine = shared.live.load();
        shared.metrics.set_shards(engine.shard_count());
        shared.metrics.set_ingest_gauges(
            engine.generation(),
            engine.num_docs(),
            engine.live_docs(),
            0,
            0,
        );
        if let Some(store) = &shared.store {
            for outcome in store.recover().map_err(ServeError::Store)? {
                recover_one(&shared, outcome);
            }
        }
        Ok(Server {
            listener,
            addr,
            shared,
            merger,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until a `shutdown` command arrives, then drain and return
    /// the final metrics snapshot. Blocks the calling thread (the
    /// acceptor runs here; spawn `run` onto a thread to serve in the
    /// background).
    pub fn run(self) -> Result<Value, ServeError> {
        let shared = self.shared;
        let merger = self.merger;
        let scrub_thread = match shared.cfg.scrub_interval {
            Some(interval) => {
                Some(spawn_scrubber(&shared.scrub, interval).map_err(ServeError::Spawn)?)
            }
            None => None,
        };
        let pool_size = effective_workers(resolve_threads(shared.cfg.workers), usize::MAX);
        let mut workers = Vec::with_capacity(pool_size);
        for i in 0..pool_size {
            let s = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("pimento-serve-worker-{i}"))
                .spawn(move || {
                    // Self-healing: a panic that escapes the per-request
                    // isolation (e.g. the `serve.worker.loop` fault
                    // point) ends one loop iteration, not the worker —
                    // the loop re-enters until the queue closes. No job
                    // is lost: the loop only panics outside `pop`, and a
                    // panic *inside* a handler is caught per-request.
                    loop {
                        match catch_unwind(AssertUnwindSafe(|| worker_loop(&s))) {
                            Ok(()) => break,
                            Err(_) => s.metrics.inc(&s.metrics.worker_respawns),
                        }
                    }
                })
                .map_err(ServeError::Spawn)?;
            workers.push(handle);
        }

        let mut readers: Vec<thread::JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut stream = match incoming {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Finished readers are joined opportunistically so the
            // handle list stays proportional to live connections.
            readers.retain(|h| !h.is_finished());
            if shared.live_conns.load(Ordering::SeqCst) >= shared.cfg.max_connections {
                shared.metrics.inc(&shared.metrics.conns_rejected);
                // The rejection write runs on the acceptor thread: a
                // stalled client must not pin it past the timeout.
                let _ = stream.set_write_timeout(Some(shared.cfg.conn_timeout));
                let _ = write_frame(
                    &mut stream,
                    &err_payload(err_kind::OVERLOADED, "connection limit reached"),
                );
                continue;
            }
            shared.metrics.inc(&shared.metrics.conns_accepted);
            shared.live_conns.fetch_add(1, Ordering::SeqCst);
            let s = Arc::clone(&shared);
            match thread::Builder::new()
                .name("pimento-serve-reader".to_string())
                .spawn(move || {
                    reader_loop(stream, &s);
                    s.live_conns.fetch_sub(1, Ordering::SeqCst);
                }) {
                Ok(h) => readers.push(h),
                Err(_) => {
                    shared.live_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }

        // Drain: readers stop admitting within one read tick, then the
        // queue is closed so workers finish everything already admitted.
        for h in readers {
            let _ = h.join();
        }
        shared.queue.close();
        for h in workers {
            let _ = h.join();
        }
        // Stop the background merger after the drain: every admitted
        // ingest request has been answered, so its last published
        // generation is final (and durable when a data dir is set).
        shared.ingest.shutdown();
        if let Some(m) = merger {
            m.join();
        }
        if let Some(s) = scrub_thread {
            s.stop();
        }
        let cache_entries = lock(&shared.cache).len();
        Ok(shared
            .metrics
            .snapshot(cache_entries, shared.registry.len()))
    }
}

/// Fold one store-recovery outcome into the registry + metrics. Corrupt
/// rules with an intact header still name the user, so the user gets a
/// degraded session (unpersonalized answers flagged `degraded: true`)
/// instead of vanishing into `unknown_user` errors.
fn recover_one(shared: &Shared, outcome: Recovered) {
    let metrics = &shared.metrics;
    match outcome {
        Recovered::Profile { user, rules } => {
            match parse_profile(&rules, &PrefRelRegistry::new()) {
                Ok(profile) => {
                    shared.registry.register_with_rules(&user, profile, &rules);
                    metrics.inc(&metrics.profiles_recovered);
                }
                Err(e) => {
                    // The bytes verified but no longer parse (e.g. the
                    // rule grammar moved on): degrade, don't die.
                    shared.registry.register_degraded(
                        &user,
                        &format!("persisted profile no longer parses: {e}"),
                    );
                }
            }
        }
        Recovered::CorruptRules { user, detail, .. } => {
            shared
                .registry
                .register_degraded(&user, &format!("persisted profile corrupt: {detail}"));
            metrics.inc(&metrics.profiles_quarantined);
        }
        Recovered::CorruptFile { .. } => metrics.inc(&metrics.profiles_quarantined),
    }
}

/// Recover a mutex guard even if a panicking thread poisoned it: every
/// critical section leaves the protected structure consistent, and the
/// server must keep answering.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------
// Bounded queue

/// Mutex + condvar MPMC queue with a hard capacity. `try_push` never
/// blocks (backpressure surfaces as an error, not as buffering); `pop`
/// blocks until an item or close-and-empty.
struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admit an item unless the queue is full or closed.
    fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = lock(&self.inner);
        if q.closed || q.items.len() >= self.capacity {
            return Err(item);
        }
        q.items.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Next item; `None` once the queue is closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut q = lock(&self.inner);
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = match self.ready.wait(q) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Close the queue; blocked `pop`s drain what remains, then end.
    fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------
// Reader side

enum ReadOutcome {
    Frame(Vec<u8>),
    TooLarge(usize),
    Closed,
}

/// Read one length-delimited frame, waking every [`READ_TICK`] to check
/// the shutdown flag and the idle budget.
fn read_frame_ticking(stream: &mut TcpStream, shared: &Shared) -> ReadOutcome {
    let started = Instant::now();
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        if shared.shutdown.load(Ordering::SeqCst) {
            return ReadOutcome::Closed;
        }
        let Some(window) = header.get_mut(filled..) else {
            return ReadOutcome::Closed;
        };
        match stream.read(window) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if started.elapsed() >= shared.cfg.idle_timeout {
                    return ReadOutcome::Closed;
                }
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > shared.cfg.max_frame_bytes.min(FRAME_HARD_CAP) {
        return ReadOutcome::TooLarge(len);
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        if shared.shutdown.load(Ordering::SeqCst) || started.elapsed() >= shared.cfg.idle_timeout {
            return ReadOutcome::Closed;
        }
        let Some(window) = payload.get_mut(got..) else {
            return ReadOutcome::Closed;
        };
        match stream.read(window) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Frame(payload)
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Per-connection loop: decode frames, admit them to the queue, reject
/// with typed errors on overload / malformed input.
fn reader_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    // Responses are single small frames; waiting for ACKs to batch them
    // (Nagle) only adds latency.
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // A client that stops reading must not wedge a worker forever.
    let _ = writer.set_write_timeout(Some(shared.cfg.conn_timeout));
    let conn = Arc::new(Conn {
        writer: Mutex::new(writer),
    });
    let metrics = &shared.metrics;
    loop {
        match read_frame_ticking(&mut stream, shared) {
            ReadOutcome::Closed => return,
            ReadOutcome::TooLarge(len) => {
                // The oversized frame counts as one accepted-and-errored
                // request; the connection cannot be resynchronized, so it
                // closes after the reply.
                metrics.inc(&metrics.requests);
                metrics.inc(&metrics.responses_err);
                conn.respond(&err_payload(
                    err_kind::BAD_REQUEST,
                    &format!("frame of {len} bytes exceeds the limit"),
                ));
                return;
            }
            ReadOutcome::Frame(bytes) => {
                metrics.inc(&metrics.requests);
                let arrival = Instant::now();
                let parsed = std::str::from_utf8(&bytes)
                    .map_err(|_| "frame is not UTF-8".to_string())
                    .and_then(|text| Value::parse(text).map_err(|e| e.to_string()))
                    .and_then(|v| parse_request(&v));
                let req = match parsed {
                    Ok(req) => req,
                    Err(msg) => {
                        metrics.inc(&metrics.responses_err);
                        conn.respond(&err_payload(err_kind::BAD_REQUEST, &msg));
                        continue;
                    }
                };
                let budget = request_budget(&req, &shared.cfg);
                let job = Job {
                    req,
                    conn: Arc::clone(&conn),
                    arrival,
                    budget,
                };
                if shared.queue.try_push(job).is_err() {
                    metrics.inc(&metrics.rejected_overload);
                    let (kind, msg) = if shared.shutdown.load(Ordering::SeqCst) {
                        (err_kind::SHUTTING_DOWN, "server is draining")
                    } else {
                        (err_kind::OVERLOADED, "request queue is full")
                    };
                    conn.respond(&err_payload(kind, msg));
                }
            }
        }
    }
}

/// The deadline budget a request runs under: its own `timeout_ms` if
/// present, else the server default. Control commands carry no deadline.
fn request_budget(req: &Request, cfg: &ServeConfig) -> Option<Duration> {
    match req {
        Request::Search(spec) | Request::Explain(spec) => spec
            .timeout_ms
            .map(Duration::from_millis)
            .or(cfg.default_timeout),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Worker side

fn worker_loop(shared: &Arc<Shared>) {
    let metrics = &shared.metrics;
    loop {
        // Fault point `serve.worker.loop`: a panic *outside* any request
        // handler. It fires before `pop`, so no admitted job is held when
        // the loop dies; the respawn wrapper in `run` re-enters.
        #[cfg(feature = "fault-injection")]
        if pimento_faults::should_fire("serve.worker.loop") {
            panic!("fault injected: serve.worker.loop");
        }
        let Some(job) = shared.queue.pop() else {
            return;
        };
        if let Some(delay) = shared.cfg.worker_delay {
            thread::sleep(delay);
        }
        // Deadline gate: work that can no longer be useful is abandoned
        // before evaluation starts, never mid-operator.
        if let Some(budget) = job.budget {
            if job.arrival.elapsed() >= budget {
                metrics.inc(&metrics.rejected_deadline);
                job.conn.respond(&err_payload(
                    err_kind::DEADLINE,
                    "deadline expired before evaluation started",
                ));
                metrics.observe_latency_us(job.arrival.elapsed().as_micros() as u64);
                continue;
            }
        }
        if matches!(job.req, Request::Health) {
            // Control request, same self-counting discipline as `stats`:
            // the response is counted before the body is built.
            metrics.inc(&metrics.responses_ok);
            job.conn.respond(&ok_payload(shared.scrub.health_body()));
            metrics.observe_latency_us(job.arrival.elapsed().as_micros() as u64);
            continue;
        }
        if matches!(job.req, Request::Stats | Request::Shutdown) {
            // Snapshot-answering requests count their own response first,
            // so the snapshot they return already satisfies the
            // `requests == responses + rejections` identity.
            metrics.inc(&metrics.responses_ok);
            let engine = shared.live.load();
            metrics.set_shards(engine.shard_count());
            metrics.set_ingest_gauges(
                engine.generation(),
                engine.num_docs(),
                engine.live_docs(),
                shared.ingest.merges(),
                shared.ingest.merge_failures(),
            );
            let cache_entries = lock(&shared.cache).len();
            let snapshot = metrics.snapshot(cache_entries, shared.registry.len());
            job.conn.respond(&ok_payload(snapshot));
            metrics.observe_latency_us(job.arrival.elapsed().as_micros() as u64);
            if matches!(job.req, Request::Shutdown) {
                begin_shutdown(shared);
            }
            continue; // on shutdown: keep draining until the queue closes
        }
        // Per-request panic isolation: whatever happens inside the
        // handler — including the `serve.worker.job` fault point — this
        // job gets exactly one response, so the `requests == responses`
        // identity survives injected and genuine panics alike.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-injection")]
            if pimento_faults::should_fire("serve.worker.job") {
                panic!("fault injected: serve.worker.job");
            }
            handle_request(shared, &job.req)
        }));
        match outcome {
            Ok(Ok(body)) => {
                metrics.inc(&metrics.responses_ok);
                job.conn.respond(&ok_payload(body));
            }
            Ok(Err((kind, msg))) => {
                metrics.inc(&metrics.responses_err);
                job.conn.respond(&err_payload(kind, &msg));
            }
            Err(payload) => {
                metrics.inc(&metrics.panics);
                metrics.inc(&metrics.responses_err);
                job.conn.respond(&err_payload(
                    err_kind::INTERNAL,
                    &format!("request handler panicked: {}", panic_message(&payload)),
                ));
            }
        }
        metrics.observe_latency_us(job.arrival.elapsed().as_micros() as u64);
    }
}

/// Best-effort human-readable text from a panic payload (`panic!` with a
/// string literal or a formatted message covers practically everything).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

/// Flip the drain flag and poke the acceptor awake (its blocking
/// `accept` only observes the flag on wakeup).
fn begin_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(shared.addr);
}

type RequestError = (&'static str, String);

fn handle_request(shared: &Arc<Shared>, req: &Request) -> Result<Value, RequestError> {
    match req {
        Request::RegisterProfile { user, rules } => register_profile(shared, user, rules),
        Request::Search(spec) => run_query(shared, spec, false),
        Request::Explain(spec) => run_query(shared, spec, true),
        Request::AddDocuments { docs } => ingest_add(shared, docs),
        Request::DeleteDocuments { ids } => ingest_delete(shared, ids),
        // Handled in `worker_loop` (self-counting snapshots + drain).
        Request::Stats | Request::Health | Request::Shutdown => Ok(Value::Null),
    }
}

/// `add_documents`: hand the batch to the single-writer pipeline. On
/// success the response's generation is already durable (when a data
/// dir is configured) and already visible to every later search.
fn ingest_add(shared: &Arc<Shared>, docs: &[String]) -> Result<Value, RequestError> {
    let metrics = &shared.metrics;
    metrics.inc(&metrics.ingest_requests);
    let receipt = shared.ingest.add_documents(docs).map_err(|e| {
        metrics.inc(&metrics.ingest_errors);
        if matches!(e, Error::DiskFull(_)) {
            metrics.inc(&metrics.disk_full);
        }
        map_engine_err(e)
    })?;
    metrics.add(&metrics.docs_added, receipt.docs as u64);
    let engine = shared.live.load();
    Ok(obj([
        ("added", receipt.docs.into()),
        ("generation", receipt.generation.into()),
        ("num_docs", engine.num_docs().into()),
        ("live_docs", engine.live_docs().into()),
        ("segments", engine.shard_count().into()),
    ]))
}

/// `delete_documents`: tombstone the ids and publish. Ids already
/// deleted (or repeated in the batch) are idempotent no-ops; an id
/// outside the corpus fails the whole batch with a typed error and
/// publishes nothing.
fn ingest_delete(shared: &Arc<Shared>, ids: &[u32]) -> Result<Value, RequestError> {
    let metrics = &shared.metrics;
    metrics.inc(&metrics.ingest_requests);
    let receipt = shared.ingest.delete_documents(ids).map_err(|e| {
        metrics.inc(&metrics.ingest_errors);
        if matches!(e, Error::DiskFull(_)) {
            metrics.inc(&metrics.disk_full);
        }
        map_engine_err(e)
    })?;
    metrics.add(&metrics.docs_deleted, receipt.docs as u64);
    let engine = shared.live.load();
    Ok(obj([
        ("deleted", receipt.docs.into()),
        ("generation", receipt.generation.into()),
        ("num_docs", engine.num_docs().into()),
        ("live_docs", engine.live_docs().into()),
        ("segments", engine.shard_count().into()),
    ]))
}

fn register_profile(shared: &Arc<Shared>, user: &str, rules: &str) -> Result<Value, RequestError> {
    let profile = parse_profile(rules, &PrefRelRegistry::new())
        .map_err(|e| (err_kind::PROFILE, e.to_string()))?;
    let warnings: Vec<Value> = validate(&profile)
        .into_iter()
        .map(|w| w.to_string().into())
        .collect();
    let counts = (
        profile.scoping.len(),
        profile.vors.len(),
        profile.kors.len(),
    );
    // The rule text rides along in the session so the scrubber can
    // re-persist it if the on-disk copy is later damaged.
    let generation = shared.registry.register_with_rules(user, profile, rules);
    let invalidated = lock(&shared.cache).invalidate_user(user);
    let metrics = &shared.metrics;
    metrics.add(&metrics.cache_invalidations, invalidated as u64);
    let mut fields = vec![
        ("user".to_string(), user.into()),
        ("generation".to_string(), generation.into()),
        ("scoping".to_string(), counts.0.into()),
        ("vors".to_string(), counts.1.into()),
        ("kors".to_string(), counts.2.into()),
        ("warnings".to_string(), Value::Arr(warnings)),
        ("invalidated".to_string(), invalidated.into()),
    ];
    if let Some(store) = &shared.store {
        // Persistence failure degrades durability, not availability: the
        // registration is already live in memory, so report the failure
        // in-band and keep serving.
        match store.persist(user, rules) {
            Ok(_) => fields.push(("persisted".to_string(), true.into())),
            Err(e) => {
                metrics.inc(&metrics.store_errors);
                if matches!(e, StoreError::DiskFull { .. }) {
                    metrics.inc(&metrics.disk_full);
                }
                fields.push(("persisted".to_string(), false.into()));
                fields.push(("persist_error".to_string(), e.to_string().into()));
            }
        }
    }
    Ok(Value::Obj(fields))
}

/// Cache probe + compile for one (profile, user, generation, query)
/// binding. Engine errors surface untyped so the caller can decide
/// between propagating and degrading.
fn fetch_or_prepare(
    shared: &Arc<Shared>,
    engine: &Arc<Engine>,
    profile: &Arc<UserProfile>,
    user_key: String,
    generation: u64,
    query: &str,
) -> Result<(Arc<pimento::PreparedSearch>, &'static str), Error> {
    let metrics = &shared.metrics;
    let key = CacheKey {
        user: user_key,
        generation,
        corpus: engine.generation(),
        query: query.to_string(),
    };
    metrics.inc(&metrics.cache_lookups);
    let cached = lock(&shared.cache).lookup(&key);
    match cached {
        Some(p) => {
            metrics.inc(&metrics.cache_hits);
            Ok((p, "hit"))
        }
        None => {
            metrics.inc(&metrics.cache_misses);
            // `prepare` runs outside the cache lock: compilation is the
            // expensive part, and a racing duplicate insert is harmless
            // (both compile identical state). The key's corpus
            // generation is the loaded engine's, so a publish racing
            // this insert leaves only an unreachable entry behind — the
            // publish hook (or a later purge) sweeps it.
            let prepared = Arc::new(engine.prepare(query, profile)?);
            let evicted = lock(&shared.cache).insert(key, Arc::clone(&prepared));
            metrics.add(&metrics.cache_evictions, evicted as u64);
            Ok((prepared, "miss"))
        }
    }
}

/// Resolve the profile session, fetch-or-compile the prepared state,
/// then execute (or explain) under the request's options. Personalized
/// requests whose profile cannot be applied — a degraded session from
/// startup recovery, or a scoping conflict at prepare time — fall back
/// to the unpersonalized base query and stamp `degraded: true` plus a
/// reason on the response instead of failing.
fn run_query(
    shared: &Arc<Shared>,
    spec: &QuerySpec,
    explain_only: bool,
) -> Result<Value, RequestError> {
    let metrics = &shared.metrics;
    // One engine load per request: prepare and execute run against the
    // same corpus generation even if a publish lands mid-request.
    let engine = shared.live.load();
    let (profile, user_key, generation, mut degraded) = match &spec.user {
        None => (Arc::clone(&shared.empty_profile), String::new(), 0, None),
        Some(user) => {
            let session = shared.registry.get(user).ok_or_else(|| {
                (
                    err_kind::UNKNOWN_USER,
                    format!("no profile registered for `{user}`"),
                )
            })?;
            match session.degraded {
                // A degraded session runs under the anonymous cache slot:
                // its placeholder profile IS the empty profile, so the
                // compiled state is shared with anonymous queries.
                Some(reason) => (
                    Arc::clone(&shared.empty_profile),
                    String::new(),
                    0,
                    Some(reason),
                ),
                None => (session.profile, user.clone(), session.generation, None),
            }
        }
    };
    let attempt = fetch_or_prepare(shared, &engine, &profile, user_key, generation, &spec.query);
    let (prepared, cache_state) = match attempt {
        Ok(ready) => ready,
        Err(Error::Conflict(e)) if degraded.is_none() && spec.user.is_some() => {
            // Graceful degradation: the profile cannot be applied to
            // *this* query. Unpersonalized answers now beat a hard error;
            // the empty profile prepares deterministically (its fault
            // point is gated on a non-empty rule set).
            degraded = Some(format!("profile not applicable to this query: {e}"));
            let empty = Arc::clone(&shared.empty_profile);
            fetch_or_prepare(shared, &engine, &empty, String::new(), 0, &spec.query)
                .map_err(map_engine_err)?
        }
        Err(e) => return Err(map_engine_err(e)),
    };
    let mut opts = SearchOptions::top(spec.k.max(1));
    opts.k = spec.k; // k == 0 surfaces as the engine's typed InvalidK
    opts.offset = spec.offset;
    opts.threads = spec.threads.unwrap_or(shared.cfg.query_threads);
    if let Some(strategy) = spec.strategy {
        opts.strategy = strategy;
    }
    if explain_only {
        let plan = engine
            .explain_prepared(&prepared, &opts)
            .map_err(map_engine_err)?;
        let body = obj([
            ("plan", plan.into()),
            ("cache", cache_state.into()),
            ("applied_rules", str_arr(prepared.applied_rules())),
        ]);
        return Ok(stamp_degraded(body, &degraded, metrics));
    }
    let results = engine
        .run_prepared(&prepared, &opts)
        .map_err(map_engine_err)?;
    metrics.absorb_exec(&results.stats);
    metrics.absorb_shard_times(&results.shard_times_us);
    Ok(stamp_degraded(
        results_body(&results, cache_state),
        &degraded,
        metrics,
    ))
}

/// Mark a successful response as degraded (and count it) when the
/// request fell back to unpersonalized evaluation.
fn stamp_degraded(body: Value, degraded: &Option<String>, metrics: &Metrics) -> Value {
    let Some(reason) = degraded else { return body };
    metrics.inc(&metrics.degraded);
    match body {
        Value::Obj(mut fields) => {
            fields.push(("degraded".to_string(), true.into()));
            fields.push(("degraded_reason".to_string(), reason.as_str().into()));
            Value::Obj(fields)
        }
        other => other,
    }
}

fn map_engine_err(e: Error) -> RequestError {
    match e {
        Error::Query(_) => (err_kind::QUERY, e.to_string()),
        Error::Conflict(_) => (err_kind::PROFILE, e.to_string()),
        Error::InvalidK => (err_kind::BAD_REQUEST, e.to_string()),
        Error::Ingest(_) | Error::Xml(_) => (err_kind::INGEST, e.to_string()),
        // Retryable: the previous generation is still served; the
        // client can retry once space frees.
        Error::DiskFull(_) => (err_kind::DISK_FULL, e.to_string()),
        Error::Snapshot(_) | Error::Shard(_) | Error::Io(_) => {
            (err_kind::INTERNAL, e.to_string())
        }
    }
}

fn str_arr(items: &[String]) -> Value {
    Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect())
}

fn results_body(results: &SearchResults, cache_state: &str) -> Value {
    let hits: Vec<Value> = results
        .hits
        .iter()
        .map(|h| {
            obj([
                ("rank", h.rank.into()),
                ("doc", (h.elem.doc.0 as u64).into()),
                ("node", (h.elem.node.0 as u64).into()),
                ("s", h.s.into()),
                ("k", h.k.into()),
                ("kors", str_arr(&h.satisfied_kors)),
                ("optional", str_arr(&h.satisfied_optional)),
                ("text", h.text.as_str().into()),
            ])
        })
        .collect();
    let stats = &results.stats;
    obj([
        ("hits", Value::Arr(hits)),
        ("cache", cache_state.into()),
        ("applied_rules", str_arr(&results.applied_rules)),
        ("skipped_rules", str_arr(&results.skipped_rules)),
        ("flock_size", results.flock_size.into()),
        (
            "stats",
            obj([
                ("base_answers", stats.base_answers.into()),
                ("pruned", stats.pruned.into()),
                ("bulk_pruned", stats.bulk_pruned.into()),
                ("ft_probes", stats.ft_probes.into()),
                ("vor_comparisons", stats.vor_comparisons.into()),
                ("emitted", stats.emitted.into()),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_backpressure_and_drain() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue rejects");
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        q.close();
        assert_eq!(q.try_push(4), Err(4), "closed queue rejects");
        assert_eq!(q.pop(), Some(2), "drains after close");
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_capacity_queue_rejects_everything() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(1), Err(1));
    }

    #[test]
    fn budget_resolution() {
        let cfg = ServeConfig {
            default_timeout: Some(Duration::from_millis(7)),
            ..ServeConfig::default()
        };
        let spec = QuerySpec {
            user: None,
            query: "//a".into(),
            k: 1,
            offset: 0,
            strategy: None,
            threads: None,
            timeout_ms: Some(3),
        };
        assert_eq!(
            request_budget(&Request::Search(spec.clone()), &cfg),
            Some(Duration::from_millis(3))
        );
        let spec_no = QuerySpec {
            timeout_ms: None,
            ..spec
        };
        assert_eq!(
            request_budget(&Request::Search(spec_no), &cfg),
            Some(Duration::from_millis(7))
        );
        assert_eq!(request_budget(&Request::Stats, &cfg), None);
    }
}
