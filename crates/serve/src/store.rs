//! Crash-safe durable profile persistence (DESIGN.md §12).
//!
//! `register_profile` keeps profiles in memory ([`crate::registry`]); when
//! the server is started with `--profile-dir`, each registration is also
//! persisted so profiles survive restarts. Durability discipline:
//!
//! * **write-temp → fsync → atomic rename** — a crash mid-write leaves a
//!   stale `.tmp` file (ignored on recovery), never a torn `.profile`;
//! * **two checksums** — the user-name header and the whole body carry
//!   independent CRC32s (reusing [`pimento_index::crc32`]). A bit flip in
//!   the rules region leaves the header verifiable, so recovery still
//!   knows *which user* lost their profile and can register a degraded
//!   session for them instead of silently forgetting the user;
//! * **quarantine, don't abort** — a corrupt file is renamed to
//!   `<name>.q<seq>.quarantined` and reported as a typed [`Recovered`]
//!   outcome; startup recovery never panics and never deletes evidence.
//!   Quarantined files are bounded (count + total bytes, oldest-first
//!   eviction — [`QuarantineCap`]) so a flapping disk cannot fill the
//!   profile dir;
//! * **typed disk-full** — `ENOSPC` surfaces as
//!   [`StoreError::DiskFull`] with the temp file cleaned up, so the
//!   in-memory session stays live and a retry after space frees can
//!   succeed.
//!
//! All I/O goes through a [`Vfs`] handle (DESIGN.md §17): [`StdVfs`] in
//! production, `SimVfs` in the crash-enumeration harness.
//!
//! ```text
//! magic   "PIMPROF1"                        8 bytes
//! u32le   user length; user (UTF-8)
//! u32le   CRC32 of everything above         — header checksum
//! u32le   rules length; rules (UTF-8)
//! u32le   CRC32 of everything above         — body checksum
//! ```

use pimento_faults::vfs::{self, QuarantineCap, StdVfs, Vfs};
use pimento_index::crc32;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"PIMPROF1";

/// A typed profile-store failure.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure (create/write/fsync/rename/list).
    Io {
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying error.
        err: io::Error,
    },
    /// The disk is full (`ENOSPC`). The temp file was cleaned up, the
    /// in-memory session is unaffected, and a retry can succeed once
    /// space frees.
    DiskFull {
        /// The path the operation targeted.
        path: PathBuf,
        /// The underlying error.
        err: io::Error,
    },
}

impl StoreError {
    fn classify(path: &Path, err: io::Error) -> StoreError {
        if vfs::is_disk_full(&err) {
            StoreError::DiskFull {
                path: path.to_path_buf(),
                err,
            }
        } else {
            StoreError::Io {
                path: path.to_path_buf(),
                err,
            }
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, err } => {
                write!(f, "profile store I/O error at {}: {err}", path.display())
            }
            StoreError::DiskFull { path, err } => {
                write!(f, "profile store disk full at {}: {err}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Outcome of recovering one persisted file at startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovered {
    /// The file verified; the profile is ready to re-register.
    Profile {
        /// The session key the profile was persisted under.
        user: String,
        /// The profile rule text, exactly as registered.
        rules: String,
    },
    /// The rules region is corrupt but the header verified: the user is
    /// known, their profile is not. The file was quarantined.
    CorruptRules {
        /// The user whose profile was lost.
        user: String,
        /// Where the corrupt file now lives.
        quarantined: PathBuf,
        /// What failed (checksum mismatch, truncation, bad UTF-8).
        detail: String,
    },
    /// The header itself is corrupt — not even the user name is
    /// trustworthy. The file was quarantined.
    CorruptFile {
        /// Where the corrupt file now lives.
        quarantined: PathBuf,
        /// What failed.
        detail: String,
    },
}

/// A directory of durably persisted profiles, one file per user.
#[derive(Debug, Clone)]
pub struct ProfileStore {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    cap: QuarantineCap,
}

impl ProfileStore {
    /// Open (creating if needed) the store directory on the real
    /// filesystem.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ProfileStore, StoreError> {
        ProfileStore::open_with(Arc::new(StdVfs), dir)
    }

    /// Open the store against an explicit [`Vfs`] — the entry point the
    /// crash harness uses to run persistence on `SimVfs`.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: impl Into<PathBuf>,
    ) -> Result<ProfileStore, StoreError> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)
            .map_err(|err| StoreError::classify(&dir, err))?;
        Ok(ProfileStore {
            dir,
            vfs,
            cap: QuarantineCap::default(),
        })
    }

    /// Replace the default quarantine cap (64 files / 64 MiB).
    pub fn set_quarantine_cap(&mut self, cap: QuarantineCap) {
        self.cap = cap;
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filesystem this store talks to.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Count and total bytes of `*.quarantined` files currently held —
    /// the `store.quarantined` gauge.
    pub fn quarantined_stats(&self) -> (usize, u64) {
        let q = vfs::quarantine_stats(&*self.vfs, &self.dir);
        let bytes = q.iter().map(|f| f.len).sum();
        (q.len(), bytes)
    }

    /// The file a user's profile persists to. The name embeds a sanitized
    /// prefix (readability) and an FNV-1a hash of the exact user string
    /// (uniqueness: distinct users never share a file).
    pub fn path_for(&self, user: &str) -> PathBuf {
        self.dir.join(Self::name_for(user))
    }

    /// The file name (no directory) for a user's profile.
    fn name_for(user: &str) -> String {
        let sanitized: String = user
            .chars()
            .take(40)
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in user.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("u-{sanitized}-{h:016x}.profile")
    }

    /// Durably persist one (user, rules) pair: encode, write to a temp
    /// file, fsync, atomically rename into place, then fsync the
    /// directory so the rename itself survives a crash. On failure the
    /// temp file is removed so a full disk is not further burdened.
    pub fn persist(&self, user: &str, rules: &str) -> Result<PathBuf, StoreError> {
        let path = self.path_for(user);
        let name = Self::name_for(user);
        let bytes = encode(user, rules);

        #[cfg(feature = "fault-injection")]
        for step in ["write", "fsync", "rename"] {
            if pimento_faults::should_fire(&format!("serve.store.{step}")) {
                return Err(StoreError::Io {
                    path: path.clone(),
                    err: io::Error::other(format!("fault injected: serve.store.{step}")),
                });
            }
        }
        vfs::write_durable(&*self.vfs, &self.dir, &name, &bytes)
            .map_err(|err| StoreError::classify(&path, err))?;
        Ok(path)
    }

    /// Scan the directory and decode every `.profile` file, quarantining
    /// corrupt ones. Stale `.tmp` leftovers from a crashed `persist` are
    /// ignored. Files are visited in name order, so recovery (and the
    /// chaos suite) is deterministic.
    pub fn recover(&self) -> Result<Vec<Recovered>, StoreError> {
        let mut files: Vec<PathBuf> = self
            .vfs
            .list(&self.dir)
            .map_err(|err| StoreError::classify(&self.dir, err))?
            .into_iter()
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("profile"))
            .collect();
        files.sort();

        let mut out = Vec::with_capacity(files.len());
        for path in files {
            let bytes = match self.vfs.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    let quarantined = self.quarantine(&path)?;
                    out.push(Recovered::CorruptFile {
                        quarantined,
                        detail: format!("unreadable: {e}"),
                    });
                    continue;
                }
            };
            #[cfg(feature = "fault-injection")]
            let forced = pimento_faults::should_fire("serve.store.load");
            #[cfg(not(feature = "fault-injection"))]
            let forced = false;
            match decode(&bytes) {
                Ok((user, rules)) if !forced => out.push(Recovered::Profile { user, rules }),
                Ok((user, _)) => {
                    let quarantined = self.quarantine(&path)?;
                    out.push(Recovered::CorruptRules {
                        user,
                        quarantined,
                        detail: "fault injected: serve.store.load".to_string(),
                    });
                }
                Err(DecodeFail::Rules { user, detail }) => {
                    let quarantined = self.quarantine(&path)?;
                    out.push(Recovered::CorruptRules {
                        user,
                        quarantined,
                        detail,
                    });
                }
                Err(DecodeFail::Header(detail)) => {
                    let quarantined = self.quarantine(&path)?;
                    out.push(Recovered::CorruptFile {
                        quarantined,
                        detail,
                    });
                }
            }
        }
        Ok(out)
    }

    /// Move a corrupt file out of the scan set, keeping it for
    /// forensics, then age out the oldest quarantined files if the cap
    /// is exceeded.
    pub fn quarantine(&self, path: &Path) -> Result<PathBuf, StoreError> {
        vfs::quarantine_file(&*self.vfs, path, self.cap)
            .map_err(|err| StoreError::classify(path, err))
    }

    /// Decode one profile file's raw bytes — the scrubber's
    /// verification primitive. Success returns `(user, rules)`;
    /// failure tells (typed) whether the header survived.
    pub fn verify_bytes(bytes: &[u8]) -> Result<(String, String), (Option<String>, String)> {
        match decode(bytes) {
            Ok(ok) => Ok(ok),
            Err(DecodeFail::Rules { user, detail }) => Err((Some(user), detail)),
            Err(DecodeFail::Header(detail)) => Err((None, detail)),
        }
    }
}

/// Why one persisted file failed to decode.
enum DecodeFail {
    /// The header (magic + user + header CRC) is untrustworthy.
    Header(String),
    /// The header verified; the rules region did not.
    Rules {
        /// User recovered from the intact header.
        user: String,
        /// What failed.
        detail: String,
    },
}

fn encode(user: &str, rules: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + user.len() + 4 + 4 + rules.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(user.len() as u32).to_le_bytes());
    out.extend_from_slice(user.as_bytes());
    out.extend_from_slice(&crc32(&out).to_le_bytes());
    out.extend_from_slice(&(rules.len() as u32).to_le_bytes());
    out.extend_from_slice(rules.as_bytes());
    out.extend_from_slice(&crc32(&out).to_le_bytes());
    out
}

fn decode(bytes: &[u8]) -> Result<(String, String), DecodeFail> {
    // Every region read goes through `get` — `decode` is reachable from
    // the scrubber's `panic-path` root, so whatever truncation or rot a
    // disk hands us must be a typed failure, never a slice panic.
    let le32 = |off: usize| -> Option<u32> {
        bytes
            .get(off..off.checked_add(4)?)
            .and_then(|b| b.try_into().ok())
            .map(u32::from_le_bytes)
    };
    let region = |from: usize, to: usize| bytes.get(from..to);
    let header = |d: &str| DecodeFail::Header(d.to_string());
    if bytes.len() < MAGIC.len() + 4 {
        return Err(header("truncated header"));
    }
    if region(0, MAGIC.len()) != Some(MAGIC.as_slice()) {
        return Err(header("bad magic"));
    }
    let ulen = le32(MAGIC.len()).ok_or_else(|| header("truncated header"))? as usize;
    let user_end = 12usize.saturating_add(ulen);
    let hcrc = le32(user_end).ok_or_else(|| header("truncated user record"))?;
    let covered = region(0, user_end).ok_or_else(|| header("truncated user record"))?;
    if crc32(covered) != hcrc {
        return Err(header("header checksum mismatch"));
    }
    let user_bytes = region(12, user_end).ok_or_else(|| header("truncated user record"))?;
    let user = match std::str::from_utf8(user_bytes) {
        Ok(u) => u.to_string(),
        Err(_) => return Err(header("user is not valid UTF-8")),
    };
    // Header verified: every later failure still names the user.
    let rules_fail = |user: &str, d: &str| DecodeFail::Rules {
        user: user.to_string(),
        detail: d.to_string(),
    };
    let rl_off = user_end.saturating_add(4);
    let rlen = le32(rl_off).ok_or_else(|| rules_fail(&user, "truncated rules length"))? as usize;
    let rules_end = rl_off.saturating_add(4).saturating_add(rlen);
    let footer = le32(rules_end).ok_or_else(|| rules_fail(&user, "truncated rules record"))?;
    if bytes.len() != rules_end.saturating_add(4) {
        return Err(rules_fail(&user, "trailing bytes after footer"));
    }
    let covered = region(0, rules_end).ok_or_else(|| rules_fail(&user, "truncated rules record"))?;
    if crc32(covered) != footer {
        return Err(rules_fail(&user, "body checksum mismatch"));
    }
    let rules_bytes = region(rl_off.saturating_add(4), rules_end)
        .ok_or_else(|| rules_fail(&user, "truncated rules record"))?;
    match std::str::from_utf8(rules_bytes) {
        Ok(r) => Ok((user, r.to_string())),
        Err(_) => Err(rules_fail(&user, "rules are not valid UTF-8")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// A unique scratch directory per test (no tempfile crate offline).
    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pimento-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_persist_and_recover() {
        let dir = scratch("roundtrip");
        let store = ProfileStore::open(&dir).expect("open");
        store
            .persist("alice", "pi1: x.tag = car -> x < y\n")
            .expect("persist");
        store.persist("bob", "").expect("empty rules persist");
        store
            .persist("weird user/../name", "rule text")
            .expect("hostile name persists");
        let recovered = store.recover().expect("recover");
        assert_eq!(recovered.len(), 3);
        assert!(recovered
            .iter()
            .all(|r| matches!(r, Recovered::Profile { .. })));
        assert!(recovered.contains(&Recovered::Profile {
            user: "alice".to_string(),
            rules: "pi1: x.tag = car -> x < y\n".to_string(),
        }));
        assert!(recovered.contains(&Recovered::Profile {
            user: "weird user/../name".to_string(),
            rules: "rule text".to_string(),
        }));
        // Re-persisting overwrites in place (same path per user).
        store.persist("alice", "changed\n").expect("re-persist");
        assert_eq!(store.recover().expect("recover").len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_user_names_stay_inside_the_store_dir() {
        let dir = scratch("paths");
        let store = ProfileStore::open(&dir).expect("open");
        for user in ["../../etc/passwd", "a/b/c", "", ".", "..", "名前"] {
            let p = store.path_for(user);
            assert_eq!(p.parent(), Some(dir.as_path()), "{user:?} escaped: {p:?}");
        }
        // Distinct users, even with identical sanitized prefixes, get
        // distinct files.
        assert_ne!(store.path_for("a/b"), store.path_for("a?b"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_rules_keep_the_user_and_quarantine_the_file() {
        let dir = scratch("corrupt-rules");
        let store = ProfileStore::open(&dir).expect("open");
        let path = store
            .persist("victim", "pi1: x.tag = car -> x < y\n")
            .expect("persist");
        let mut bytes = fs::read(&path).expect("read");
        let n = bytes.len();
        bytes[n - 6] ^= 0xff; // inside the rules region, before the footer
        fs::write(&path, &bytes).expect("rewrite");

        let recovered = store.recover().expect("recover");
        assert_eq!(recovered.len(), 1);
        match &recovered[0] {
            Recovered::CorruptRules {
                user,
                quarantined,
                detail,
            } => {
                assert_eq!(user, "victim");
                assert!(quarantined.exists(), "quarantined file kept");
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("wrong outcome: {other:?}"),
        }
        assert!(!path.exists(), "corrupt file moved out of the scan set");
        assert_eq!(store.quarantined_stats().0, 1, "gauge sees the file");
        // A second recovery pass sees a clean (empty) store.
        assert!(store.recover().expect("recover again").is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_header_quarantines_without_a_user() {
        let dir = scratch("corrupt-header");
        let store = ProfileStore::open(&dir).expect("open");
        let path = store.persist("victim", "rules\n").expect("persist");
        let mut bytes = fs::read(&path).expect("read");
        bytes[9] ^= 0xff; // user-length field: header checksum now fails
        fs::write(&path, &bytes).expect("rewrite");
        match &store.recover().expect("recover")[0] {
            Recovered::CorruptFile { quarantined, .. } => assert!(quarantined.exists()),
            other => panic!("wrong outcome: {other:?}"),
        }
        // Unrelated garbage is also quarantined, not crashed on.
        fs::write(dir.join("junk.profile"), b"\x00\x01notaprofile").expect("write junk");
        assert!(matches!(
            store.recover().expect("recover")[0],
            Recovered::CorruptFile { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_cap_evicts_oldest_first() {
        let dir = scratch("qcap");
        let mut store = ProfileStore::open(&dir).expect("open");
        store.set_quarantine_cap(QuarantineCap {
            max_files: 2,
            max_bytes: 1 << 20,
        });
        for user in ["a", "b", "c", "d"] {
            let path = store.persist(user, "rules\n").expect("persist");
            fs::write(&path, b"garbage").expect("corrupt");
            store.recover().expect("recover quarantines");
        }
        let (count, bytes) = store.quarantined_stats();
        assert_eq!(count, 2, "count cap holds");
        assert!(bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_ignored() {
        let dir = scratch("tmp");
        let store = ProfileStore::open(&dir).expect("open");
        store.persist("alice", "rules\n").expect("persist");
        // A crash between write and rename leaves a .tmp behind.
        fs::write(store.path_for("ghost").with_extension("tmp"), b"partial").expect("write tmp");
        let recovered = store.recover().expect("recover");
        assert_eq!(recovered.len(), 1, "{recovered:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_boundary_is_typed() {
        let full = encode("user", "some rules text");
        for cut in 0..full.len() {
            let err = decode(&full[..cut]);
            assert!(err.is_err(), "truncation at {cut} accepted");
        }
        assert!(decode(&full).is_ok());
        // Trailing garbage is rejected too (a concatenated write).
        let mut extended = full.clone();
        extended.push(0);
        assert!(decode(&extended).is_err());
    }
}
