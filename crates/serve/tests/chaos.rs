//! Seeded chaos suite (ISSUE 5 acceptance): with the fault-injection
//! feature on, a deterministic fault schedule — worker panics, a
//! corrupted profile snapshot, a stalled half-open client — must leave
//! the server serving. Surviving requests stay bit-identical to serial
//! `Engine::search`, panicked requests surface as typed `internal`
//! errors, corrupted-profile users degrade to unpersonalized answers
//! stamped `degraded: true`, and the metrics identities hold throughout.
#![cfg(feature = "fault-injection")]

use pimento::profile::{parse_profile, PrefRelRegistry, UserProfile};
use pimento::{Engine, SearchOptions};
use pimento_serve::faults::{self, FaultPlan};
use pimento_serve::json::Value;
use pimento_serve::{Client, ClientError, ProfileStore, ServeConfig, ServeError, Server};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once};
use std::thread;

const FIG2_RULES: &str = include_str!("../../../profiles/fig2.rules");

const CARS_QUERY: &str = r#"//car[ftcontains(., "good condition") and ./price < 2000]"#;

/// A second query shape so cache state from `CARS_QUERY` cannot mask a
/// fault installed mid-test.
const MILEAGE_QUERY: &str = r#"//car[ftcontains(., "low mileage")]"#;

/// The fault registry is process-global: chaos tests must not overlap.
/// The guard also clears the installed plan on drop, so a failing
/// assertion cannot leak a plan into the next test.
struct FaultSession(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultSession {
    fn install(plan: FaultPlan) -> FaultSession {
        static LOCK: Mutex<()> = Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        quiet_injected_panics();
        faults::install(plan);
        FaultSession(guard)
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        faults::clear();
    }
}

/// Injected panics are the point of this suite; their default-hook
/// backtraces would bury real failures. Everything else still prints.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.contains("fault injected") {
                default(info);
            }
        }));
    });
}

fn cars_engine() -> Arc<Engine> {
    let mut docs = vec![pimento_datagen::paper_figure1().to_string()];
    docs.push(pimento_datagen::generate_dealer(7, 120));
    docs.push(pimento_datagen::generate_dealer(13, 120));
    Arc::new(Engine::from_xml_docs(&docs).expect("corpus parses"))
}

fn start(
    engine: Arc<Engine>,
    cfg: ServeConfig,
) -> (SocketAddr, thread::JoinHandle<Result<Value, ServeError>>) {
    let server = Server::bind(engine, cfg).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn fingerprint(hits: &Value) -> Vec<(u64, u64, u64, u64)> {
    hits.as_arr()
        .expect("hits array")
        .iter()
        .map(|h| {
            (
                h.get("doc").and_then(Value::as_u64).expect("doc"),
                h.get("node").and_then(Value::as_u64).expect("node"),
                h.get("s").and_then(Value::as_f64).expect("s").to_bits(),
                h.get("k").and_then(Value::as_f64).expect("k").to_bits(),
            )
        })
        .collect()
}

fn serial_fingerprint(
    engine: &Engine,
    profile: &UserProfile,
    query: &str,
    k: usize,
) -> Vec<(u64, u64, u64, u64)> {
    let results = engine
        .search(query, profile, &SearchOptions::top(k))
        .expect("serial search");
    results
        .hits
        .iter()
        .map(|h| {
            (
                u64::from(h.elem.doc.0),
                u64::from(h.elem.node.0),
                h.s.to_bits(),
                h.k.to_bits(),
            )
        })
        .collect()
}

fn assert_stats_identities(stats: &Value) {
    let g = |k: &str| {
        stats
            .get(k)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("counter {k}"))
    };
    assert_eq!(
        g("requests"),
        g("responses_ok") + g("responses_err") + g("rejected_overload") + g("rejected_deadline"),
        "every decoded request answered exactly once: {stats:?}"
    );
    let cache = stats.get("cache").expect("cache block");
    let c = |k: &str| {
        cache
            .get(k)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("cache {k}"))
    };
    assert_eq!(
        c("lookups"),
        c("hits") + c("misses"),
        "cache identity: {stats:?}"
    );
}

/// Retry a search past injected worker panics: the schedule may hit any
/// request, including setup/verification ones. Panics must arrive as
/// typed `internal` errors — anything else fails the test immediately.
fn search_riding_out_panics(
    c: &mut Client,
    user: Option<&str>,
    query: &str,
    panics_seen: &AtomicUsize,
) -> Value {
    for _ in 0..32 {
        match c.search(user, query, 10) {
            Ok(body) => return body,
            Err(ClientError::Server { kind, msg }) if kind == "internal" => {
                assert!(
                    msg.contains("panicked"),
                    "internal error names the panic: {msg}"
                );
                panics_seen.fetch_add(1, Ordering::SeqCst);
            }
            Err(e) => panic!("unexpected failure under chaos: {e}"),
        }
    }
    panic!("32 consecutive injected panics — schedule is implausibly hostile");
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pimento-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The acceptance scenario: panic 1-in-8 worker jobs, corrupt one
/// persisted profile snapshot, stall one client mid-frame — and demand
/// the server keeps its contract on every axis at once.
#[test]
fn seeded_chaos_schedule_leaves_the_server_serving() {
    let session = FaultSession::install(FaultPlan::new(0x00C0_FFEE).every("serve.worker.job", 8));

    // Two persisted profiles; flip one byte inside the victim's rules
    // region (the header checksum stays valid, so recovery must still
    // identify the user and degrade rather than drop the session).
    let dir = temp_dir("acceptance");
    let store = ProfileStore::open(&dir).expect("open store");
    store.persist("good", FIG2_RULES).expect("persist good");
    let victim_path = store.persist("victim", FIG2_RULES).expect("persist victim");
    let mut bytes = std::fs::read(&victim_path).expect("read victim snapshot");
    let len = bytes.len();
    bytes[len - 8] ^= 0xFF;
    std::fs::write(&victim_path, &bytes).expect("corrupt victim snapshot");

    let engine = cars_engine();
    let cfg = ServeConfig {
        workers: 2,
        profile_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(Arc::clone(&engine), cfg);

    // Stalled client: half a frame header, then silence. It may occupy a
    // reader thread for the whole test; it must not wedge anything.
    let stalled = TcpStream::connect(addr).expect("stall connect");
    {
        use std::io::Write;
        let mut s = &stalled;
        s.write_all(&[0x00, 0x01]).expect("half a header");
    }

    let profile = parse_profile(FIG2_RULES, &PrefRelRegistry::new()).expect("fig2 parses");
    let expected_personalized = serial_fingerprint(&engine, &profile, CARS_QUERY, 10);
    let expected_plain = serial_fingerprint(&engine, &UserProfile::new(), CARS_QUERY, 10);
    assert_ne!(
        expected_personalized, expected_plain,
        "personalization changes the ranking"
    );

    let panics_seen = Arc::new(AtomicUsize::new(0));

    // Recovery contract, checked through the wire: the intact profile
    // personalizes, the corrupted one serves unpersonalized answers
    // stamped with a reason.
    let mut c = Client::connect(addr).expect("connect");
    let body = search_riding_out_panics(&mut c, Some("good"), CARS_QUERY, &panics_seen);
    assert_eq!(
        fingerprint(body.get("hits").expect("hits")),
        expected_personalized
    );
    assert_eq!(
        body.get("degraded"),
        None,
        "intact profile is not degraded: {body:?}"
    );

    let body = search_riding_out_panics(&mut c, Some("victim"), CARS_QUERY, &panics_seen);
    assert_eq!(
        body.get("degraded").and_then(Value::as_bool),
        Some(true),
        "corrupted profile degrades: {body:?}"
    );
    let reason = body
        .get("degraded_reason")
        .and_then(Value::as_str)
        .expect("degraded_reason");
    assert!(
        reason.contains("corrupt"),
        "reason names the corruption: {reason}"
    );
    assert_eq!(
        fingerprint(body.get("hits").expect("hits")),
        expected_plain,
        "degraded answers are bit-identical to serial unpersonalized search"
    );

    // Concurrent load under the panic schedule.
    let clients: Vec<_> = (0..4)
        .map(|i| {
            let expected_personalized = expected_personalized.clone();
            let expected_plain = expected_plain.clone();
            let panics_seen = Arc::clone(&panics_seen);
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for round in 0..12 {
                    let user = match (i + round) % 3 {
                        0 => Some("good"),
                        1 => Some("victim"),
                        _ => None,
                    };
                    let body = search_riding_out_panics(&mut c, user, CARS_QUERY, &panics_seen);
                    let expected = if user == Some("good") {
                        &expected_personalized
                    } else {
                        &expected_plain
                    };
                    assert_eq!(
                        &fingerprint(body.get("hits").expect("hits")),
                        expected,
                        "survivors stay bit-identical under chaos (user {user:?})"
                    );
                    let degraded = body.get("degraded").and_then(Value::as_bool);
                    assert_eq!(degraded, (user == Some("victim")).then_some(true));
                }
            })
        })
        .collect();
    for t in clients {
        t.join().expect("client thread");
    }

    let stats = c.shutdown().expect("shutdown");
    drop(stalled);
    let final_stats = handle.join().expect("server thread").expect("server ran");

    for s in [&stats, &final_stats] {
        assert_stats_identities(s);
        let g = |k: &str| {
            s.get(k)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("counter {k}"))
        };
        assert_eq!(
            g("panics") as usize,
            panics_seen.load(Ordering::SeqCst),
            "every injected panic surfaced as exactly one typed internal error: {s:?}"
        );
        assert!(g("panics") > 0, "the 1-in-8 schedule actually fired: {s:?}");
        assert!(g("degraded") >= 1, "victim searches were stamped: {s:?}");
        let store_stats = s.get("store").expect("store block");
        let sc = |k: &str| {
            store_stats
                .get(k)
                .and_then(Value::as_u64)
                .expect("store counter")
        };
        assert_eq!(
            sc("profiles_recovered"),
            1,
            "intact profile recovered: {s:?}"
        );
        assert_eq!(
            sc("profiles_quarantined"),
            1,
            "corrupt snapshot quarantined: {s:?}"
        );
    }
    assert_eq!(
        faults::fired("serve.worker.job") as usize,
        panics_seen.load(Ordering::SeqCst)
    );

    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Durability faults must surface in the register reply and the store
/// metrics — and never take down the in-memory session.
#[test]
fn store_fsync_faults_mark_the_profile_unpersisted() {
    let session = FaultSession::install(FaultPlan::new(7).always("serve.store.fsync"));

    let dir = temp_dir("fsync");
    let engine = cars_engine();
    let cfg = ServeConfig {
        profile_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(Arc::clone(&engine), cfg);

    let mut c = Client::connect(addr).expect("connect");
    let body = c
        .register_profile("u1", FIG2_RULES)
        .expect("register succeeds in memory");
    assert_eq!(
        body.get("persisted").and_then(Value::as_bool),
        Some(false),
        "{body:?}"
    );
    let err = body
        .get("persist_error")
        .and_then(Value::as_str)
        .expect("persist_error");
    assert!(
        err.contains("fault injected"),
        "error names the fault: {err}"
    );

    // The session exists regardless: searches personalize from memory.
    let profile = parse_profile(FIG2_RULES, &PrefRelRegistry::new()).expect("fig2 parses");
    let body = c.search(Some("u1"), CARS_QUERY, 10).expect("search");
    assert_eq!(
        fingerprint(body.get("hits").expect("hits")),
        serial_fingerprint(&engine, &profile, CARS_QUERY, 10)
    );

    // With the fault lifted, the same registration durably persists.
    faults::clear();
    let body = c.register_profile("u1", FIG2_RULES).expect("re-register");
    assert_eq!(
        body.get("persisted").and_then(Value::as_bool),
        Some(true),
        "{body:?}"
    );

    let stats = c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
    assert_stats_identities(&stats);
    let store_stats = stats.get("store").expect("store block");
    assert_eq!(
        store_stats.get("errors").and_then(Value::as_u64),
        Some(1),
        "{stats:?}"
    );

    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Worker-pool self-healing: panics outside any request handler kill the
/// loop, the respawn wrapper re-enters it, and no request is lost — the
/// loop fault fires before a job is popped, so nothing is in flight.
#[test]
fn worker_loop_panics_respawn_without_losing_requests() {
    let session = FaultSession::install(FaultPlan::new(11).every("serve.worker.loop", 2));

    let engine = cars_engine();
    let cfg = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(Arc::clone(&engine), cfg);

    let expected = serial_fingerprint(&engine, &UserProfile::new(), CARS_QUERY, 10);
    let mut c = Client::connect(addr).expect("connect");
    for _ in 0..12 {
        let body = c
            .search(None, CARS_QUERY, 10)
            .expect("search survives loop panics");
        assert_eq!(fingerprint(body.get("hits").expect("hits")), expected);
    }

    let stats = c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
    assert_stats_identities(&stats);
    let respawns = stats
        .get("worker_respawns")
        .and_then(Value::as_u64)
        .expect("worker_respawns");
    assert!(
        respawns >= 1,
        "the loop fault fired and the pool healed: {stats:?}"
    );
    assert_eq!(
        stats.get("panics").and_then(Value::as_u64),
        Some(0),
        "no request-path panics"
    );

    drop(session);
}

/// Scoping-enforcement failure at prepare time (the paper's conflict
/// path) falls back to unpersonalized evaluation instead of erroring.
#[test]
fn scoping_faults_degrade_to_unpersonalized_answers() {
    let engine = cars_engine();
    let (addr, handle) = start(Arc::clone(&engine), ServeConfig::default());

    let mut c = Client::connect(addr).expect("connect");
    // Register BEFORE the fault: registration validates the profile
    // through the same scoping machinery, and the fault under test is a
    // prepare-time one.
    c.register_profile("u1", FIG2_RULES).expect("register");

    let session = FaultSession::install(FaultPlan::new(23).always("profile.enforce_scoping"));

    // A query not yet in the compiled cache, so prepare must run — and
    // hit the fault — rather than reuse a pre-fault plan.
    let body = c.search(Some("u1"), MILEAGE_QUERY, 10).expect("search");
    assert_eq!(
        body.get("degraded").and_then(Value::as_bool),
        Some(true),
        "{body:?}"
    );
    let reason = body
        .get("degraded_reason")
        .and_then(Value::as_str)
        .expect("degraded_reason");
    assert!(
        reason.contains("not applicable"),
        "reason explains the fallback: {reason}"
    );
    let expected_plain = serial_fingerprint(&engine, &UserProfile::new(), MILEAGE_QUERY, 10);
    assert_eq!(fingerprint(body.get("hits").expect("hits")), expected_plain);

    // Anonymous queries carry an empty profile: the (gated) fault never
    // fires and the answer is identical but unstamped.
    let body = c.search(None, MILEAGE_QUERY, 10).expect("anonymous search");
    assert_eq!(body.get("degraded"), None, "{body:?}");
    assert_eq!(fingerprint(body.get("hits").expect("hits")), expected_plain);

    let stats = c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
    assert_stats_identities(&stats);
    assert!(
        stats
            .get("degraded")
            .and_then(Value::as_u64)
            .expect("degraded")
            >= 1,
        "degradations are counted: {stats:?}"
    );

    drop(session);
}

// ---------------------------------------------------------------------------
// Write-path chaos (ISSUE 9 acceptance): under seeded persist faults,
// writer panics, and a crash between durable commit and publish, queries
// against *published* documents stay bit-identical to a monolithic
// rebuild, no served segment is ever corrupt, and a restart recovers the
// last published generation.
// ---------------------------------------------------------------------------

const ZEPHYR_DOC: &str = "<dealer><car><model>Zephyr</model><price>1500</price>\
     <description>rare zephyr roadster in good condition</description></car></dealer>";
const ZEPHYR_QUERY: &str = r#"//car[ftcontains(., "zephyr")]"#;

fn cars_docs() -> Vec<String> {
    vec![
        pimento_datagen::paper_figure1().to_string(),
        pimento_datagen::generate_dealer(7, 120),
        pimento_datagen::generate_dealer(13, 120),
    ]
}

/// Every persist-path fault (write, fsync, rename) fails the write with a
/// typed error, leaves the served corpus bit-identical to a monolithic
/// rebuild of the pre-write documents, and clears cleanly: the retry
/// after the fault lifts publishes the exact same generation it would
/// have the first time.
#[test]
fn ingest_persist_faults_leave_the_served_corpus_unchanged() {
    let session = FaultSession::install(FaultPlan::new(3));

    let dir = temp_dir("ingest-persist");
    let docs = cars_docs();
    let engine = Arc::new(Engine::from_xml_docs(&docs).expect("corpus parses"));
    let cfg = ServeConfig {
        data_dir: Some(dir.clone()),
        merge_threshold: 0,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(Arc::clone(&engine), cfg);
    let mut c = Client::connect(addr).expect("connect");
    let expected_base = serial_fingerprint(&engine, &UserProfile::new(), CARS_QUERY, 10);

    for point in [
        "ingest.persist.write",
        "ingest.persist.fsync",
        "ingest.persist.rename",
    ] {
        faults::install(FaultPlan::new(3).always(point));
        let err = c.add_documents(&[ZEPHYR_DOC.to_string()]);
        match err {
            Err(ClientError::Server { kind, msg }) => {
                assert_eq!(kind, "internal", "{point}: {msg}");
                assert!(msg.contains(point), "{point}: {msg}");
            }
            other => panic!("{point}: expected a typed error, got {other:?}"),
        }
        // The served corpus never saw the failed write.
        let body = c.search(None, CARS_QUERY, 10).expect("search");
        assert_eq!(fingerprint(body.get("hits").expect("hits")), expected_base);
        let body = c.search(None, ZEPHYR_QUERY, 5).expect("search");
        assert_eq!(
            body.get("hits").and_then(Value::as_arr).map(<[Value]>::len),
            Some(0),
            "{point}: failed add must not publish"
        );
    }
    faults::clear();

    // With the faults lifted the same batch goes through, and the live
    // answer matches a monolithic rebuild of base + new documents.
    let added = c
        .add_documents(&[ZEPHYR_DOC.to_string()])
        .expect("post-fault add");
    assert_eq!(added.get("generation").and_then(Value::as_u64), Some(1));
    let mut all_docs = docs.clone();
    all_docs.push(ZEPHYR_DOC.to_string());
    let monolithic = Engine::from_xml_docs(&all_docs).expect("monolithic rebuild");
    let body = c.search(None, ZEPHYR_QUERY, 5).expect("search");
    assert_eq!(
        fingerprint(body.get("hits").expect("hits")),
        serial_fingerprint(&monolithic, &UserProfile::new(), ZEPHYR_QUERY, 5)
    );

    let stats = c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
    assert_stats_identities(&stats);
    let ingest = stats.get("ingest").expect("ingest block");
    assert_eq!(
        ingest.get("errors").and_then(Value::as_u64),
        Some(3),
        "{stats:?}"
    );
    assert_eq!(ingest.get("generation").and_then(Value::as_u64), Some(1));

    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panic inside the single-writer pipeline surfaces as one typed
/// `internal` error, poisons nothing observable, and the very next write
/// on the same connection succeeds and is served.
#[test]
fn ingest_writer_panic_is_isolated_and_the_next_write_succeeds() {
    let session = FaultSession::install(FaultPlan::new(5).at("ingest.writer.panic", 1));

    let dir = temp_dir("ingest-panic");
    let engine = Arc::new(Engine::from_xml_docs(&cars_docs()).expect("corpus parses"));
    let cfg = ServeConfig {
        data_dir: Some(dir.clone()),
        merge_threshold: 0,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(Arc::clone(&engine), cfg);
    let mut c = Client::connect(addr).expect("connect");

    let err = c.add_documents(&[ZEPHYR_DOC.to_string()]);
    match err {
        Err(ClientError::Server { kind, msg }) => {
            assert_eq!(kind, "internal", "{msg}");
            assert!(msg.contains("panicked"), "{msg}");
        }
        other => panic!("expected the injected panic, got {other:?}"),
    }

    // Same connection, same batch: the writer lock recovered.
    let added = c
        .add_documents(&[ZEPHYR_DOC.to_string()])
        .expect("write after writer panic");
    assert_eq!(added.get("generation").and_then(Value::as_u64), Some(1));
    let body = c.search(None, ZEPHYR_QUERY, 5).expect("search");
    assert_eq!(
        body.get("hits").and_then(Value::as_arr).map(<[Value]>::len),
        Some(1),
        "{body:?}"
    );

    let stats = c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
    assert_stats_identities(&stats);
    assert_eq!(stats.get("panics").and_then(Value::as_u64), Some(1));

    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash between durable commit and in-memory publish: the client gets an
/// error and the running server keeps serving the old generation — but
/// the commit is durable, so a restart recovers the newer generation,
/// bit-identical to a monolithic rebuild that includes the batch.
#[test]
fn publish_crash_recovers_the_committed_generation_on_restart() {
    let session = FaultSession::install(FaultPlan::new(9).always("ingest.publish.crash"));

    let dir = temp_dir("ingest-crash");
    let docs = cars_docs();
    let engine = Arc::new(Engine::from_xml_docs(&docs).expect("corpus parses"));
    let cfg = ServeConfig {
        data_dir: Some(dir.clone()),
        merge_threshold: 0,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(Arc::clone(&engine), cfg.clone());
    let mut c = Client::connect(addr).expect("connect");

    let err = c.add_documents(&[ZEPHYR_DOC.to_string()]);
    assert!(
        matches!(&err, Err(ClientError::Server { kind, msg })
            if kind == "internal" && msg.contains("ingest.publish.crash")),
        "{err:?}"
    );
    // The running server still serves generation 0: the batch was never
    // acknowledged and never published.
    let body = c.search(None, ZEPHYR_QUERY, 5).expect("search");
    assert_eq!(
        body.get("hits").and_then(Value::as_arr).map(<[Value]>::len),
        Some(0)
    );
    let stats = c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
    assert_eq!(
        stats
            .get("ingest")
            .and_then(|i| i.get("generation"))
            .and_then(Value::as_u64),
        Some(0),
        "{stats:?}"
    );
    faults::clear();

    // Restart from the data dir: the committed-but-unacked generation 1
    // is a completed durable write and comes back whole.
    let recovered = Arc::new(Engine::from_sharded_dir(&dir).expect("recover"));
    assert_eq!(recovered.generation(), 1, "last committed generation");
    let mut all_docs = docs.clone();
    all_docs.push(ZEPHYR_DOC.to_string());
    let monolithic = Engine::from_xml_docs(&all_docs).expect("monolithic rebuild");
    let (addr, handle) = start(recovered, cfg);
    let mut c = Client::connect(addr).expect("connect");
    for query in [CARS_QUERY, ZEPHYR_QUERY] {
        let body = c.search(None, query, 10).expect("post-recovery search");
        assert_eq!(
            fingerprint(body.get("hits").expect("hits")),
            serial_fingerprint(&monolithic, &UserProfile::new(), query, 10),
            "recovered corpus is bit-identical to the monolithic rebuild ({query})"
        );
    }
    c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");

    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}
