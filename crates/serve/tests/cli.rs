//! Process-level tests of the `pimento` CLI binary.

use std::io::Write;
use std::process::Command;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pimento-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const CARS: &str = r#"<dealer>
<car><description>good condition, best bid, NYC</description><price>500</price></car>
<car><description>good condition, garaged</description><price>900</price><color>red</color></car>
<car><description>rusty</description><price>100</price></car>
</dealer>"#;

const RULES: &str = r#"
pi1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" -> x < y
pi5: x.tag = car & y.tag = car & ftcontains(x, "NYC") -> x < y {weight 2}
"#;

fn pimento() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pimento"))
}

#[test]
fn cli_searches_with_profile() {
    let docs = write_temp("cars.xml", CARS);
    let rules = write_temp("profile.rules", RULES);
    let out = pimento()
        .args(["--docs"])
        .arg(&docs)
        .args(["--query", r#"//car[ftcontains(., "good condition")]"#])
        .args(["--profile"])
        .arg(&rules)
        .args(["--k", "5", "--explain", "--analyze"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("#1"), "{stdout}");
    assert!(stdout.contains("NYC"), "NYC car first: {stdout}");
    assert!(stdout.contains("plan:"), "{stdout}");
    assert!(stdout.contains("QueryEval"), "{stdout}");
    assert!(stdout.contains("collection: 1 document(s)"), "{stdout}");
}

#[test]
fn cli_winnow_mode() {
    let docs = write_temp("cars2.xml", CARS);
    let rules = write_temp("profile2.rules", RULES);
    let out = pimento()
        .args(["--docs"])
        .arg(&docs)
        .args(["--query", "//car"])
        .args(["--profile"])
        .arg(&rules)
        .args(["--winnow", "--k", "5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Winnow keeps the red car (the only ≺_V-maximal under pi1 among
    // colored answers) plus incomparable colorless ones.
    assert!(stdout.contains("#1"), "{stdout}");
}

#[test]
fn cli_rejects_bad_inputs() {
    // Missing required args → usage exit code 2.
    let out = pimento().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    // Unreadable file → failure.
    let out = pimento()
        .args(["--docs", "/nonexistent/file.xml", "--query", "//a"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    // Broken query → failure with message.
    let docs = write_temp("cars3.xml", CARS);
    let out = pimento()
        .args(["--docs"])
        .arg(&docs)
        .args(["--query", "//car["])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("query error"));
    // Broken rules file → failure naming the line.
    let bad_rules = write_temp("bad.rules", "nonsense rule here\n");
    let out = pimento()
        .args(["--docs"])
        .arg(&docs)
        .args(["--query", "//car", "--profile"])
        .arg(&bad_rules)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
}
