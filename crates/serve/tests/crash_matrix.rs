//! Exhaustive crash-point enumeration for profile persistence
//! (DESIGN.md §17): the serve-side twin of the ingest crash matrix.
//!
//! A reference run of a fixed persistence script (alice v1 → alice v2 →
//! bob) on a clean `SimVfs` counts every mutating filesystem operation;
//! then, for every crash point and every reboot style, the script
//! re-runs with that operation failing, reboots, and recovery must see
//! exactly one of the committed checkpoints — never a torn profile,
//! never a lost committed write, never a panic.

#![cfg(feature = "fault-injection")]

use pimento_serve::faults::vfs::{CrashStyle, SimVfs, Vfs};
use pimento_serve::{ProfileStore, Recovered, StoreError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const STEPS: usize = 3;

const ALICE_V1: &str = "pi1: x.tag = car -> x < y\n";
const ALICE_V2: &str = "pi1: x.tag = car -> x < y\npi2: x.tag = ad -> y < x\n";
const BOB: &str = "pi9: x.tag = apartment -> x < y\n";

/// The recovered state as a canonical, comparable value. Honest-fsync
/// crashes must never surface a corrupt file, so any quarantine outcome
/// fails the harness on the spot.
fn recovered_state(store: &ProfileStore) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = store
        .recover()
        .expect("recover scans")
        .into_iter()
        .map(|r| match r {
            Recovered::Profile { user, rules } => (user, rules),
            corrupt => panic!("honest fsyncs produced a torn profile: {corrupt:?}"),
        })
        .collect();
    out.sort();
    out
}

/// One full run of the persistence script, stopping at the first
/// failure. Returns how many persists committed (0..=STEPS); every
/// failure must be a typed [`StoreError`].
fn run_script(vfs: &Arc<SimVfs>, dir: &Path, mut on_ok: impl FnMut(usize)) -> usize {
    let Ok(store) = ProfileStore::open_with(vfs.clone() as Arc<dyn Vfs>, dir) else {
        return 0;
    };
    let script: [(&str, &str); STEPS] =
        [("alice", ALICE_V1), ("alice", ALICE_V2), ("bob", BOB)];
    for (i, (user, rules)) in script.iter().enumerate() {
        match store.persist(user, rules) {
            Ok(_) => on_ok(i + 1),
            Err(e @ StoreError::DiskFull { .. }) => {
                panic!("crash harness injected no ENOSPC: {e}")
            }
            Err(_) => return i,
        }
    }
    STEPS
}

#[test]
fn crash_at_every_point_recovers_a_committed_profile_set() {
    let dir = PathBuf::from("/sim/profiles");

    // Counting pass: a clean run with the exact op sequence the crash
    // runs will replay — nothing extra may touch the vfs here.
    let vfs = Arc::new(SimVfs::new(13));
    let m = run_script(&vfs, &dir, |_| {});
    assert_eq!(m, STEPS, "clean run must commit every persist");
    let total = vfs.mutations();
    assert!(total > 10, "script too small to be interesting: {total} ops");

    // Checkpoint pass (op numbering is irrelevant on a run that never
    // crashes): C[0] (empty) .. C[3], recorded via a probe store whose
    // recovery scan is read-only on a clean directory.
    let vfs = Arc::new(SimVfs::new(13));
    let mut checkpoints: Vec<Vec<(String, String)>> = vec![Vec::new()];
    let probe = ProfileStore::open_with(vfs.clone() as Arc<dyn Vfs>, &dir).expect("open");
    let m = run_script(&vfs, &dir, |_| {
        checkpoints.push(recovered_state(&probe));
    });
    assert_eq!(m, STEPS);
    assert_eq!(checkpoints[STEPS].len(), 2, "alice + bob");

    for style in [CrashStyle::Lose, CrashStyle::Keep, CrashStyle::Torn] {
        for k in 1..=total {
            let vfs = Arc::new(SimVfs::new(13));
            vfs.set_crash_at(Some(k));
            let m = run_script(&vfs, &dir, |_| {});
            assert!(vfs.crashed(), "{style:?}/{k}: crash point never fired");

            vfs.reboot(style);
            let store = ProfileStore::open_with(vfs.clone() as Arc<dyn Vfs>, &dir)
                .expect("reopen after reboot");
            let state = recovered_state(&store);
            let at_prev = state == checkpoints[m];
            let at_next = m < STEPS && state == checkpoints[m + 1];
            assert!(
                at_prev || at_next,
                "{style:?}/{k}: recovered a third state after {m} committed \
                 persists:\n{state:#?}"
            );

            // Stale temp files from the interrupted persist must be
            // invisible to recovery (asserted above) and flagged for
            // cleanup only — never promoted to profiles.
            for path in vfs.list(&dir).expect("list") {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                assert!(
                    name.ends_with(".profile") || name.ends_with(".tmp"),
                    "{style:?}/{k}: unexpected artifact {name}"
                );
            }
        }
    }
}

/// ENOSPC survival for profiles: typed error, temp cleaned up, every
/// previously committed profile still recoverable, retry succeeds.
#[test]
fn disk_full_profile_persist_is_retryable() {
    let dir = PathBuf::from("/sim/profiles-enospc");
    let vfs = Arc::new(SimVfs::new(17));
    let store = ProfileStore::open_with(vfs.clone() as Arc<dyn Vfs>, &dir).expect("open");
    store.persist("alice", ALICE_V1).expect("first persist");
    let committed = recovered_state(&store);

    vfs.set_budget(Some(4));
    let err = store.persist("bob", BOB).expect_err("disk is full");
    assert!(matches!(err, StoreError::DiskFull { .. }), "typed: {err}");
    assert_eq!(recovered_state(&store), committed, "alice survives");
    let tmps = vfs
        .list(&dir)
        .expect("list")
        .into_iter()
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("tmp"))
        .count();
    assert_eq!(tmps, 0, "temp cleaned up on a full disk");

    vfs.set_budget(None);
    store.persist("bob", BOB).expect("retry succeeds");
    assert_eq!(recovered_state(&store).len(), 2);
}
