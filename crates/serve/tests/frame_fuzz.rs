//! Adversarial frame fuzzing (ISSUE 5 satellite): the wire layer must
//! turn hostile bytes into typed `bad_request` errors — never a panic,
//! never a wedged server. Deterministic hostile cases cover each decode
//! stage (framing, UTF-8, JSON, command shape); the property tests throw
//! arbitrary payloads at `read_frame` and at a live server.

use pimento_serve::json::Value;
use pimento_serve::protocol::{read_frame, write_frame};
use pimento_serve::{Client, ServeConfig, Server};
use proptest::prelude::*;
use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const CARS_QUERY: &str = r#"//car[ftcontains(., "good condition") and ./price < 2000]"#;

/// One long-lived server shared by every case in this file. It is never
/// shut down (the test process exits under it), which is exactly the
/// posture under test: hostile connections must not require a restart.
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let docs = vec![pimento_datagen::paper_figure1().to_string()];
        let engine = Arc::new(pimento::Engine::from_xml_docs(&docs).expect("corpus parses"));
        let cfg = ServeConfig {
            max_frame_bytes: 64 * 1024,
            ..ServeConfig::default()
        };
        let server = Server::bind(engine, cfg).expect("bind");
        let addr = server.local_addr();
        std::thread::spawn(move || server.run());
        addr
    })
}

fn raw_connect() -> TcpStream {
    let s = TcpStream::connect(server_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    s.set_write_timeout(Some(Duration::from_secs(10)))
        .expect("write timeout");
    s
}

/// Send one framed payload and decode the single reply frame.
fn roundtrip(stream: &mut TcpStream, payload: &[u8]) -> Value {
    write_frame(stream, payload).expect("send frame");
    let reply = read_frame(stream, usize::MAX)
        .expect("read reply")
        .expect("server replied");
    Value::parse(std::str::from_utf8(&reply).expect("reply is UTF-8")).expect("reply is JSON")
}

fn assert_err_kind(reply: &Value, kind: &str) {
    let err = reply
        .get("err")
        .unwrap_or_else(|| panic!("expected err reply, got {reply:?}"));
    assert_eq!(
        err.get("kind").and_then(Value::as_str),
        Some(kind),
        "reply: {reply:?}"
    );
}

/// The server must still answer a well-formed search — proof the hostile
/// traffic left it serving, not merely alive.
fn assert_still_serving() {
    let mut c = Client::connect(server_addr()).expect("connect");
    let body = c
        .search(None, CARS_QUERY, 10)
        .expect("search after hostile traffic");
    assert!(
        !body
            .get("hits")
            .and_then(Value::as_arr)
            .expect("hits")
            .is_empty(),
        "paper corpus yields hits"
    );
}

#[test]
fn hostile_frames_get_typed_errors_on_a_surviving_connection() {
    let mut s = raw_connect();
    // Every decode stage, one hostile case each; all on ONE connection —
    // a bad_request must leave the connection usable.
    assert_err_kind(&roundtrip(&mut s, b""), "bad_request"); // empty payload
    assert_err_kind(&roundtrip(&mut s, &[0xFF, 0xFE, 0x80]), "bad_request"); // not UTF-8
    assert_err_kind(&roundtrip(&mut s, b"not json"), "bad_request"); // not JSON
    assert_err_kind(&roundtrip(&mut s, b"[1,2,3]"), "bad_request"); // not an object
    assert_err_kind(&roundtrip(&mut s, b"{}"), "bad_request"); // no cmd
    assert_err_kind(
        &roundtrip(&mut s, br#"{"cmd":"frobnicate"}"#),
        "bad_request",
    );
    assert_err_kind(&roundtrip(&mut s, br#"{"cmd":"search"}"#), "bad_request"); // no query
                                                                                // The connection survived all of it: a valid request still works.
    let ok = roundtrip(
        &mut s,
        format!(r#"{{"cmd":"search","query":{:?}}}"#, CARS_QUERY).as_bytes(),
    );
    assert!(
        ok.get("ok").is_some(),
        "valid request after hostile ones: {ok:?}"
    );
}

#[test]
fn oversized_declared_length_is_rejected_then_closed() {
    let mut s = raw_connect();
    // A 3 GiB declared length: the server must reply bad_request without
    // allocating, then close (the stream can't be resynchronized).
    s.write_all(&(3u32 << 30).to_be_bytes())
        .expect("send header");
    let reply = read_frame(&mut s, usize::MAX)
        .expect("read reply")
        .expect("server replied");
    let reply = Value::parse(std::str::from_utf8(&reply).expect("utf8")).expect("json");
    assert_err_kind(&reply, "bad_request");
    assert!(
        read_frame(&mut s, usize::MAX)
            .expect("clean close")
            .is_none(),
        "connection closes after an unresynchronizable frame"
    );
    assert_still_serving();
}

#[test]
fn truncated_header_and_truncated_payload_are_dropped_quietly() {
    // Half a header, then hang up.
    let mut s = raw_connect();
    s.write_all(&[0x00, 0x00]).expect("partial header");
    drop(s);
    // A full header promising more payload than ever arrives.
    let mut s = raw_connect();
    s.write_all(&64u32.to_be_bytes()).expect("header");
    s.write_all(b"only sixteen byte").expect("partial payload");
    drop(s);
    assert_still_serving();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The frame decoder itself never panics on arbitrary bytes — every
    /// input is `Ok(frame)`, `Ok(None)` (clean EOF), or a typed error.
    #[test]
    fn read_frame_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_frame(&mut Cursor::new(&bytes[..]), 1024);
    }

    /// A live server answers every correctly-framed arbitrary payload
    /// with exactly one reply frame (ok or typed err) and keeps serving.
    #[test]
    fn arbitrary_payloads_always_get_exactly_one_reply(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut s = raw_connect();
        let reply = roundtrip(&mut s, &payload);
        prop_assert!(
            reply.get("ok").is_some() || reply.get("err").is_some(),
            "reply is a protocol envelope: {reply:?}"
        );
    }
}

/// Run after the properties in source order, but test order is not
/// guaranteed — `assert_still_serving` is its own proof regardless.
#[test]
fn server_survives_the_whole_fuzzing_gauntlet() {
    // A few raw writes that exercise the reader's ticking path: bytes
    // dribbled one at a time across the header boundary.
    let mut s = raw_connect();
    let frame = {
        let mut f = Vec::new();
        write_frame(&mut f, br#"{"cmd":"stats"}"#).expect("encode");
        f
    };
    for b in &frame {
        s.write_all(std::slice::from_ref(b)).expect("dribble");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut reply = Vec::new();
    let mut buf = [0u8; 256];
    // Read the single stats reply (length-prefixed, small).
    let n = s.read(&mut buf).expect("reply bytes");
    reply.extend_from_slice(&buf[..n]);
    assert!(n >= 4, "got a frame header back");
    assert_still_serving();
}
