//! Online-scrubber chaos suite (DESIGN.md §17): every durable artifact
//! the server owns is damaged with a single bit flip, and the scrubber
//! must *detect* it (CRC32 catches all single-bit errors), *quarantine*
//! the artifact, *repair* from the last good state, and walk health
//! through `ok → degraded → ok` — all without a panic and without the
//! damaged bytes ever being served.

#![cfg(feature = "fault-injection")]

use pimento::profile::UserProfile;
use pimento::{Engine, SearchOptions};
use pimento_index::{inspect, Collection};
use pimento_ingest::{IngestConfig, Ingestor, LiveEngine};
use pimento_serve::faults::vfs::{QuarantineCap, SimVfs, Vfs};
use pimento_serve::{
    HealthLevel, Metrics, ProfileRegistry, ProfileStore, Scrubber,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn doc(i: usize) -> String {
    format!("<doc><t>word{i} shared</t></doc>")
}

/// Bit-exact fingerprint (same discipline as the crash matrix): two
/// engines with equal fingerprints are indistinguishable to a caller.
fn fingerprint(engine: &Engine) -> Vec<String> {
    let mut out = vec![
        format!("generation {}", engine.generation()),
        format!("docs {}", engine.num_docs()),
    ];
    let results = engine
        .search("//doc", &UserProfile::new(), &SearchOptions::top(64))
        .expect("fingerprint query");
    for hit in &results.hits {
        out.push(format!(
            "{:?} s={:016x} k={:016x} {}",
            hit.elem,
            hit.s.to_bits(),
            hit.k.to_bits(),
            hit.text
        ));
    }
    out
}

/// A two-segment corpus with a tombstone sidecar, persisted through the
/// given simulated filesystem.
fn boot_corpus(vfs: &Arc<SimVfs>, dir: &Path) -> (Arc<LiveEngine>, Arc<Ingestor>) {
    let mut coll = Collection::new();
    for i in 0..3 {
        coll.add_xml(&doc(i)).expect("boot doc");
    }
    let live = Arc::new(LiveEngine::new(Engine::new(coll)));
    let ing = Arc::new(
        Ingestor::new(
            Arc::clone(&live),
            IngestConfig {
                data_dir: Some(dir.to_path_buf()),
                merge_threshold: 0,
                compact_shards: 0,
                vfs: Some(vfs.clone() as Arc<dyn Vfs>),
            },
        )
        .expect("bootstrap"),
    );
    ing.add_documents(&[doc(3), doc(4)]).expect("delta segment");
    ing.delete_documents(&[1]).expect("tombstone sidecar");
    (live, ing)
}

fn scrubber_for(ing: &Arc<Ingestor>, profiles: Option<ProfileStore>) -> Scrubber {
    Scrubber::new(
        Arc::clone(ing),
        profiles,
        Arc::new(ProfileRegistry::new()),
        Arc::new(Metrics::new()),
    )
}

fn flip_bit(vfs: &SimVfs, path: &Path, offset: u64) {
    let mut bytes = vfs.read(path).expect("read artifact");
    let i = offset as usize;
    assert!(i < bytes.len(), "flip target outside {}", path.display());
    bytes[i] ^= 0x01;
    vfs.write_file(path, &bytes).expect("write damaged artifact");
}

#[test]
fn clean_pass_reports_ok_and_verifies_sections() {
    let dir = PathBuf::from("/sim/scrub-clean");
    let vfs = Arc::new(SimVfs::new(1));
    let (_live, ing) = boot_corpus(&vfs, &dir);
    let scrubber = scrubber_for(&ing, None);
    let pass = scrubber.run_pass();
    assert!(pass.sections_verified > 4, "pass saw {pass:?}");
    assert_eq!(pass.corrupt_artifacts, 0);
    assert_eq!(pass.quarantined, 0);
    assert_eq!(pass.repairs, 0);
    let health = scrubber.health();
    assert_eq!(health.overall(), HealthLevel::Ok);
    assert_eq!(health.passes, 1);
    // The health verb body renders as valid JSON with the right status.
    let body = scrubber.health_body();
    assert_eq!(body.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert!(pimento_serve::Value::parse(&body.render()).is_ok());
}

/// The tentpole assertion: a single flipped bit in ANY v4 section of
/// ANY live segment is detected, quarantined, repaired bit-identically
/// from the live engine, and health walks ok → degraded → ok.
#[test]
fn single_bit_flip_in_every_section_is_detected_and_repaired() {
    let dir = PathBuf::from("/sim/scrub-flips");
    let vfs = Arc::new(SimVfs::new(2));
    let (live, ing) = boot_corpus(&vfs, &dir);
    let scrubber = scrubber_for(&ing, None);
    let reference = fingerprint(&live.load());

    // Enumerate every (segment file, section) target up front; repair
    // re-publishes under the same file names with identical bytes, so
    // offsets stay valid across iterations.
    let manifest = ing.store().expect("store").manifest().expect("manifest");
    let mut targets: Vec<(PathBuf, String, u64)> = Vec::new();
    for entry in &manifest.segments {
        let path = dir.join(&entry.file);
        let report = inspect(&vfs.read(&path).expect("read")).expect("inspect");
        assert!(report.directory_ok);
        for s in &report.sections {
            if s.len > 0 {
                targets.push((path.clone(), s.name.clone(), s.offset + s.len / 2));
            }
        }
    }
    let names: Vec<&str> = targets.iter().map(|(_, n, _)| n.as_str()).collect();
    assert!(
        targets.len() >= 8,
        "expected sections across 2 segments, got {names:?}"
    );

    for (path, section, offset) in &targets {
        flip_bit(&vfs, path, *offset);
        let pass = scrubber.run_pass();
        assert!(
            pass.corrupt_artifacts >= 1,
            "flip in section `{section}` of {} went undetected",
            path.display()
        );
        assert!(pass.quarantined >= 1, "`{section}`: nothing quarantined");
        assert_eq!(pass.repairs, 1, "`{section}`: no repair");
        assert_eq!(pass.repair_failures, 0);
        assert_eq!(scrubber.health().overall(), HealthLevel::Degraded);

        // The repair restored a bit-identical on-disk generation: a
        // restart recovers exactly what the live engine serves.
        let recovered = Engine::from_sharded_dir_vfs(&*vfs, &dir)
            .unwrap_or_else(|e| panic!("`{section}`: recovery after repair failed: {e}"));
        assert_eq!(fingerprint(&recovered), reference);

        // Clean follow-up pass: degraded clears back to ok.
        let pass = scrubber.run_pass();
        assert_eq!(pass.corrupt_artifacts, 0, "`{section}`: repair left damage");
        assert_eq!(scrubber.health().overall(), HealthLevel::Ok);
    }
}

#[test]
fn manifest_and_tombstone_flips_are_detected_and_repaired() {
    let dir = PathBuf::from("/sim/scrub-meta");
    let vfs = Arc::new(SimVfs::new(3));
    let (live, ing) = boot_corpus(&vfs, &dir);
    let scrubber = scrubber_for(&ing, None);
    let reference = fingerprint(&live.load());
    let manifest = ing.store().expect("store").manifest().expect("manifest");
    let tomb = manifest
        .segments
        .iter()
        .find_map(|e| e.tombstones.clone())
        .expect("a tombstone sidecar exists");

    for name in ["MANIFEST".to_string(), tomb] {
        let path = dir.join(&name);
        let len = vfs.read(&path).expect("read").len() as u64;
        flip_bit(&vfs, &path, len / 2);
        let pass = scrubber.run_pass();
        assert!(pass.corrupt_artifacts >= 1, "{name}: flip undetected");
        assert_eq!(pass.repairs, 1, "{name}: no repair");
        assert_eq!(scrubber.health().overall(), HealthLevel::Degraded);
        let recovered = Engine::from_sharded_dir_vfs(&*vfs, &dir).expect("recover");
        assert_eq!(fingerprint(&recovered), reference);
        let pass = scrubber.run_pass();
        assert_eq!(pass.corrupt_artifacts, 0, "{name}: repair left damage");
        assert_eq!(scrubber.health().overall(), HealthLevel::Ok);
    }
}

/// A flipped profile file is quarantined and re-persisted from the
/// in-memory registry (the durable store's source of truth for repair).
#[test]
fn profile_flip_is_quarantined_and_repersisted_from_the_registry() {
    let dir = PathBuf::from("/sim/scrub-profiles");
    let vfs = Arc::new(SimVfs::new(4));
    let store =
        ProfileStore::open_with(vfs.clone() as Arc<dyn Vfs>, &dir).expect("open store");
    let rules = "pi1: x.tag = car & y.tag = car & ftcontains(x, \"red\") -> x < y\n";
    store.persist("alice", rules).expect("persist");
    let registry = Arc::new(ProfileRegistry::new());
    registry.register_with_rules(
        "alice",
        pimento::profile::parse_profile(rules, &pimento::profile::PrefRelRegistry::new())
            .expect("parse"),
        rules,
    );

    // An ingestor with no data dir: the corpus side reports memory-only.
    let live = Arc::new(LiveEngine::new(Engine::new(Collection::new())));
    let ing = Arc::new(
        Ingestor::new(Arc::clone(&live), IngestConfig::default()).expect("memory-only"),
    );
    let metrics = Arc::new(Metrics::new());
    let scrubber = Scrubber::new(
        ing,
        Some(store.clone()),
        Arc::clone(&registry),
        Arc::clone(&metrics),
    );

    let path = store.path_for("alice");
    let len = vfs.read(&path).expect("read").len() as u64;
    flip_bit(&vfs, &path, len / 2);
    let pass = scrubber.run_pass();
    assert_eq!(pass.corrupt_artifacts, 1, "flip undetected: {pass:?}");
    assert_eq!(pass.quarantined, 1);
    assert_eq!(pass.repairs, 1, "profile not re-persisted");
    assert_eq!(scrubber.health().overall(), HealthLevel::Degraded);
    assert!(metrics.quarantined_files.load(Ordering::Relaxed) >= 1);

    // The re-persisted file verifies and carries the original rules.
    let bytes = vfs.read(&path).expect("repaired file exists");
    let (user, recovered) = ProfileStore::verify_bytes(&bytes).expect("verifies");
    assert_eq!((user.as_str(), recovered.as_str()), ("alice", rules));
    let pass = scrubber.run_pass();
    assert_eq!(pass.corrupt_artifacts, 0);
    assert_eq!(scrubber.health().overall(), HealthLevel::Ok);
}

/// Quarantine retention stays bounded: repeated damage ages out the
/// oldest `*.quarantined` files instead of accumulating forever.
#[test]
fn quarantine_retention_is_bounded_oldest_first() {
    let dir = PathBuf::from("/sim/scrub-cap");
    let vfs = Arc::new(SimVfs::new(5));
    let store =
        ProfileStore::open_with(vfs.clone() as Arc<dyn Vfs>, &dir).expect("open store");
    let rules = "pi1: x.tag = car & y.tag = car & ftcontains(x, \"red\") -> x < y\n";
    store.persist("alice", rules).expect("persist");
    let registry = Arc::new(ProfileRegistry::new());
    registry.register_with_rules(
        "alice",
        pimento::profile::parse_profile(rules, &pimento::profile::PrefRelRegistry::new())
            .expect("parse"),
        rules,
    );
    let live = Arc::new(LiveEngine::new(Engine::new(Collection::new())));
    let ing = Arc::new(
        Ingestor::new(Arc::clone(&live), IngestConfig::default()).expect("memory-only"),
    );
    let metrics = Arc::new(Metrics::new());
    let mut scrubber = Scrubber::new(
        ing,
        Some(store.clone()),
        Arc::clone(&registry),
        Arc::clone(&metrics),
    );
    scrubber.set_quarantine_cap(QuarantineCap {
        max_files: 2,
        max_bytes: 1 << 20,
    });

    let path = store.path_for("alice");
    for round in 0..5 {
        let len = vfs.read(&path).expect("read").len() as u64;
        flip_bit(&vfs, &path, len / 2);
        let pass = scrubber.run_pass();
        assert_eq!(pass.corrupt_artifacts, 1, "round {round}: {pass:?}");
        assert_eq!(pass.repairs, 1, "round {round}: not re-persisted");
    }
    let quarantined = vfs
        .list(&dir)
        .expect("list")
        .into_iter()
        .filter(|p| p.to_string_lossy().ends_with(".quarantined"))
        .count();
    assert!(
        quarantined <= 2,
        "retention cap not enforced: {quarantined} quarantined files"
    );
    assert_eq!(metrics.quarantined_files.load(Ordering::Relaxed), quarantined as u64);
}
