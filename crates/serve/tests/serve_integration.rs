//! Loopback integration tests for the serve subsystem (ISSUE 4
//! acceptance criteria): concurrent clients are bit-identical to serial
//! `Engine::search`, overload and deadlines produce typed errors,
//! `register_profile` invalidates the compiled cache, graceful shutdown
//! drains in-flight requests, and the `stats` identities hold.

use pimento::profile::{parse_profile, PrefRelRegistry, UserProfile};
use pimento::{Engine, SearchOptions};
use pimento_serve::json::{obj, Value};
use pimento_serve::{Client, ClientError, ServeConfig, ServeError, Server};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const FIG2_RULES: &str = include_str!("../../../profiles/fig2.rules");

const CARS_QUERY: &str = r#"//car[ftcontains(., "good condition") and ./price < 2000]"#;

fn cars_engine() -> Arc<Engine> {
    // The paper's running example corpus, plus generated dealers for bulk.
    let mut docs = vec![pimento_datagen::paper_figure1().to_string()];
    docs.push(pimento_datagen::generate_dealer(7, 120));
    docs.push(pimento_datagen::generate_dealer(13, 120));
    Arc::new(Engine::from_xml_docs(&docs).expect("corpus parses"))
}

fn fig2_profile() -> UserProfile {
    parse_profile(FIG2_RULES, &PrefRelRegistry::new()).expect("fig2 profile parses")
}

/// Start a server on a free port; returns its address and the handle
/// that yields the final metrics snapshot after shutdown.
fn start(
    engine: Arc<Engine>,
    cfg: ServeConfig,
) -> (SocketAddr, thread::JoinHandle<Result<Value, ServeError>>) {
    let server = Server::bind(engine, cfg).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// The wire-visible fingerprint of one hit: ids exactly, scores by bit
/// pattern (JSON uses shortest-round-trip formatting, so `f64` bits
/// survive the loopback).
fn fingerprint(hits: &Value) -> Vec<(u64, u64, u64, u64)> {
    hits.as_arr()
        .expect("hits array")
        .iter()
        .map(|h| {
            (
                h.get("doc").and_then(Value::as_u64).expect("doc"),
                h.get("node").and_then(Value::as_u64).expect("node"),
                h.get("s").and_then(Value::as_f64).expect("s").to_bits(),
                h.get("k").and_then(Value::as_f64).expect("k").to_bits(),
            )
        })
        .collect()
}

/// The same fingerprint computed engine-side, bypassing the server.
fn serial_fingerprint(
    engine: &Engine,
    profile: &UserProfile,
    query: &str,
    k: usize,
) -> Vec<(u64, u64, u64, u64)> {
    let results = engine
        .search(query, profile, &SearchOptions::top(k))
        .expect("serial search");
    results
        .hits
        .iter()
        .map(|h| {
            (
                u64::from(h.elem.doc.0),
                u64::from(h.elem.node.0),
                h.s.to_bits(),
                h.k.to_bits(),
            )
        })
        .collect()
}

fn assert_stats_identities(stats: &Value) {
    let g = |k: &str| {
        stats
            .get(k)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("counter {k}"))
    };
    assert_eq!(
        g("requests"),
        g("responses_ok") + g("responses_err") + g("rejected_overload") + g("rejected_deadline"),
        "every decoded request answered exactly once: {stats:?}"
    );
    let cache = stats.get("cache").expect("cache block");
    let c = |k: &str| {
        cache
            .get(k)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("cache {k}"))
    };
    assert_eq!(
        c("lookups"),
        c("hits") + c("misses"),
        "cache identity: {stats:?}"
    );
    // Startup gauges are always present and well-formed: the snapshot
    // format is 0 (built from XML), 3 (legacy), or 4 (columnar).
    let startup = stats.get("startup").expect("startup block");
    startup
        .get("load_ms")
        .and_then(Value::as_u64)
        .expect("startup.load_ms");
    let fmt = startup
        .get("snapshot_format")
        .and_then(Value::as_u64)
        .expect("startup.snapshot_format");
    assert!(fmt == 0 || fmt == 3 || fmt == 4, "snapshot_format {fmt}");
}

#[test]
fn concurrent_clients_bit_identical_to_serial_search() {
    let engine = cars_engine();
    let (addr, handle) = start(Arc::clone(&engine), ServeConfig::default());

    let mut c = Client::connect(addr).expect("connect");
    c.register_profile("u1", FIG2_RULES).expect("register");
    let profile = fig2_profile();
    let expected_personalized = serial_fingerprint(&engine, &profile, CARS_QUERY, 10);
    let expected_plain = serial_fingerprint(&engine, &UserProfile::new(), CARS_QUERY, 10);
    assert_ne!(
        expected_personalized, expected_plain,
        "personalization changes the ranking"
    );

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let expected_personalized = expected_personalized.clone();
            let expected_plain = expected_plain.clone();
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for round in 0..10 {
                    let user = if (i + round) % 2 == 0 {
                        Some("u1")
                    } else {
                        None
                    };
                    let body = c.search(user, CARS_QUERY, 10).expect("search");
                    let expected = if user.is_some() {
                        &expected_personalized
                    } else {
                        &expected_plain
                    };
                    assert_eq!(&fingerprint(body.get("hits").expect("hits")), expected);
                }
            })
        })
        .collect();
    for t in clients {
        t.join().expect("client thread");
    }

    let stats = c.shutdown().expect("shutdown");
    assert_stats_identities(&stats);
    let cache = stats.get("cache").expect("cache");
    assert!(
        cache.get("hits").and_then(Value::as_u64).expect("hits") >= 70,
        "repeat queries hit the compiled cache: {stats:?}"
    );
    let final_stats = handle.join().expect("server thread").expect("server ran");
    assert_stats_identities(&final_stats);
}

#[test]
fn concurrent_clients_bit_identical_under_cache_eviction() {
    // capacity 1 → every alternation between (user, plain) evicts; the
    // recompiled state must still produce identical bits.
    let engine = cars_engine();
    let cfg = ServeConfig {
        cache_capacity: 1,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(Arc::clone(&engine), cfg);

    Client::connect(addr)
        .expect("connect")
        .register_profile("u1", FIG2_RULES)
        .expect("register");
    let expected_personalized = serial_fingerprint(&engine, &fig2_profile(), CARS_QUERY, 10);
    let expected_plain = serial_fingerprint(&engine, &UserProfile::new(), CARS_QUERY, 10);

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let expected_personalized = expected_personalized.clone();
            let expected_plain = expected_plain.clone();
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for round in 0..6 {
                    let user = if (i + round) % 2 == 0 {
                        Some("u1")
                    } else {
                        None
                    };
                    let body = c.search(user, CARS_QUERY, 10).expect("search");
                    let expected = if user.is_some() {
                        &expected_personalized
                    } else {
                        &expected_plain
                    };
                    assert_eq!(&fingerprint(body.get("hits").expect("hits")), expected);
                }
            })
        })
        .collect();
    for t in clients {
        t.join().expect("client thread");
    }

    let mut c = Client::connect(addr).expect("connect");
    let stats = c.shutdown().expect("shutdown");
    assert_stats_identities(&stats);
    let cache = stats.get("cache").expect("cache");
    assert!(
        cache
            .get("evictions")
            .and_then(Value::as_u64)
            .expect("evictions")
            > 0,
        "capacity-1 cache must have churned: {stats:?}"
    );
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn xmark_corpus_bit_identical() {
    let engine = Arc::new(
        Engine::from_xml_docs(&[pimento_datagen::generate_xmark(42, 64 * 1024)])
            .expect("xmark parses"),
    );
    let (addr, handle) = start(Arc::clone(&engine), ServeConfig::default());
    // The paper's XMark workload shape: business buyers, KOR boosts.
    let rules = r#"
kor1: x.tag = person & y.tag = person & ftcontains(x, "United States") -> x < y
kor2: x.tag = person & y.tag = person & ftcontains(x, "College") -> x < y
"#;
    let query = r#"//person[ftcontains(., "Yes")]"#;
    let mut c = Client::connect(addr).expect("connect");
    c.register_profile("buyer", rules).expect("register");
    let profile = parse_profile(rules, &PrefRelRegistry::new()).expect("rules parse");
    let expected = serial_fingerprint(&engine, &profile, query, 12);
    assert!(!expected.is_empty(), "xmark query matches");

    let clients: Vec<_> = (0..6)
        .map(|_| {
            let expected = expected.clone();
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for _ in 0..5 {
                    let body = c.search(Some("buyer"), query, 12).expect("search");
                    assert_eq!(fingerprint(body.get("hits").expect("hits")), expected);
                }
            })
        })
        .collect();
    for t in clients {
        t.join().expect("client thread");
    }
    c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn overload_is_a_typed_error() {
    // queue_capacity 0: every request is rejected with `overloaded`.
    let engine = cars_engine();
    let cfg = ServeConfig {
        queue_capacity: 0,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(engine, cfg);
    let mut c = Client::connect(addr).expect("connect");
    let err = c.search(None, "//car", 5).expect_err("must overload");
    assert_eq!(err.kind(), Some("overloaded"), "{err}");

    // Shutdown can't get through a zero queue either; stop via drop of
    // the listener is impossible, so assert the metrics then abandon the
    // server thread (the process exits at test end).
    let err = c.shutdown().expect_err("shutdown rejected too");
    assert_eq!(err.kind(), Some("overloaded"));
    drop(handle);
}

#[test]
fn expired_deadline_is_rejected_before_evaluation() {
    let engine = cars_engine();
    // A small worker delay guarantees the deadline check observes an
    // expired budget even on a fast machine.
    let cfg = ServeConfig {
        worker_delay: Some(Duration::from_millis(20)),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(engine, cfg);
    let mut c = Client::connect(addr).expect("connect");
    let req = obj([
        ("cmd", "search".into()),
        ("query", "//car".into()),
        ("k", 5u64.into()),
        ("timeout_ms", 0u64.into()),
    ]);
    match c.request(&req).expect_err("deadline must reject") {
        ClientError::Server { kind, .. } => assert_eq!(kind, "deadline"),
        other => panic!("wrong error: {other}"),
    }
    // An un-deadlined request on the same connection still works.
    let body = c.search(None, "//car", 5).expect("search");
    assert!(!fingerprint(body.get("hits").expect("hits")).is_empty());
    let stats = c.shutdown().expect("shutdown");
    assert_eq!(
        stats.get("rejected_deadline").and_then(Value::as_u64),
        Some(1),
        "{stats:?}"
    );
    assert_stats_identities(&stats);
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn register_profile_invalidates_cached_plans() {
    let engine = cars_engine();
    let (addr, handle) = start(engine, ServeConfig::default());
    let mut c = Client::connect(addr).expect("connect");
    c.register_profile("u1", FIG2_RULES).expect("register");

    let first = c.search(Some("u1"), CARS_QUERY, 5).expect("search");
    assert_eq!(first.get("cache").and_then(Value::as_str), Some("miss"));
    let second = c.search(Some("u1"), CARS_QUERY, 5).expect("search");
    assert_eq!(second.get("cache").and_then(Value::as_str), Some("hit"));

    // Re-registering bumps the generation: the cached plan is stale.
    let reg = c
        .register_profile(
            "u1",
            "pi5: x.tag = car & y.tag = car & ftcontains(x, \"NYC\") -> x < y\n",
        )
        .expect("re-register");
    assert!(
        reg.get("invalidated")
            .and_then(Value::as_u64)
            .expect("invalidated")
            >= 1,
        "{reg:?}"
    );
    let third = c.search(Some("u1"), CARS_QUERY, 5).expect("search");
    assert_eq!(third.get("cache").and_then(Value::as_str), Some("miss"));
    assert_ne!(
        fingerprint(first.get("hits").expect("hits")),
        fingerprint(third.get("hits").expect("hits")),
        "new profile actually changes the ranking"
    );

    let stats = c.shutdown().expect("shutdown");
    assert!(
        stats
            .get("cache")
            .and_then(|c| c.get("invalidations"))
            .and_then(Value::as_u64)
            .expect("invalidations")
            >= 1
    );
    assert_stats_identities(&stats);
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn graceful_shutdown_drains_queued_requests() {
    let engine = cars_engine();
    // One slow worker: pipelined requests stack up in the queue, then a
    // second client's shutdown lands behind them. All of them must still
    // be answered (drain), and run() must return.
    let cfg = ServeConfig {
        workers: 1,
        worker_delay: Some(Duration::from_millis(40)),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(engine, cfg);

    // Pipeline 6 requests on one connection up front (raw frames, no
    // reply reads): the reader decodes and queues all of them behind the
    // slow worker before the shutdown lands.
    let pipeliner = thread::spawn(move || {
        use pimento_serve::protocol::{read_frame, write_frame, FRAME_HARD_CAP};
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        let req = obj([
            ("cmd", "search".into()),
            ("query", CARS_QUERY.into()),
            ("k", 5u64.into()),
        ]);
        for _ in 0..6 {
            write_frame(&mut raw, req.render().as_bytes()).expect("pipelined write");
        }
        let mut fingerprints = Vec::new();
        for _ in 0..6 {
            let reply = read_frame(&mut raw, FRAME_HARD_CAP)
                .expect("read")
                .expect("queued search answered");
            let v = Value::parse(std::str::from_utf8(&reply).expect("utf8")).expect("json");
            let body = v.get("ok").expect("ok reply");
            fingerprints.push(fingerprint(body.get("hits").expect("hits")));
        }
        fingerprints
    });
    // Give the pipeliner time to enqueue behind the slow worker, then
    // shut down from a second connection.
    thread::sleep(Duration::from_millis(80));
    let mut c = Client::connect(addr).expect("connect");
    let _ = c.shutdown().expect("shutdown replies");

    let fingerprints = pipeliner.join().expect("pipeliner");
    assert_eq!(fingerprints.len(), 6, "every pre-shutdown request answered");
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "answers identical"
    );
    let final_stats = handle
        .join()
        .expect("server thread")
        .expect("run() returned");
    assert_stats_identities(&final_stats);
    // After run() returns, the port no longer accepts work.
    assert!(
        Client::connect_timeout(addr, Duration::from_millis(200))
            .and_then(|mut c| c.stats())
            .is_err(),
        "server is really gone"
    );
}

#[test]
fn malformed_and_unknown_inputs_get_typed_errors() {
    let engine = cars_engine();
    let (addr, handle) = start(engine, ServeConfig::default());
    let mut c = Client::connect(addr).expect("connect");

    let err = c
        .request(&obj([("cmd", "warp".into())]))
        .expect_err("unknown cmd");
    assert_eq!(err.kind(), Some("bad_request"), "{err}");
    let err = c
        .search(Some("nobody"), "//car", 5)
        .expect_err("unknown user");
    assert_eq!(err.kind(), Some("unknown_user"), "{err}");
    let err = c.search(None, "//car[", 5).expect_err("bad query");
    assert_eq!(err.kind(), Some("query"), "{err}");
    let err = c.search(None, "//car", 0).expect_err("k = 0");
    assert_eq!(err.kind(), Some("bad_request"), "{err}");
    let err = c
        .request(&obj([
            ("cmd", "register_profile".into()),
            ("user", "u".into()),
            ("rules", "gibberish\n".into()),
        ]))
        .expect_err("bad rules");
    assert_eq!(err.kind(), Some("profile"), "{err}");

    // Raw non-JSON bytes → bad_request (framing survives).
    {
        use pimento_serve::protocol::{read_frame, write_frame, FRAME_HARD_CAP};
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        write_frame(&mut raw, b"not json at all").expect("write");
        let reply = read_frame(&mut raw, FRAME_HARD_CAP)
            .expect("read")
            .expect("reply");
        let v = Value::parse(std::str::from_utf8(&reply).expect("utf8")).expect("json");
        assert_eq!(
            v.get("err")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("bad_request")
        );
    }

    let stats = c.stats().expect("stats");
    assert_stats_identities(&stats);
    assert_eq!(
        stats.get("responses_err").and_then(Value::as_u64),
        Some(6),
        "{stats:?}"
    );
    c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn conflicting_profile_degrades_to_unpersonalized_answers() {
    // The §5.1 conflict pair parses (and registers) fine — the cycle only
    // materializes on a query asking for BOTH phrases. Instead of a hard
    // `profile` error, the server falls back to the base query and stamps
    // `degraded: true` with the reason.
    let conflict_rules = include_str!("../../../tests/fixtures/sr_conflict_cycle.rules");
    // The §5.1 shape: both phrases asked of the description child, so
    // each rule's trigger matches and each deletes the other's condition.
    let both_query =
        r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")]]"#;
    let engine = cars_engine();
    let (addr, handle) = start(Arc::clone(&engine), ServeConfig::default());
    let mut c = Client::connect(addr).expect("connect");
    c.register_profile("picky", conflict_rules)
        .expect("conflict pair registers fine");

    // A one-phrase query applies cleanly — personalized, not degraded.
    let one = c
        .search(Some("picky"), CARS_QUERY, 10)
        .expect("one-phrase search");
    assert_eq!(one.get("degraded"), None, "{one:?}");

    // The both-phrases query degrades to the unpersonalized base answers.
    let body = c
        .search(Some("picky"), both_query, 10)
        .expect("degraded search succeeds");
    assert_eq!(
        body.get("degraded").and_then(Value::as_bool),
        Some(true),
        "{body:?}"
    );
    let reason = body
        .get("degraded_reason")
        .and_then(Value::as_str)
        .expect("reason");
    assert!(
        reason.contains("conflict") || reason.contains("not applicable"),
        "{reason}"
    );
    let expected_plain = serial_fingerprint(&engine, &UserProfile::new(), both_query, 10);
    assert_eq!(fingerprint(body.get("hits").expect("hits")), expected_plain);

    // Anonymous callers get the same bits without the degraded stamp.
    let anon = c.search(None, both_query, 10).expect("anonymous search");
    assert_eq!(anon.get("degraded"), None);
    assert_eq!(fingerprint(anon.get("hits").expect("hits")), expected_plain);

    let stats = c.shutdown().expect("shutdown");
    assert_stats_identities(&stats);
    assert_eq!(
        stats.get("degraded").and_then(Value::as_u64),
        Some(1),
        "{stats:?}"
    );
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn profiles_persist_across_restart_via_profile_dir() {
    let dir = std::env::temp_dir().join(format!("pimento-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = cars_engine();
    let expected = serial_fingerprint(&engine, &fig2_profile(), CARS_QUERY, 10);

    // First server life: register, search, shut down.
    let cfg = ServeConfig {
        profile_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(Arc::clone(&engine), cfg.clone());
    let mut c = Client::connect(addr).expect("connect");
    let reg = c.register_profile("u1", FIG2_RULES).expect("register");
    assert_eq!(
        reg.get("persisted").and_then(Value::as_bool),
        Some(true),
        "{reg:?}"
    );
    c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");

    // Second life, same directory: the profile is already there.
    let (addr, handle) = start(Arc::clone(&engine), cfg);
    let mut c = Client::connect(addr).expect("connect");
    let body = c
        .search(Some("u1"), CARS_QUERY, 10)
        .expect("recovered-profile search");
    assert_eq!(body.get("degraded"), None, "{body:?}");
    assert_eq!(fingerprint(body.get("hits").expect("hits")), expected);
    let stats = c.shutdown().expect("shutdown");
    assert_stats_identities(&stats);
    let store = stats.get("store").expect("store block");
    assert_eq!(
        store.get("profiles_recovered").and_then(Value::as_u64),
        Some(1),
        "{stats:?}"
    );
    assert_eq!(
        store.get("profiles_quarantined").and_then(Value::as_u64),
        Some(0),
        "{stats:?}"
    );
    handle.join().expect("server thread").expect("server ran");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_reports_the_plan_without_executing() {
    let engine = cars_engine();
    let (addr, handle) = start(engine, ServeConfig::default());
    let mut c = Client::connect(addr).expect("connect");
    let body = c
        .request(&obj([
            ("cmd", "explain".into()),
            ("query", CARS_QUERY.into()),
            ("k", 5u64.into()),
        ]))
        .expect("explain");
    let plan = body
        .get("plan")
        .and_then(Value::as_str)
        .expect("plan string");
    assert!(plan.contains("QueryEval"), "{plan}");
    // Explain compiles (and caches) but does not execute: a subsequent
    // search hits the cache.
    let searched = c.search(None, CARS_QUERY, 5).expect("search");
    assert_eq!(searched.get("cache").and_then(Value::as_str), Some("hit"));
    c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn snapshot_backed_server_is_bit_identical_and_reports_format() {
    let engine = cars_engine();
    let expected = serial_fingerprint(&engine, &UserProfile::new(), CARS_QUERY, 10);

    // Reopen the same corpus through a columnar (v4) snapshot and serve
    // from the packed views.
    let snapshot = engine.save_snapshot();
    let reopened = Arc::new(Engine::from_snapshot(&snapshot).expect("v4 snapshot opens"));
    let cfg = ServeConfig {
        startup_load_ms: 1,
        startup_snapshot_format: reopened.snapshot_format(),
        ..ServeConfig::default()
    };
    let (addr, handle) = start(reopened, cfg);
    let mut c = Client::connect(addr).expect("connect");
    let body = c.search(None, CARS_QUERY, 10).expect("search");
    assert_eq!(fingerprint(body.get("hits").expect("hits")), expected);
    let stats = c.shutdown().expect("shutdown");
    assert_stats_identities(&stats);
    let startup = stats.get("startup").expect("startup block");
    assert_eq!(
        startup.get("snapshot_format").and_then(Value::as_u64),
        Some(4),
        "{stats:?}"
    );
    handle.join().expect("server thread").expect("server ran");
}

const ZEPHYR_DOC: &str = "<dealer><car><model>Zephyr</model><price>1500</price>\
     <description>rare zephyr roadster in good condition</description></car></dealer>";
const ZEPHYR_QUERY: &str = r#"//car[ftcontains(., "zephyr")]"#;

#[test]
fn ingest_verbs_update_the_live_corpus() {
    let engine = cars_engine();
    let base_docs = engine.num_docs() as u64;
    let (addr, handle) = start(engine, ServeConfig::default());
    let mut c = Client::connect(addr).expect("connect");

    // Nothing matches before the write, and the plan gets cached.
    let before = c.search(None, ZEPHYR_QUERY, 5).expect("search");
    assert_eq!(before.get("hits").and_then(Value::as_arr).map(<[Value]>::len), Some(0));
    let warmed = c.search(None, ZEPHYR_QUERY, 5).expect("search");
    assert_eq!(warmed.get("cache").and_then(Value::as_str), Some("hit"));

    // The add is visible to the very next search — and because the corpus
    // generation moved, the cached plan for this query is stale.
    let added = c
        .add_documents(&[ZEPHYR_DOC.to_string()])
        .expect("add_documents");
    assert_eq!(added.get("added").and_then(Value::as_u64), Some(1));
    assert_eq!(added.get("generation").and_then(Value::as_u64), Some(1));
    assert_eq!(
        added.get("num_docs").and_then(Value::as_u64),
        Some(base_docs + 1),
        "{added:?}"
    );
    let after = c.search(None, ZEPHYR_QUERY, 5).expect("search");
    assert_eq!(after.get("cache").and_then(Value::as_str), Some("miss"));
    let hits = after.get("hits").and_then(Value::as_arr).expect("hits");
    assert_eq!(hits.len(), 1, "{after:?}");
    let doc_id = hits[0].get("doc").and_then(Value::as_u64).expect("doc") as u32;
    assert_eq!(u64::from(doc_id), base_docs, "appended at the end");

    // Deleting hides the document immediately (tombstone, no compaction).
    let deleted = c.delete_documents(&[doc_id]).expect("delete_documents");
    assert_eq!(deleted.get("deleted").and_then(Value::as_u64), Some(1));
    assert_eq!(deleted.get("generation").and_then(Value::as_u64), Some(2));
    assert_eq!(
        deleted.get("live_docs").and_then(Value::as_u64),
        Some(base_docs),
        "{deleted:?}"
    );
    let gone = c.search(None, ZEPHYR_QUERY, 5).expect("search");
    assert_eq!(
        gone.get("hits").and_then(Value::as_arr).map(<[Value]>::len),
        Some(0),
        "{gone:?}"
    );

    let stats = c.shutdown().expect("shutdown");
    assert_stats_identities(&stats);
    let ingest = stats.get("ingest").expect("ingest block");
    let i = |k: &str| ingest.get(k).and_then(Value::as_u64).expect(k);
    assert_eq!(i("requests"), 2);
    assert_eq!(i("errors"), 0);
    assert_eq!(i("docs_added"), 1);
    assert_eq!(i("docs_deleted"), 1);
    assert_eq!(i("generation"), 2);
    assert_eq!(i("live_docs"), base_docs);
    assert!(
        stats
            .get("cache")
            .and_then(|c| c.get("invalidations"))
            .and_then(Value::as_u64)
            .expect("invalidations")
            >= 1,
        "corpus generation bump purged the stale plan: {stats:?}"
    );
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn ingest_rejects_bad_batches_without_changing_the_corpus() {
    let engine = cars_engine();
    let num_docs = engine.num_docs() as u64;
    let (addr, handle) = start(engine, ServeConfig::default());
    let mut c = Client::connect(addr).expect("connect");

    let malformed = c.add_documents(&["<dealer><car></dealer>".to_string()]);
    assert!(
        matches!(&malformed, Err(ClientError::Server { kind, .. }) if kind == "ingest"),
        "{malformed:?}"
    );
    let out_of_range = c.delete_documents(&[u32::MAX]);
    assert!(
        matches!(&out_of_range, Err(ClientError::Server { kind, .. }) if kind == "ingest"),
        "{out_of_range:?}"
    );

    let stats = c.shutdown().expect("shutdown");
    assert_stats_identities(&stats);
    let ingest = stats.get("ingest").expect("ingest block");
    let i = |k: &str| ingest.get(k).and_then(Value::as_u64).expect(k);
    assert_eq!(i("errors"), 2, "{stats:?}");
    assert_eq!(i("generation"), 0, "failed writes publish nothing");
    assert_eq!(i("docs"), num_docs);
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn ingested_corpus_recovers_across_restart_via_data_dir() {
    let dir = std::env::temp_dir().join(format!("pimento-serve-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig {
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    // First life: ingest a document online, record the served answer.
    let (addr, handle) = start(cars_engine(), cfg.clone());
    let mut c = Client::connect(addr).expect("connect");
    c.add_documents(&[ZEPHYR_DOC.to_string()])
        .expect("add_documents");
    let first = c.search(None, ZEPHYR_QUERY, 5).expect("search");
    let expected = fingerprint(first.get("hits").expect("hits"));
    assert_eq!(expected.len(), 1);
    c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");

    // Second life: recover the live corpus from the data dir (as the CLI
    // does when the directory already holds a MANIFEST) — the online
    // ingest survives the restart bit-identically.
    let recovered = Arc::new(Engine::from_sharded_dir(&dir).expect("recover corpus"));
    assert_eq!(recovered.generation(), 1, "last published generation");
    let (addr, handle) = start(recovered, cfg);
    let mut c = Client::connect(addr).expect("connect");
    let second = c.search(None, ZEPHYR_QUERY, 5).expect("search");
    assert_eq!(fingerprint(second.get("hits").expect("hits")), expected);
    let stats = c.shutdown().expect("shutdown");
    let ingest = stats.get("ingest").expect("ingest block");
    assert_eq!(
        ingest.get("generation").and_then(Value::as_u64),
        Some(1),
        "{stats:?}"
    );
    handle.join().expect("server thread").expect("server ran");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_verb_reports_scrubber_status() {
    let engine = cars_engine();
    let (addr, handle) = start(engine, ServeConfig::default());
    let mut c = Client::connect(addr).expect("connect");

    let body = c
        .request(&obj([("cmd", "health".into())]))
        .expect("health verb answers");
    assert_eq!(
        body.get("status").and_then(Value::as_str),
        Some("ok"),
        "{body:?}"
    );
    let corpus = body.get("corpus").expect("corpus component");
    assert_eq!(corpus.get("status").and_then(Value::as_str), Some("ok"));
    corpus
        .get("detail")
        .and_then(Value::as_str)
        .expect("corpus detail");
    let profiles = body.get("profiles").expect("profiles component");
    assert_eq!(profiles.get("status").and_then(Value::as_str), Some("ok"));
    body.get("passes").and_then(Value::as_u64).expect("passes");

    // `health` is a counted request like any other: the stats identities
    // still balance, and the scrub/health blocks are present.
    let stats = c.stats().expect("stats");
    assert_stats_identities(&stats);
    let scrub = stats.get("scrub").expect("scrub block");
    scrub.get("passes").and_then(Value::as_u64).expect("passes");
    let health = stats.get("health").expect("health block");
    assert_eq!(health.get("corpus").and_then(Value::as_u64), Some(0));
    assert_eq!(health.get("profiles").and_then(Value::as_u64), Some(0));
    c.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server ran");
}
