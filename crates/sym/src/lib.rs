//! # pimento-sym
//!
//! The workspace-wide symbol interner. Tag names, attribute names, and
//! other recurring strings are interned once at parse/ingest time into
//! dense [`SymbolId`]s; every downstream layer (index, query evaluation,
//! ranking) then carries and compares `u32` ids instead of heap strings.
//!
//! Ids are assigned in first-intern order and are stable for the lifetime
//! of the table, which makes them directly usable as indexes into dense
//! side tables (tag → element lists, id-indexed preference tables). The
//! table also round-trips through collection snapshots: names serialize in
//! id order, so re-interning them in order reproduces identical ids.
//!
//! ```
//! use pimento_sym::SymbolTable;
//!
//! let mut st = SymbolTable::new();
//! let car = st.intern("car");
//! assert_eq!(st.intern("car"), car);   // idempotent
//! assert_eq!(st.name(car), "car");     // resolvable
//! assert_eq!(st.get("absent"), None);  // lookup without insertion
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Interned element/attribute name. Shared across all documents of a
/// collection via [`SymbolTable`], so tag comparisons are integer compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

/// Interner mapping names to [`SymbolId`]s.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SymbolId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// Resolve an id back to its name.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate the interned names in id order (`SymbolId(0)` first). This
    /// is the serialization order: re-interning the yielded names into an
    /// empty table reproduces identical ids.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Serialize the table as one dense column (the `symtab` section of
    /// the columnar snapshot): a `u32` count, `count + 1` little-endian
    /// `u32` offsets into a trailing UTF-8 name heap. Name `i` occupies
    /// heap bytes `offsets[i]..offsets[i + 1]`, so the column is directly
    /// indexable without decoding — and [`SymbolTable::from_column_bytes`]
    /// reproduces identical ids because the column is in id order.
    pub fn column_bytes(&self) -> Vec<u8> {
        let heap_len: usize = self.names.iter().map(String::len).sum();
        let mut out = Vec::with_capacity(4 * (self.names.len() + 2) + heap_len);
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        let mut off = 0u32;
        for name in &self.names {
            out.extend_from_slice(&off.to_le_bytes());
            off += name.len() as u32;
        }
        out.extend_from_slice(&off.to_le_bytes());
        for name in &self.names {
            out.extend_from_slice(name.as_bytes());
        }
        out
    }

    /// Rebuild a table from a [`SymbolTable::column_bytes`] column.
    /// Returns a static description of the first structural violation on
    /// malformed input (truncated column, non-monotone offsets, invalid
    /// UTF-8, duplicate names) instead of panicking.
    pub fn from_column_bytes(data: &[u8]) -> Result<SymbolTable, &'static str> {
        let read_u32 = |at: usize| -> Result<u32, &'static str> {
            data.get(at..at + 4)
                .and_then(|b| <[u8; 4]>::try_from(b).ok())
                .map(u32::from_le_bytes)
                .ok_or("symbol column truncated")
        };
        let count = read_u32(0)? as usize;
        let heap_base = 4 * (count + 2);
        let heap_len = data
            .len()
            .checked_sub(heap_base)
            .ok_or("symbol column truncated")?;
        let mut table = SymbolTable::new();
        let mut prev = 0u32;
        for i in 0..count {
            let lo = read_u32(4 * (i + 1))?;
            let hi = read_u32(4 * (i + 2))?;
            if lo != prev || hi < lo || hi as usize > heap_len {
                return Err("symbol column offsets not monotone");
            }
            prev = hi;
            let bytes = &data[heap_base + lo as usize..heap_base + hi as usize];
            let name = std::str::from_utf8(bytes).map_err(|_| "symbol name not UTF-8")?;
            if table.intern(name).0 as usize != i {
                return Err("duplicate symbol name in column");
            }
        }
        if prev as usize != heap_len {
            return Err("symbol column heap length mismatch");
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interning_is_stable() {
        let mut st = SymbolTable::new();
        let a = st.intern("car");
        let b = st.intern("price");
        assert_eq!(st.intern("car"), a);
        assert_ne!(a, b);
        assert_eq!(st.name(a), "car");
        assert_eq!(st.get("price"), Some(b));
        assert_eq!(st.get("absent"), None);
        assert_eq!(st.len(), 2);
        assert!(!st.is_empty());
        assert!(SymbolTable::new().is_empty());
    }

    #[test]
    fn iter_yields_id_order() {
        let mut st = SymbolTable::new();
        for n in ["b", "a", "c"] {
            st.intern(n);
        }
        let names: Vec<&str> = st.iter().collect();
        assert_eq!(names, ["b", "a", "c"]);
    }

    #[test]
    fn column_roundtrip_preserves_ids() {
        let mut st = SymbolTable::new();
        for n in ["dealer", "car", "", "price", "日本語"] {
            st.intern(n);
        }
        let col = st.column_bytes();
        let back = SymbolTable::from_column_bytes(&col).unwrap();
        assert_eq!(back.len(), st.len());
        for (i, name) in st.iter().enumerate() {
            assert_eq!(back.name(SymbolId(i as u32)), name);
            assert_eq!(back.get(name), Some(SymbolId(i as u32)));
        }
        // Empty table: count word + one offset word.
        let empty = SymbolTable::new().column_bytes();
        assert_eq!(empty.len(), 8);
        assert!(SymbolTable::from_column_bytes(&empty).unwrap().is_empty());
    }

    #[test]
    fn malformed_columns_rejected() {
        let mut st = SymbolTable::new();
        st.intern("ab");
        st.intern("cd");
        let col = st.column_bytes();
        assert!(
            SymbolTable::from_column_bytes(&col[..col.len() - 1]).is_err(),
            "short heap"
        );
        assert!(
            SymbolTable::from_column_bytes(&col[..6]).is_err(),
            "short offsets"
        );
        assert!(SymbolTable::from_column_bytes(&[]).is_err(), "empty input");
        // Non-monotone offsets: swap the two name offsets.
        let mut bad = col.clone();
        bad[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert!(SymbolTable::from_column_bytes(&bad).is_err());
        // Invalid UTF-8 in the heap.
        let mut bad_utf8 = col.clone();
        let heap = bad_utf8.len() - 4;
        bad_utf8[heap] = 0xFF;
        assert!(SymbolTable::from_column_bytes(&bad_utf8).is_err());
        // Duplicate names collapse under interning → id mismatch.
        let mut dup = SymbolTable::new();
        dup.intern("x");
        let mut two = dup.column_bytes();
        // Hand-build a column claiming two identical names.
        two.clear();
        two.extend_from_slice(&2u32.to_le_bytes());
        for off in [0u32, 1, 2] {
            two.extend_from_slice(&off.to_le_bytes());
        }
        two.extend_from_slice(b"xx");
        assert!(SymbolTable::from_column_bytes(&two).is_err());
    }

    proptest! {
        /// Any interned table round-trips through the dense column with
        /// identical ids.
        #[test]
        fn column_roundtrip_prop(seeds in proptest::collection::vec(any::<u16>(), 0..48)) {
            let mut st = SymbolTable::new();
            for s in &seeds {
                st.intern(&format!("n{}", s % 60));
            }
            let back = SymbolTable::from_column_bytes(&st.column_bytes()).unwrap();
            prop_assert_eq!(back.len(), st.len());
            for (i, name) in st.iter().enumerate() {
                prop_assert_eq!(back.name(SymbolId(i as u32)), name);
            }
        }

        /// intern → resolve → re-intern is the identity, and rebuilding a
        /// table from `iter()` order (the snapshot path) preserves ids.
        #[test]
        fn intern_resolve_reintern_roundtrip(seeds in proptest::collection::vec(any::<u16>(), 0..32)) {
            // Small name space so duplicate interning is exercised too.
            let names: Vec<String> = seeds.iter().map(|s| format!("sym{}", s % 40)).collect();
            let mut st = SymbolTable::new();
            let ids: Vec<SymbolId> = names.iter().map(|n| st.intern(n)).collect();
            for (name, &id) in names.iter().zip(&ids) {
                prop_assert_eq!(st.name(id), name.as_str());
                prop_assert_eq!(st.intern(name), id);
                prop_assert_eq!(st.get(name), Some(id));
            }
            // Serialization order reproduces identical ids.
            let mut rebuilt = SymbolTable::new();
            let reids: Vec<SymbolId> = st.iter().map(|n| rebuilt.intern(n)).collect();
            prop_assert_eq!(reids, (0..st.len() as u32).map(SymbolId).collect::<Vec<_>>());
            for (name, &id) in names.iter().zip(&ids) {
                prop_assert_eq!(rebuilt.get(name), Some(id));
            }
        }
    }
}
