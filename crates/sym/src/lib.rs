//! # pimento-sym
//!
//! The workspace-wide symbol interner. Tag names, attribute names, and
//! other recurring strings are interned once at parse/ingest time into
//! dense [`SymbolId`]s; every downstream layer (index, query evaluation,
//! ranking) then carries and compares `u32` ids instead of heap strings.
//!
//! Ids are assigned in first-intern order and are stable for the lifetime
//! of the table, which makes them directly usable as indexes into dense
//! side tables (tag → element lists, id-indexed preference tables). The
//! table also round-trips through collection snapshots: names serialize in
//! id order, so re-interning them in order reproduces identical ids.
//!
//! ```
//! use pimento_sym::SymbolTable;
//!
//! let mut st = SymbolTable::new();
//! let car = st.intern("car");
//! assert_eq!(st.intern("car"), car);   // idempotent
//! assert_eq!(st.name(car), "car");     // resolvable
//! assert_eq!(st.get("absent"), None);  // lookup without insertion
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Interned element/attribute name. Shared across all documents of a
/// collection via [`SymbolTable`], so tag comparisons are integer compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

/// Interner mapping names to [`SymbolId`]s.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SymbolId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// Resolve an id back to its name.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate the interned names in id order (`SymbolId(0)` first). This
    /// is the serialization order: re-interning the yielded names into an
    /// empty table reproduces identical ids.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interning_is_stable() {
        let mut st = SymbolTable::new();
        let a = st.intern("car");
        let b = st.intern("price");
        assert_eq!(st.intern("car"), a);
        assert_ne!(a, b);
        assert_eq!(st.name(a), "car");
        assert_eq!(st.get("price"), Some(b));
        assert_eq!(st.get("absent"), None);
        assert_eq!(st.len(), 2);
        assert!(!st.is_empty());
        assert!(SymbolTable::new().is_empty());
    }

    #[test]
    fn iter_yields_id_order() {
        let mut st = SymbolTable::new();
        for n in ["b", "a", "c"] {
            st.intern(n);
        }
        let names: Vec<&str> = st.iter().collect();
        assert_eq!(names, ["b", "a", "c"]);
    }

    proptest! {
        /// intern → resolve → re-intern is the identity, and rebuilding a
        /// table from `iter()` order (the snapshot path) preserves ids.
        #[test]
        fn intern_resolve_reintern_roundtrip(seeds in proptest::collection::vec(any::<u16>(), 0..32)) {
            // Small name space so duplicate interning is exercised too.
            let names: Vec<String> = seeds.iter().map(|s| format!("sym{}", s % 40)).collect();
            let mut st = SymbolTable::new();
            let ids: Vec<SymbolId> = names.iter().map(|n| st.intern(n)).collect();
            for (name, &id) in names.iter().zip(&ids) {
                prop_assert_eq!(st.name(id), name.as_str());
                prop_assert_eq!(st.intern(name), id);
                prop_assert_eq!(st.get(name), Some(id));
            }
            // Serialization order reproduces identical ids.
            let mut rebuilt = SymbolTable::new();
            let reids: Vec<SymbolId> = st.iter().map(|n| rebuilt.intern(n)).collect();
            prop_assert_eq!(reids, (0..st.len() as u32).map(SymbolId).collect::<Vec<_>>());
            for (name, &id) in names.iter().zip(&ids) {
                prop_assert_eq!(rebuilt.get(name), Some(id));
            }
        }
    }
}
