//! Extended tree pattern queries (TPQs), the paper's query abstraction
//! (§3): a rooted tree whose nodes are labeled with tags, whose edges are
//! parent-child (`pc`) or ancestor-descendant (`ad`) structural predicates,
//! with a distinguished answer node, and with each node optionally carrying
//! constraint predicates (`content relOp const`) and keyword predicates
//! (`ftcontains(., "k")`).

use std::fmt;

/// Index of a node within a [`Tpq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TpqNodeId(pub u32);

/// Structural edge kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `pc`: the child must be a direct child.
    Child,
    /// `ad`: the child must be a proper descendant.
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// Tag test on a pattern node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TagTest {
    /// Must equal this tag.
    Name(String),
    /// Wildcard `*`.
    Star,
}

impl TagTest {
    /// Does an element tag satisfy the test?
    pub fn matches(&self, tag: &str) -> bool {
        match self {
            TagTest::Name(n) => n == tag,
            TagTest::Star => true,
        }
    }

    /// The concrete name, if any.
    pub fn name(&self) -> Option<&str> {
        match self {
            TagTest::Name(n) => Some(n),
            TagTest::Star => None,
        }
    }
}

impl fmt::Display for TagTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagTest::Name(n) => write!(f, "{n}"),
            TagTest::Star => write!(f, "*"),
        }
    }
}

/// Comparison operators allowed in constraint predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl RelOp {
    /// Evaluate `lhs op rhs` over floats.
    pub fn eval_num(self, lhs: f64, rhs: f64) -> bool {
        match self {
            RelOp::Lt => lhs < rhs,
            RelOp::Le => lhs <= rhs,
            RelOp::Gt => lhs > rhs,
            RelOp::Ge => lhs >= rhs,
            RelOp::Eq => lhs == rhs,
            RelOp::Ne => lhs != rhs,
        }
    }

    /// The operator with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Gt,
            RelOp::Le => RelOp::Ge,
            RelOp::Gt => RelOp::Lt,
            RelOp::Ge => RelOp::Le,
            RelOp::Eq => RelOp::Eq,
            RelOp::Ne => RelOp::Ne,
        }
    }

    /// Logical negation (`a < b` ⇔ ¬(a >= b)).
    pub fn negate(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Ge,
            RelOp::Le => RelOp::Gt,
            RelOp::Gt => RelOp::Le,
            RelOp::Ge => RelOp::Lt,
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
            RelOp::Eq => "=",
            RelOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// Constant compared against in a constraint predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric constant.
    Num(f64),
    /// String constant.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A condition attached to a TPQ node (paper §3: constraint predicates on
/// leaf content and keyword predicates at any depth).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `content relOp value` — a hard constraint on the node's own content.
    Compare {
        /// Comparison operator.
        op: RelOp,
        /// Right-hand constant.
        value: Value,
    },
    /// `ftcontains(., "phrase")` — the node's subtree contains the phrase.
    FtContains {
        /// Raw phrase as written in the query.
        phrase: String,
    },
    /// `ftall(., "t1", "t2", … [window N] [ordered])` — the node's subtree
    /// contains an occurrence of **every** term, optionally within a token
    /// window and optionally in the listed order. These are the proximity
    /// and order full-text predicates of XQuery Full-Text that the paper's
    /// query class includes (§3).
    FtAll {
        /// The terms (each itself a word or phrase).
        terms: Vec<String>,
        /// Maximum token span covering one occurrence of each term.
        window: Option<u32>,
        /// Occurrences must appear in the listed order.
        ordered: bool,
    },
}

impl Predicate {
    /// Convenience constructor for keyword predicates.
    pub fn ft(phrase: impl Into<String>) -> Predicate {
        Predicate::FtContains {
            phrase: phrase.into(),
        }
    }

    /// Convenience constructor for numeric comparisons.
    pub fn cmp_num(op: RelOp, n: f64) -> Predicate {
        Predicate::Compare {
            op,
            value: Value::Num(n),
        }
    }

    /// Convenience constructor for string comparisons.
    pub fn cmp_str(op: RelOp, s: impl Into<String>) -> Predicate {
        Predicate::Compare {
            op,
            value: Value::Str(s.into()),
        }
    }

    /// Convenience constructor for proximity/order predicates.
    pub fn ft_all(terms: &[&str], window: Option<u32>, ordered: bool) -> Predicate {
        Predicate::FtAll {
            terms: terms.iter().map(|t| t.to_string()).collect(),
            window,
            ordered,
        }
    }

    /// Is this a keyword predicate (a score contributor)?
    pub fn is_keyword(&self) -> bool {
        matches!(self, Predicate::FtContains { .. } | Predicate::FtAll { .. })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare { op, value } => write!(f, ". {op} {value}"),
            Predicate::FtContains { phrase } => write!(f, "ftcontains(., {phrase:?})"),
            Predicate::FtAll {
                terms,
                window,
                ordered,
            } => {
                write!(f, "ftall(.")?;
                for t in terms {
                    write!(f, ", {t:?}")?;
                }
                if let Some(w) = window {
                    write!(f, " window {w}")?;
                }
                if *ordered {
                    write!(f, " ordered")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One node of a tree pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TpqNode {
    /// Tag test.
    pub tag: TagTest,
    /// Axis of the edge from this node's parent (ignored on the root, where
    /// it describes how the root anchors to the document: `Child` = must be
    /// the document root element, `Descendant` = anywhere).
    pub axis: Axis,
    /// Parent node, `None` for the root.
    pub parent: Option<TpqNodeId>,
    /// Children in insertion order.
    pub children: Vec<TpqNodeId>,
    /// Conjunction of predicates on this node.
    pub predicates: Vec<Predicate>,
}

/// An extended tree pattern query.
#[derive(Debug, Clone, PartialEq)]
pub struct Tpq {
    nodes: Vec<TpqNode>,
    distinguished: TpqNodeId,
}

impl Tpq {
    /// Create a single-node pattern. `axis` anchors the root to the
    /// document (`Descendant` for the common `//tag` form).
    pub fn new(tag: impl Into<String>, axis: Axis) -> Self {
        let root = TpqNode {
            tag: TagTest::Name(tag.into()),
            axis,
            parent: None,
            children: Vec::new(),
            predicates: Vec::new(),
        };
        Tpq {
            nodes: vec![root],
            distinguished: TpqNodeId(0),
        }
    }

    /// Create a single-node star pattern.
    pub fn star(axis: Axis) -> Self {
        let mut t = Tpq::new("*", axis);
        t.nodes[0].tag = TagTest::Star;
        t
    }

    /// Root node id (always 0).
    pub fn root(&self) -> TpqNodeId {
        TpqNodeId(0)
    }

    /// The distinguished (answer) node.
    pub fn distinguished(&self) -> TpqNodeId {
        self.distinguished
    }

    /// Mark `id` as the distinguished node.
    pub fn set_distinguished(&mut self, id: TpqNodeId) {
        assert!((id.0 as usize) < self.nodes.len(), "node out of range");
        self.distinguished = id;
    }

    /// Borrow a node.
    pub fn node(&self, id: TpqNodeId) -> &TpqNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: TpqNodeId) -> &mut TpqNode {
        &mut self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A pattern always has at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate all node ids (root first, insertion order).
    pub fn node_ids(&self) -> impl Iterator<Item = TpqNodeId> {
        (0..self.nodes.len() as u32).map(TpqNodeId)
    }

    /// Add a child with the given tag under `parent`, returning its id.
    /// The tag `"*"` creates a wildcard node.
    pub fn add_child(
        &mut self,
        parent: TpqNodeId,
        axis: Axis,
        tag: impl Into<String>,
    ) -> TpqNodeId {
        let id = TpqNodeId(self.nodes.len() as u32);
        let tag = tag.into();
        let tag = if tag == "*" {
            TagTest::Star
        } else {
            TagTest::Name(tag)
        };
        self.nodes.push(TpqNode {
            tag,
            axis,
            parent: Some(parent),
            children: Vec::new(),
            predicates: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Attach a predicate to `node`.
    pub fn add_predicate(&mut self, node: TpqNodeId, pred: Predicate) {
        self.nodes[node.0 as usize].predicates.push(pred);
    }

    /// Builder-style: add a child and return `self`.
    pub fn with_child(mut self, parent: TpqNodeId, axis: Axis, tag: &str) -> Self {
        self.add_child(parent, axis, tag);
        self
    }

    /// First node (in id order) whose tag test equals `tag`, if any.
    pub fn find_by_tag(&self, tag: &str) -> Option<TpqNodeId> {
        self.node_ids()
            .find(|&id| self.node(id).tag.name() == Some(tag))
    }

    /// All nodes whose tag test equals `tag`.
    pub fn find_all_by_tag(&self, tag: &str) -> Vec<TpqNodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).tag.name() == Some(tag))
            .collect()
    }

    /// Remove the predicate at `index` on `node`, returning it.
    pub fn remove_predicate(&mut self, node: TpqNodeId, index: usize) -> Predicate {
        self.nodes[node.0 as usize].predicates.remove(index)
    }

    /// Remove a leaf node (panics if `id` has children or is the root).
    /// The distinguished node is re-pointed at the parent if it was `id`.
    /// Node ids of remaining nodes are preserved via tombstoning-free
    /// compaction: ids after `id` shift down by one.
    pub fn remove_leaf(&mut self, id: TpqNodeId) {
        assert!(id.0 != 0, "cannot remove the root");
        assert!(self.node(id).children.is_empty(), "can only remove leaves");
        let parent = self.node(id).parent.expect("non-root has a parent");
        if self.distinguished == id {
            self.distinguished = parent;
        }
        let pkids = &mut self.nodes[parent.0 as usize].children;
        pkids.retain(|&k| k != id);
        self.nodes.remove(id.0 as usize);
        // Compact ids: every id greater than the removed one shifts down.
        let shift = |x: &mut TpqNodeId| {
            if x.0 > id.0 {
                x.0 -= 1;
            }
        };
        for n in &mut self.nodes {
            if let Some(p) = &mut n.parent {
                shift(p);
            }
            for c in &mut n.children {
                shift(c);
            }
        }
        shift(&mut self.distinguished);
    }

    /// Proper descendants of `id` in the pattern tree.
    pub fn descendants(&self, id: TpqNodeId) -> Vec<TpqNodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<TpqNodeId> = self.node(id).children.clone();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.node(n).children.iter().copied());
        }
        out
    }

    /// Total number of keyword predicates across all nodes (these are the
    /// score contributors in a plan for this query).
    pub fn keyword_predicate_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.predicates.iter().filter(|p| p.is_keyword()).count())
            .sum()
    }

    /// A canonical string key: children sorted recursively, predicates
    /// sorted textually. Two patterns with the same key are syntactically
    /// identical up to sibling order — used to deduplicate query flocks.
    pub fn canonical_key(&self) -> String {
        fn rec(t: &Tpq, id: TpqNodeId, out: &mut String) {
            let n = t.node(id);
            out.push_str(&n.axis.to_string());
            out.push_str(&n.tag.to_string());
            if id == t.distinguished() {
                out.push('!');
            }
            let mut preds: Vec<String> = n.predicates.iter().map(|p| p.to_string()).collect();
            preds.sort();
            for p in preds {
                out.push('[');
                out.push_str(&p);
                out.push(']');
            }
            let mut kids: Vec<String> = n
                .children
                .iter()
                .map(|&c| {
                    let mut s = String::new();
                    rec(t, c, &mut s);
                    s
                })
                .collect();
            kids.sort();
            if !kids.is_empty() {
                out.push('(');
                out.push_str(&kids.join(","));
                out.push(')');
            }
        }
        let mut s = String::new();
        rec(self, self.root(), &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car_query() -> Tpq {
        // //car[description[ftcontains "good condition" and "low mileage"] and price < 2000]
        let mut q = Tpq::new("car", Axis::Descendant);
        let d = q.add_child(q.root(), Axis::Child, "description");
        q.add_predicate(d, Predicate::ft("good condition"));
        q.add_predicate(d, Predicate::ft("low mileage"));
        let p = q.add_child(q.root(), Axis::Child, "price");
        q.add_predicate(p, Predicate::cmp_num(RelOp::Lt, 2000.0));
        q
    }

    #[test]
    fn build_running_example() {
        let q = car_query();
        assert_eq!(q.len(), 3);
        assert_eq!(q.distinguished(), q.root());
        assert_eq!(q.keyword_predicate_count(), 2);
        let d = q.find_by_tag("description").unwrap();
        assert_eq!(q.node(d).predicates.len(), 2);
        assert_eq!(q.node(d).axis, Axis::Child);
    }

    #[test]
    fn remove_leaf_compacts_ids() {
        let mut q = car_query();
        let d = q.find_by_tag("description").unwrap();
        q.remove_leaf(d);
        assert_eq!(q.len(), 2);
        let p = q.find_by_tag("price").unwrap();
        assert_eq!(q.node(p).parent, Some(q.root()));
        assert_eq!(q.node(q.root()).children, vec![p]);
    }

    #[test]
    fn remove_leaf_repoints_distinguished() {
        let mut q = Tpq::new("a", Axis::Descendant);
        let b = q.add_child(q.root(), Axis::Child, "b");
        q.set_distinguished(b);
        q.remove_leaf(b);
        assert_eq!(q.distinguished(), q.root());
    }

    #[test]
    #[should_panic(expected = "root")]
    fn cannot_remove_root() {
        let mut q = Tpq::new("a", Axis::Descendant);
        q.remove_leaf(q.root());
    }

    #[test]
    #[should_panic(expected = "leaves")]
    fn cannot_remove_internal_node() {
        let mut q = Tpq::new("a", Axis::Descendant);
        let b = q.add_child(q.root(), Axis::Child, "b");
        q.add_child(b, Axis::Child, "c");
        q.remove_leaf(b);
    }

    #[test]
    fn canonical_key_ignores_sibling_order() {
        let mut q1 = Tpq::new("a", Axis::Descendant);
        q1.add_child(q1.root(), Axis::Child, "b");
        q1.add_child(q1.root(), Axis::Child, "c");
        let mut q2 = Tpq::new("a", Axis::Descendant);
        q2.add_child(q2.root(), Axis::Child, "c");
        q2.add_child(q2.root(), Axis::Child, "b");
        assert_eq!(q1.canonical_key(), q2.canonical_key());
    }

    #[test]
    fn canonical_key_distinguishes_axis_and_preds() {
        let mut q1 = Tpq::new("a", Axis::Descendant);
        q1.add_child(q1.root(), Axis::Child, "b");
        let mut q2 = Tpq::new("a", Axis::Descendant);
        q2.add_child(q2.root(), Axis::Descendant, "b");
        assert_ne!(q1.canonical_key(), q2.canonical_key());
        let mut q3 = q1.clone();
        let b = q3.find_by_tag("b").unwrap();
        q3.add_predicate(b, Predicate::ft("x"));
        assert_ne!(q1.canonical_key(), q3.canonical_key());
    }

    #[test]
    fn canonical_key_tracks_distinguished() {
        let mut q1 = Tpq::new("a", Axis::Descendant);
        let b1 = q1.add_child(q1.root(), Axis::Child, "b");
        let mut q2 = q1.clone();
        q2.set_distinguished(b1);
        assert_ne!(q1.canonical_key(), q2.canonical_key());
    }

    #[test]
    fn relop_eval_and_flip_negate() {
        assert!(RelOp::Lt.eval_num(1.0, 2.0));
        assert!(!RelOp::Lt.eval_num(2.0, 2.0));
        assert!(RelOp::Le.eval_num(2.0, 2.0));
        assert!(RelOp::Ne.eval_num(1.0, 2.0));
        assert_eq!(RelOp::Lt.flip(), RelOp::Gt);
        assert_eq!(RelOp::Le.negate(), RelOp::Gt);
        assert_eq!(RelOp::Eq.negate(), RelOp::Ne);
    }

    #[test]
    fn descendants_listing() {
        let mut q = Tpq::new("a", Axis::Descendant);
        let b = q.add_child(q.root(), Axis::Child, "b");
        let c = q.add_child(b, Axis::Descendant, "c");
        let d = q.add_child(q.root(), Axis::Child, "d");
        let mut descs = q.descendants(q.root());
        descs.sort();
        assert_eq!(descs, vec![b, c, d]);
        assert_eq!(q.descendants(c), vec![]);
    }

    #[test]
    fn star_tag_matches_everything() {
        assert!(TagTest::Star.matches("anything"));
        assert!(TagTest::Name("car".into()).matches("car"));
        assert!(!TagTest::Name("car".into()).matches("cart"));
    }
}
