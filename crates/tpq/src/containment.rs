//! TPQ containment: `Q ⊆ P` (every answer of `Q` is an answer of `P`),
//! decided by searching for a **homomorphism** from `P` into `Q`.
//!
//! The paper (§3.1) delegates subsumption checks to "well-known XPath
//! containment algorithms [2, 18]". For the fragment the rules use —
//! conjunctive patterns with `pc`/`ad` edges, tag tests, and node
//! predicates — homomorphism is sound, and complete in the absence of `*`
//! wildcards (Miklau & Suciu, PODS 2002). With wildcards it stays sound
//! (never claims containment that does not hold), which is the safe
//! direction for rule applicability: a rule is applied only when its
//! condition provably subsumes the query.
//!
//! A homomorphism `h : P → Q` maps pattern nodes to pattern nodes such that
//! * tags are compatible (`P` star maps to anything; names must be equal),
//! * a `pc` edge of `P` maps to a `pc` edge of `Q`,
//! * an `ad` edge of `P` maps to any proper `Q`-tree path,
//! * every predicate of `h(x)`'s image set **implies** every predicate of
//!   `x` (see [`implies`]),
//! * the root anchoring is respected, and `P`'s distinguished node maps to
//!   `Q`'s distinguished node (answers must coincide).

use crate::ast::{Axis, Predicate, RelOp, TagTest, Tpq, TpqNodeId, Value};
use std::collections::HashMap;

/// Does satisfying `q` imply satisfying `p` (on the same node content)?
///
/// * `FtContains(a)` implies `FtContains(b)` when `b`'s token sequence is a
///   contiguous subsequence of `a`'s (an occurrence of "good condition"
///   contains an occurrence of "condition").
/// * Numeric comparisons follow interval logic (`x < 1500 ⇒ x < 2000`).
/// * String equality/disequality follow the obvious table.
pub fn implies(q: &Predicate, p: &Predicate) -> bool {
    match (q, p) {
        (Predicate::FtContains { phrase: qp }, Predicate::FtContains { phrase: pp }) => {
            let qt: Vec<String> = tokens(qp);
            let pt: Vec<String> = tokens(pp);
            !pt.is_empty() && contains_contiguous(&qt, &pt)
        }
        // A phrase guarantees each of its contiguous sub-sequences occurs
        // adjacently and in order — so it implies an `ftall` over a term
        // subset whose window the phrase length already satisfies.
        (
            Predicate::FtContains { phrase: qp },
            Predicate::FtAll {
                terms,
                window,
                ordered,
            },
        ) => {
            let qt = tokens(qp);
            let span_ok = window.is_none_or(|w| qt.len() as u32 <= w);
            span_ok
                && !terms.is_empty()
                && terms.iter().all(|t| {
                    let tt = tokens(t);
                    !tt.is_empty() && contains_contiguous(&qt, &tt)
                })
                && (!ordered || ordered_as_subsequence(&qt, terms))
        }
        (
            Predicate::FtAll {
                terms: qt,
                window: qw,
                ordered: qo,
            },
            Predicate::FtAll {
                terms: pt,
                window: pw,
                ordered: po,
            },
        ) => {
            // Same-or-tighter window, every required term present, and an
            // order requirement only satisfied by an ordered guarantee
            // over a prefix-order-preserving subset. Conservative: require
            // pt to be a subsequence of qt (ordered) or a subset
            // (unordered).
            let window_ok = match (qw, pw) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(b)) => a <= b,
            };
            let terms_ok = if *po {
                *qo && is_subsequence(qt, pt)
            } else {
                pt.iter().all(|t| qt.contains(t))
            };
            window_ok && terms_ok && !pt.is_empty()
        }
        // An `ftall` of a single term with no window is exactly a
        // containment requirement for that term.
        (
            Predicate::FtAll {
                terms,
                window: None,
                ..
            },
            Predicate::FtContains { phrase },
        ) if terms.len() == 1 => {
            let qt = tokens(&terms[0]);
            let pt = tokens(phrase);
            !pt.is_empty() && contains_contiguous(&qt, &pt)
        }
        (
            Predicate::Compare {
                op: qo,
                value: Value::Num(qc),
            },
            Predicate::Compare {
                op: po,
                value: Value::Num(pc),
            },
        ) => num_implies(*qo, *qc, *po, *pc),
        (
            Predicate::Compare {
                op: qo,
                value: Value::Str(qs),
            },
            Predicate::Compare {
                op: po,
                value: Value::Str(ps),
            },
        ) => match (qo, po) {
            (RelOp::Eq, RelOp::Eq) => qs.eq_ignore_ascii_case(ps),
            (RelOp::Eq, RelOp::Ne) => !qs.eq_ignore_ascii_case(ps),
            (RelOp::Ne, RelOp::Ne) => qs.eq_ignore_ascii_case(ps),
            _ => false,
        },
        _ => false,
    }
}

fn tokens(phrase: &str) -> Vec<String> {
    phrase
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

fn contains_contiguous(haystack: &[String], needle: &[String]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Do the terms appear in `phrase_tokens` in their listed order (as
/// non-overlapping contiguous runs)?
fn ordered_as_subsequence(phrase_tokens: &[String], terms: &[String]) -> bool {
    let mut from = 0usize;
    for term in terms {
        let tt = tokens(term);
        if tt.is_empty() {
            return false;
        }
        let mut found = None;
        let hay = &phrase_tokens[from.min(phrase_tokens.len())..];
        for (i, w) in hay.windows(tt.len()).enumerate() {
            if w == tt.as_slice() {
                found = Some(from + i + tt.len());
                break;
            }
        }
        match found {
            Some(next) => from = next,
            None => return false,
        }
    }
    true
}

/// Is `needle` a subsequence of `haystack` (element-wise)?
fn is_subsequence(haystack: &[String], needle: &[String]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// `x qo qc` implies `x po pc` for all numeric `x`?
fn num_implies(qo: RelOp, qc: f64, po: RelOp, pc: f64) -> bool {
    match (qo, po) {
        (RelOp::Eq, _) => po.eval_num(qc, pc),
        (RelOp::Lt, RelOp::Lt) => qc <= pc,
        (RelOp::Lt, RelOp::Le) => qc <= pc, // x<q ⇒ x<=p when q<=p (x < q <= p)
        (RelOp::Le, RelOp::Le) => qc <= pc,
        (RelOp::Le, RelOp::Lt) => qc < pc,
        (RelOp::Gt, RelOp::Gt) => qc >= pc,
        (RelOp::Gt, RelOp::Ge) => qc >= pc,
        (RelOp::Ge, RelOp::Ge) => qc >= pc,
        (RelOp::Ge, RelOp::Gt) => qc > pc,
        (RelOp::Lt, RelOp::Ne) => qc <= pc,
        (RelOp::Le, RelOp::Ne) => qc < pc,
        (RelOp::Gt, RelOp::Ne) => qc >= pc,
        (RelOp::Ge, RelOp::Ne) => qc > pc,
        (RelOp::Ne, RelOp::Ne) => qc == pc,
        _ => false,
    }
}

/// Is there a homomorphism from `p` into `q`? I.e., does `q ⊆ p` hold
/// (soundly; see module docs)?
pub fn contains(p: &Tpq, q: &Tpq) -> bool {
    Matcher {
        p,
        q,
        memo: HashMap::new(),
    }
    .root_feasible()
}

/// Two patterns are equivalent when each contains the other.
pub fn equivalent(a: &Tpq, b: &Tpq) -> bool {
    contains(a, b) && contains(b, a)
}

struct Matcher<'a> {
    p: &'a Tpq,
    q: &'a Tpq,
    memo: HashMap<(TpqNodeId, TpqNodeId), bool>,
}

impl Matcher<'_> {
    fn root_feasible(&mut self) -> bool {
        // Candidate images for p's root, honoring the root anchoring: a
        // Child-anchored p-root must map to q's root and q must also be
        // Child-anchored; a Descendant-anchored p-root may map anywhere.
        let p_root = self.p.root();
        let q_nodes: Vec<TpqNodeId> = match self.p.node(p_root).axis {
            Axis::Child => {
                if self.q.node(self.q.root()).axis == Axis::Child {
                    vec![self.q.root()]
                } else {
                    return false;
                }
            }
            Axis::Descendant => self.q.node_ids().collect(),
        };
        q_nodes
            .into_iter()
            .any(|qn| self.can_map_distinguished(p_root, qn))
    }

    /// Like [`Self::can_map`], but additionally requires that within the
    /// embedding, p's distinguished node maps exactly onto q's
    /// distinguished node (answers must coincide). Because homomorphisms
    /// need not be injective, sibling subtrees embed independently; only
    /// the child on the path towards p's distinguished node carries the
    /// distinguished obligation downward.
    fn can_map_distinguished(&mut self, pn: TpqNodeId, qn: TpqNodeId) -> bool {
        let pd = self.p.distinguished();
        let qd = self.q.distinguished();
        if pn == pd {
            // The distinguished node itself must land on qd; the rest of
            // its subtree embeds ordinarily below qd.
            return qn == qd && self.can_map(pn, qn);
        }
        if !self.node_compatible(pn, qn) {
            return false;
        }
        // pd must lie strictly below pn here; find the child on its path.
        let Some(on_path) = self.child_towards(pn, pd) else {
            // pd is not in pn's subtree — no embedding from this root can
            // place it (pn is p's root in practice, which always contains
            // pd, so this is unreachable; stay safe regardless).
            return false;
        };
        let p_children = self.p.node(pn).children.clone();
        p_children.into_iter().all(|pc| {
            let axis = self.p.node(pc).axis;
            let candidates: Vec<TpqNodeId> = match axis {
                Axis::Child => self
                    .q
                    .node(qn)
                    .children
                    .iter()
                    .copied()
                    .filter(|&qc| self.q.node(qc).axis == Axis::Child)
                    .collect(),
                Axis::Descendant => self.q.descendants(qn),
            };
            if pc == on_path {
                candidates
                    .into_iter()
                    .any(|qc| self.can_map_distinguished(pc, qc))
            } else {
                candidates.into_iter().any(|qc| self.can_map(pc, qc))
            }
        })
    }

    /// The child of `pn` whose subtree contains `target` (or is `target`).
    fn child_towards(&self, pn: TpqNodeId, target: TpqNodeId) -> Option<TpqNodeId> {
        let mut cur = target;
        loop {
            let parent = self.p.node(cur).parent?;
            if parent == pn {
                return Some(cur);
            }
            cur = parent;
        }
    }

    /// Tag + predicate compatibility of a single pair (no structure).
    fn node_compatible(&mut self, pn: TpqNodeId, qn: TpqNodeId) -> bool {
        let p_node = self.p.node(pn);
        let q_node = self.q.node(qn);
        let tag_ok = match (&p_node.tag, &q_node.tag) {
            (TagTest::Star, _) => true,
            (TagTest::Name(a), TagTest::Name(b)) => a == b,
            (TagTest::Name(_), TagTest::Star) => false,
        };
        if !tag_ok {
            return false;
        }
        p_node
            .predicates
            .iter()
            .all(|pp| q_node.predicates.iter().any(|qp| implies(qp, pp)))
    }

    /// Can p-subtree rooted at `pn` embed with `pn ↦ qn`?
    fn can_map(&mut self, pn: TpqNodeId, qn: TpqNodeId) -> bool {
        if let Some(&r) = self.memo.get(&(pn, qn)) {
            return r;
        }
        // Seed optimistically to cut (impossible in a tree, but keeps the
        // memo total); overwritten with the real answer below.
        let result = self.compute_can_map(pn, qn);
        self.memo.insert((pn, qn), result);
        result
    }

    fn compute_can_map(&mut self, pn: TpqNodeId, qn: TpqNodeId) -> bool {
        if !self.node_compatible(pn, qn) {
            return false;
        }
        let p_children = self.p.node(pn).children.clone();
        p_children.into_iter().all(|pc| {
            let axis = self.p.node(pc).axis;
            let candidates: Vec<TpqNodeId> = match axis {
                Axis::Child => self
                    .q
                    .node(qn)
                    .children
                    .iter()
                    .copied()
                    .filter(|&qc| self.q.node(qc).axis == Axis::Child)
                    .collect(),
                Axis::Descendant => self.q.descendants(qn),
            };
            candidates.into_iter().any(|qc| self.can_map(pc, qc))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tpq;

    fn q(s: &str) -> Tpq {
        parse_tpq(s).unwrap()
    }

    #[test]
    fn identical_patterns_contain_each_other() {
        let a = q(r#"//car[price < 2000]"#);
        assert!(contains(&a, &a));
        assert!(equivalent(&a, &a));
    }

    #[test]
    fn fewer_constraints_contain_more() {
        let general = q("//car");
        let specific = q(r#"//car[price < 2000]"#);
        assert!(contains(&general, &specific));
        assert!(!contains(&specific, &general));
    }

    #[test]
    fn ad_edge_contains_pc_edge() {
        let ad = q("//car//price");
        let pc = q("//car/price");
        assert!(contains(&ad, &pc));
        assert!(!contains(&pc, &ad));
    }

    #[test]
    fn ad_edge_contains_longer_paths() {
        let short = q("//dealer//price");
        let long = q("//dealer/car/price");
        assert!(contains(&short, &long));
        assert!(!contains(&long, &short));
    }

    #[test]
    fn numeric_interval_containment() {
        let wide = q("//car[price < 2000]");
        let narrow = q("//car[price < 1500]");
        assert!(contains(&wide, &narrow));
        assert!(!contains(&narrow, &wide));
        let eq = q("//car[price = 1000]");
        assert!(contains(&wide, &eq));
        let ge = q("//car[price >= 100]");
        assert!(!contains(&wide, &ge));
    }

    #[test]
    fn keyword_subphrase_containment() {
        let word = q(r#"//car[ftcontains(., "condition")]"#);
        let phrase = q(r#"//car[ftcontains(., "good condition")]"#);
        assert!(contains(&word, &phrase));
        assert!(!contains(&phrase, &word));
    }

    #[test]
    fn star_maps_to_anything() {
        let star = q("//*[price < 10]");
        let car = q("//car[price < 10]");
        assert!(contains(&star, &car));
        assert!(!contains(&car, &star));
    }

    #[test]
    fn distinguished_node_must_align() {
        // Same tree shape, different answer node.
        let a = q("//dealer/car"); // answers: car
        let mut b = q("//dealer/car");
        b.set_distinguished(b.root()); // answers: dealer
        assert!(contains(&a, &a));
        assert!(!contains(&a, &b));
        assert!(!contains(&b, &a));
    }

    #[test]
    fn branching_pattern_containment() {
        let general = q(r#"//car[.//description]"#);
        let specific =
            q(r#"//car[.//description[ftcontains(., "good condition")] and price < 2000]"#);
        assert!(contains(&general, &specific));
        assert!(!contains(&specific, &general));
    }

    #[test]
    fn sibling_order_is_irrelevant() {
        let a = q("//car[./x and ./y]");
        let b = q("//car[./y and ./x]");
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn root_anchoring_respected() {
        let rooted = q("/dealer/car");
        let floating = q("//dealer/car");
        // floating contains rooted (every rooted match is a floating match)
        assert!(contains(&floating, &rooted));
        assert!(!contains(&rooted, &floating));
    }

    #[test]
    fn predicate_implication_table() {
        use Predicate as P;
        // numeric
        assert!(implies(
            &P::cmp_num(RelOp::Lt, 1500.0),
            &P::cmp_num(RelOp::Lt, 2000.0)
        ));
        assert!(implies(
            &P::cmp_num(RelOp::Eq, 5.0),
            &P::cmp_num(RelOp::Ge, 5.0)
        ));
        assert!(implies(
            &P::cmp_num(RelOp::Eq, 5.0),
            &P::cmp_num(RelOp::Ne, 6.0)
        ));
        assert!(implies(
            &P::cmp_num(RelOp::Gt, 10.0),
            &P::cmp_num(RelOp::Ge, 10.0)
        ));
        assert!(implies(
            &P::cmp_num(RelOp::Le, 9.0),
            &P::cmp_num(RelOp::Lt, 10.0)
        ));
        assert!(!implies(
            &P::cmp_num(RelOp::Le, 10.0),
            &P::cmp_num(RelOp::Lt, 10.0)
        ));
        assert!(implies(
            &P::cmp_num(RelOp::Lt, 10.0),
            &P::cmp_num(RelOp::Ne, 10.0)
        ));
        assert!(!implies(
            &P::cmp_num(RelOp::Lt, 11.0),
            &P::cmp_num(RelOp::Ne, 10.0)
        ));
        // strings
        assert!(implies(
            &P::cmp_str(RelOp::Eq, "Red"),
            &P::cmp_str(RelOp::Eq, "red")
        ));
        assert!(implies(
            &P::cmp_str(RelOp::Eq, "red"),
            &P::cmp_str(RelOp::Ne, "blue")
        ));
        assert!(!implies(
            &P::cmp_str(RelOp::Eq, "red"),
            &P::cmp_str(RelOp::Ne, "red")
        ));
        // keyword vs compare never imply each other
        assert!(!implies(&P::ft("red"), &P::cmp_str(RelOp::Eq, "red")));
        assert!(!implies(&P::cmp_str(RelOp::Eq, "red"), &P::ft("red")));
        // keyword case-insensitive
        assert!(implies(&P::ft("Good Condition"), &P::ft("good condition")));
    }

    #[test]
    fn ftall_implication_table() {
        use Predicate as P;
        let all = |t: &[&str], w: Option<u32>, o: bool| P::ft_all(t, w, o);
        // phrase implies ftall over its words
        assert!(implies(
            &P::ft("good condition"),
            &all(&["good", "condition"], None, false)
        ));
        assert!(implies(
            &P::ft("good condition"),
            &all(&["good", "condition"], Some(2), true)
        ));
        assert!(implies(
            &P::ft("good condition"),
            &all(&["condition", "good"], None, false)
        ));
        assert!(!implies(
            &P::ft("good condition"),
            &all(&["condition", "good"], None, true)
        ));
        assert!(!implies(
            &P::ft("good condition"),
            &all(&["good", "cheap"], None, false)
        ));
        assert!(!implies(
            &P::ft("good old condition"),
            &all(&["good", "condition"], Some(2), false)
        ));
        // ftall implies weaker ftall
        assert!(implies(
            &all(&["a", "b"], Some(3), true),
            &all(&["a", "b"], Some(5), true)
        ));
        assert!(implies(
            &all(&["a", "b"], Some(3), true),
            &all(&["b"], None, false)
        ));
        assert!(!implies(
            &all(&["a", "b"], Some(5), true),
            &all(&["a", "b"], Some(3), true)
        ));
        assert!(!implies(
            &all(&["a", "b"], None, false),
            &all(&["a", "b"], None, true)
        ));
        assert!(implies(
            &all(&["a", "b"], None, true),
            &all(&["a", "b"], None, false)
        ));
        // single-term windowless ftall == ftcontains
        assert!(implies(
            &all(&["good condition"], None, false),
            &P::ft("condition")
        ));
        assert!(!implies(
            &all(&["good", "condition"], None, false),
            &P::ft("condition")
        ));
    }

    #[test]
    fn ftall_in_pattern_containment() {
        let loose = q(r#"//car[ftall(., "good", "cheap")]"#);
        let tight = q(r#"//car[ftall(., "good", "cheap" window 4 ordered)]"#);
        assert!(contains(&loose, &tight));
        assert!(!contains(&tight, &loose));
    }

    #[test]
    fn deep_query_subsumes_rule_condition() {
        // The paper's rule ρ1 condition: pc(car, description) &
        // ftcontains(description, "low mileage") — applicable to query Q.
        // Note Q in Fig. 2 uses an ad edge in text form `.//description`;
        // with a pc edge in the query, the pc condition subsumes it.
        let cond = q(r#"//car[./description[ftcontains(., "low mileage")]]"#);
        let query = q(
            r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and price < 2000]"#,
        );
        assert!(contains(&cond, &query));
    }
}
