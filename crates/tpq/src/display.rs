//! Rendering a [`Tpq`] back to the textual syntax of [`crate::parse`].
//!
//! The main path runs from the root to the distinguished node; all other
//! branches render as predicates. `parse_tpq(render(q))` is equivalent to
//! `q` (a property test in the crate checks this).

use crate::ast::{Predicate, Tpq, TpqNodeId};
use std::fmt;

impl fmt::Display for Tpq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Nodes on the root → distinguished path.
        let mut path = vec![self.distinguished()];
        while let Some(p) = self.node(*path.last().expect("nonempty")).parent {
            path.push(p);
        }
        path.reverse();
        for (i, &id) in path.iter().enumerate() {
            let n = self.node(id);
            write!(f, "{}{}", n.axis, n.tag)?;
            let next_on_path = path.get(i + 1).copied();
            let mut parts: Vec<String> = n.predicates.iter().map(render_pred).collect();
            for &c in &n.children {
                if Some(c) != next_on_path {
                    parts.push(render_branch(self, c));
                }
            }
            if !parts.is_empty() {
                write!(f, "[{}]", parts.join(" and "))?;
            }
        }
        Ok(())
    }
}

fn render_pred(p: &Predicate) -> String {
    // All predicate variants render parseably via their Display impl.
    p.to_string()
}

/// Render the branch rooted at `id` as a relative-path predicate.
fn render_branch(t: &Tpq, id: TpqNodeId) -> String {
    let n = t.node(id);
    let mut s = format!(".{}{}", n.axis, n.tag);
    let mut parts: Vec<String> = n.predicates.iter().map(render_pred).collect();
    parts.extend(n.children.iter().map(|&c| render_branch(t, c)));
    if !parts.is_empty() {
        s.push('[');
        s.push_str(&parts.join(" and "));
        s.push(']');
    }
    s
}

#[cfg(test)]
mod tests {
    use crate::containment::equivalent;
    use crate::parse::parse_tpq;

    fn roundtrip_equivalent(src: &str) {
        let q = parse_tpq(src).unwrap();
        let rendered = q.to_string();
        let q2 = parse_tpq(&rendered).unwrap_or_else(|e| panic!("rendered {rendered:?}: {e}"));
        assert!(equivalent(&q, &q2), "{src} → {rendered} not equivalent");
    }

    #[test]
    fn renders_single_node() {
        let q = parse_tpq("//car").unwrap();
        assert_eq!(q.to_string(), "//car");
    }

    #[test]
    fn renders_predicates_and_branches() {
        let q = parse_tpq(r#"//car[./price < 2000 and ftcontains(., "good")]"#).unwrap();
        let s = q.to_string();
        assert!(s.contains("price"), "{s}");
        assert!(s.contains("good"), "{s}");
        roundtrip_equivalent(r#"//car[./price < 2000 and ftcontains(., "good")]"#);
    }

    #[test]
    fn renders_main_path_to_distinguished() {
        let q =
            parse_tpq(r#"//article[about(.//au, "Han")]//abs[about(., "data mining")]"#).unwrap();
        let s = q.to_string();
        assert!(s.starts_with("//article"), "{s}");
        assert!(s.contains("//abs"), "{s}");
        roundtrip_equivalent(r#"//article[about(.//au, "Han")]//abs[about(., "data mining")]"#);
    }

    #[test]
    fn roundtrips_assorted_queries() {
        for src in [
            "//car",
            "/dealer/car/price",
            r#"//car[color = "red"]"#,
            "//a[./b[ftcontains(., \"x\")]/c > 5]",
            "//person[business ftcontains \"Yes\"]",
            "//*[price < 10]",
            "//a[.//b and ./c and ftcontains(., \"k w\")]",
            r#"//car[ftall(., "good", "cheap" window 5 ordered)]"#,
            r#"//car[ftall(./d, "a", "b")]"#,
        ] {
            roundtrip_equivalent(src);
        }
    }
}
