//! # pimento-tpq
//!
//! Extended tree pattern queries, the query abstraction of the PIMENTO
//! paper (§3): rooted patterns with `pc`/`ad` edges, a distinguished answer
//! node, constraint predicates on node content, and `ftcontains` keyword
//! predicates. This crate provides:
//!
//! * the [`ast`] itself with structural editing (what scoping rules need),
//! * a [`parse`]r for an XPath/NEXI-like textual syntax,
//! * sound homomorphism-based [`containment`] (the subsumption check that
//!   decides rule applicability),
//! * leaf-pruning minimization ([`minimize()`](minimize::minimize), reference \[2\] of the paper),
//! * a [`std::fmt::Display`] renderer that round-trips through the parser.
//!
//! ```
//! use pimento_tpq::{parse_tpq, contains};
//!
//! let query = parse_tpq(
//!     r#"//car[.//description[ftcontains(., "good condition")] and ./price < 2000]"#,
//! ).unwrap();
//! let rule_condition = parse_tpq(r#"//car[.//description]"#).unwrap();
//! // The query subsumes the condition, so a rule guarded by it applies.
//! assert!(contains(&rule_condition, &query));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod containment;
pub mod display;
pub mod minimize;
pub mod parse;

pub use ast::{Axis, Predicate, RelOp, TagTest, Tpq, TpqNode, TpqNodeId, Value};
pub use containment::{contains, equivalent, implies};
pub use minimize::{minimize, minimized, simplify_predicates};
pub use parse::{parse_tpq, ParseError};

#[cfg(test)]
mod proptests {
    use crate::ast::{Axis, Predicate, RelOp, Tpq};
    use crate::containment::{contains, equivalent};
    use crate::minimize::minimized;
    use crate::parse::parse_tpq;
    use proptest::prelude::*;

    const TAGS: &[&str] = &["a", "b", "c", "car", "price"];
    const WORDS: &[&str] = &["good", "condition", "low", "mileage", "red"];

    /// (parent index, ad axis?, tag index, optional (keyword?, value)).
    type NodeRecipe = (usize, bool, usize, Option<(bool, usize)>);

    /// Build an arbitrary small pattern from a recipe of (parent index,
    /// axis flag, tag index, optional predicate).
    fn build(recipe: &[NodeRecipe]) -> Tpq {
        let mut q = Tpq::new(TAGS[0], Axis::Descendant);
        for &(parent, ad, tag, pred) in recipe {
            let ids: Vec<_> = q.node_ids().collect();
            let p = ids[parent % ids.len()];
            let axis = if ad { Axis::Descendant } else { Axis::Child };
            let id = q.add_child(p, axis, TAGS[tag % TAGS.len()]);
            if let Some((kw, w)) = pred {
                if kw {
                    q.add_predicate(id, Predicate::ft(WORDS[w % WORDS.len()]));
                } else {
                    q.add_predicate(id, Predicate::cmp_num(RelOp::Lt, (w % 10) as f64 * 100.0));
                }
            }
        }
        q
    }

    fn recipe_strategy() -> impl Strategy<Value = Vec<NodeRecipe>> {
        proptest::collection::vec(
            (
                0usize..8,
                any::<bool>(),
                0usize..TAGS.len(),
                proptest::option::of((any::<bool>(), 0usize..8)),
            ),
            0..6,
        )
    }

    proptest! {
        /// Containment is reflexive.
        #[test]
        fn containment_reflexive(r in recipe_strategy()) {
            let q = build(&r);
            prop_assert!(contains(&q, &q));
        }

        /// Adding a constraint to a pattern keeps it contained in the
        /// original (specialization narrows).
        #[test]
        fn specialization_is_contained(r in recipe_strategy(), tag in 0usize..TAGS.len()) {
            let q = build(&r);
            let mut specialized = q.clone();
            specialized.add_child(specialized.root(), Axis::Child, TAGS[tag]);
            prop_assert!(contains(&q, &specialized));
        }

        /// Minimization preserves equivalence.
        #[test]
        fn minimization_preserves_equivalence(r in recipe_strategy()) {
            let q = build(&r);
            let m = minimized(&q);
            prop_assert!(equivalent(&q, &m), "{} vs {}", q, m);
            prop_assert!(m.len() <= q.len());
        }

        /// Display → parse round-trips to an equivalent pattern.
        #[test]
        fn display_parse_roundtrip(r in recipe_strategy()) {
            let q = build(&r);
            let rendered = q.to_string();
            let parsed = parse_tpq(&rendered).unwrap();
            prop_assert!(equivalent(&q, &parsed), "{rendered}");
        }

        /// Specialization chains stay contained (transitivity witness).
        #[test]
        fn containment_transitive(r in recipe_strategy()) {
            let c = build(&r);
            // b = c plus a branch; a = b plus a branch. a ⊆ b ⊆ c.
            let mut b = c.clone();
            b.add_child(b.root(), Axis::Child, "extra1");
            let mut a = b.clone();
            a.add_child(a.root(), Axis::Descendant, "extra2");
            prop_assert!(contains(&c, &b));
            prop_assert!(contains(&b, &a));
            prop_assert!(contains(&c, &a));
        }
    }
}
