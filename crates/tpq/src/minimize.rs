//! TPQ minimization: removing redundant pattern nodes.
//!
//! The paper cites "Minimization of Tree Pattern Queries" (Amer-Yahia et
//! al., SIGMOD 2001, reference \[2\]) as background machinery. Query
//! personalization makes queries *grow* — every applied `add` scoping rule
//! grafts predicates and branches — so minimizing each flock member before
//! evaluation removes work the structural joins would otherwise repeat.
//!
//! The algorithm is the classical leaf-pruning fixpoint: a pattern is
//! minimal iff no leaf can be dropped without changing its meaning, and
//! testing a drop is one containment check (`P ⊆ P∖{leaf}` always holds;
//! redundancy is `P∖{leaf} ⊆ P`).

use crate::ast::{Tpq, TpqNodeId};
use crate::containment::contains;

/// Minimize `q` in place; returns the number of nodes removed.
///
/// Never removes the root, the distinguished node, an ancestor of the
/// distinguished node, or a node carrying keyword predicates (keyword
/// predicates contribute to scores, so two structurally redundant keyword
/// nodes are still not interchangeable).
pub fn minimize(q: &mut Tpq) -> usize {
    let mut removed = 0;
    while let Some(leaf) = find_redundant_leaf(q) {
        q.remove_leaf(leaf);
        removed += 1;
    }
    removed
}

/// Return a minimized clone, leaving `q` untouched.
pub fn minimized(q: &Tpq) -> Tpq {
    let mut out = q.clone();
    minimize(&mut out);
    out
}

fn find_redundant_leaf(q: &Tpq) -> Option<TpqNodeId> {
    for id in q.node_ids() {
        if id == q.root() || id == q.distinguished() {
            continue;
        }
        let n = q.node(id);
        if !n.children.is_empty() {
            continue;
        }
        if n.predicates.iter().any(|p| p.is_keyword()) {
            continue;
        }
        let mut candidate = q.clone();
        candidate.remove_leaf(id);
        // Dropping constraints can only widen: q ⊆ candidate always.
        // Redundant iff candidate ⊆ q, i.e. q's structure is still implied.
        if contains(q, &candidate) {
            return Some(id);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use crate::parse::parse_tpq;

    #[test]
    fn duplicate_branch_is_removed() {
        let mut q = parse_tpq("//car[./price and ./price]").unwrap();
        let before = q.clone();
        let removed = minimize(&mut q);
        assert_eq!(removed, 1);
        assert_eq!(q.len(), 2);
        assert!(equivalent(&before, &q));
    }

    #[test]
    fn ad_branch_subsumed_by_pc_branch() {
        // .//price is implied by ./price
        let mut q = parse_tpq("//car[./price and .//price]").unwrap();
        minimize(&mut q);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn constrained_branch_subsumes_unconstrained() {
        let mut q = parse_tpq("//car[./price < 100 and ./price]").unwrap();
        let before = q.clone();
        minimize(&mut q);
        assert_eq!(q.len(), 2);
        assert!(equivalent(&before, &q));
        // The surviving node keeps the constraint.
        let p = q.find_by_tag("price").unwrap();
        assert_eq!(q.node(p).predicates.len(), 1);
    }

    #[test]
    fn non_redundant_pattern_untouched() {
        let mut q = parse_tpq("//car[./price < 100 and ./color]").unwrap();
        assert_eq!(minimize(&mut q), 0);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn keyword_nodes_never_removed() {
        // Structurally redundant, but both carry score-contributing
        // keyword predicates.
        let mut q =
            parse_tpq(r#"//car[./d[ftcontains(., "x")] and ./d[ftcontains(., "x")]]"#).unwrap();
        assert_eq!(minimize(&mut q), 0);
    }

    #[test]
    fn distinguished_node_never_removed() {
        let mut q = parse_tpq("//car/price").unwrap();
        // price is distinguished; a duplicate sibling would fold into it,
        // but the distinguished node itself must survive.
        assert_eq!(minimize(&mut q), 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn minimized_clone_leaves_original() {
        let q = parse_tpq("//car[./price and ./price]").unwrap();
        let m = minimized(&q);
        assert_eq!(q.len(), 3);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn chain_of_redundancy_resolves_fully() {
        let mut q = parse_tpq("//a[./b and ./b and .//b]").unwrap();
        minimize(&mut q);
        assert_eq!(q.len(), 2);
    }
}

/// Predicate-level simplification: within each node, drop any predicate
/// implied by another predicate on the same node (`price < 3000` is
/// implied by `price < 2000`; `ftcontains "condition"` by
/// `ftcontains "good condition"`). Complements the node-level leaf
/// pruning; returns the number of predicates removed.
///
/// Keyword predicates are *score contributors*, so dropping an implied
/// keyword changes `S`; this pass therefore only drops implied
/// **comparison** predicates by default. Pass `drop_keywords = true` for
/// pure boolean-matching contexts (e.g. rule conditions).
pub fn simplify_predicates(q: &mut Tpq, drop_keywords: bool) -> usize {
    let mut removed = 0;
    for id in q.node_ids().collect::<Vec<_>>() {
        loop {
            let preds = &q.node(id).predicates;
            let redundant = preds.iter().enumerate().position(|(i, p)| {
                if !drop_keywords && p.is_keyword() {
                    return false;
                }
                preds.iter().enumerate().any(|(j, other)| {
                    i != j
                        && contains_pred_implies(other, p)
                        // Symmetric implication (equivalent predicates):
                        // keep the first occurrence only.
                        && (!contains_pred_implies(p, other) || j < i)
                })
            });
            match redundant {
                Some(i) => {
                    q.remove_predicate(id, i);
                    removed += 1;
                }
                None => break,
            }
        }
    }
    removed
}

use crate::containment::implies as contains_pred_implies;

#[cfg(test)]
mod simplify_tests {
    use super::*;
    use crate::ast::{Predicate, RelOp};
    use crate::containment::equivalent;
    use crate::parse::parse_tpq;

    #[test]
    fn implied_comparisons_dropped() {
        let mut q = parse_tpq("//car[./price[. < 2000 and . < 3000 and . > 10]]").unwrap();
        let before = q.clone();
        let removed = simplify_predicates(&mut q, false);
        assert_eq!(removed, 1);
        let p = q.find_by_tag("price").unwrap();
        assert_eq!(q.node(p).predicates.len(), 2);
        assert!(q
            .node(p)
            .predicates
            .contains(&Predicate::cmp_num(RelOp::Lt, 2000.0)));
        assert!(equivalent(&before, &q));
    }

    #[test]
    fn keyword_predicates_kept_by_default() {
        let mut q =
            parse_tpq(r#"//car[ftcontains(., "good condition") and ftcontains(., "condition")]"#)
                .unwrap();
        assert_eq!(simplify_predicates(&mut q, false), 0);
        assert_eq!(simplify_predicates(&mut q, true), 1);
        assert!(matches!(
            &q.node(q.root()).predicates[0],
            Predicate::FtContains { phrase } if phrase == "good condition"
        ));
    }

    #[test]
    fn equivalent_duplicates_keep_one() {
        let mut q = parse_tpq("//car[./price[. < 2000 and . < 2000]]").unwrap();
        assert_eq!(simplify_predicates(&mut q, false), 1);
        let p = q.find_by_tag("price").unwrap();
        assert_eq!(q.node(p).predicates.len(), 1);
    }

    #[test]
    fn unrelated_predicates_untouched() {
        let mut q = parse_tpq("//car[./price[. < 2000 and . > 100]]").unwrap();
        assert_eq!(simplify_predicates(&mut q, false), 0);
    }
}
