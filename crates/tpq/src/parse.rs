//! Textual syntax for extended TPQs: an XPath-like fragment with
//! `ftcontains` and NEXI's `about` (the paper's INEX topics are NEXI).
//!
//! Grammar (informal):
//!
//! ```text
//! query    := ('/'|'//') step ( ('/'|'//') step )*
//! step     := (NAME | '*') ( '[' pred ('and' pred)* ']' )?
//! pred     := target 'ftcontains' STRING
//!           | 'ftcontains' '(' target ',' STRING ')'
//!           | 'about' '(' target ',' STRING ')'
//!           | target relop (NUMBER | STRING)
//!           | target                               -- existence
//! target   := '.' | relpath
//! relpath  := '.'? ('/'|'//')? step ( ('/'|'//') step )*
//! relop    := '<' | '<=' | '>' | '>=' | '=' | '!='
//! ```
//!
//! The **distinguished node** is the last step of the main path, matching
//! XPath's result semantics. `about(x, "p")` is sugar for
//! `ftcontains(x, "p")`. A relpath step inside a predicate grows the
//! pattern with `pc`/`ad` edges (leading `//` inside a predicate means
//! descendant, `/` or nothing means child).

use crate::ast::{Axis, Predicate, RelOp, Tpq, TpqNodeId, Value};
use std::fmt;

/// Parse error with byte offset into the query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a query string into a [`Tpq`].
pub fn parse_tpq(input: &str) -> Result<Tpq, ParseError> {
    Parser::new(input).parse_query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Slash,
    DoubleSlash,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Dot,
    And,
    Star,
    Name(String),
    Str(String),
    Num(f64),
    Op(RelOp),
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn new(input: &str) -> Self {
        Parser {
            toks: lex(input),
            pos: 0,
            input_len: input.len(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.offset(),
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn axis(&mut self) -> Option<Axis> {
        match self.peek() {
            Some(Tok::DoubleSlash) => {
                self.pos += 1;
                Some(Axis::Descendant)
            }
            Some(Tok::Slash) => {
                self.pos += 1;
                Some(Axis::Child)
            }
            _ => None,
        }
    }

    fn step_name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Name(n)) => Ok(n),
            Some(Tok::Star) => Ok("*".to_string()),
            other => self.err(format!("expected step name, found {other:?}")),
        }
    }

    fn parse_query(&mut self) -> Result<Tpq, ParseError> {
        let axis = match self.axis() {
            Some(a) => a,
            None => Axis::Descendant, // allow "car[...]" meaning "//car[...]"
        };
        let name = self.step_name()?;
        let mut tpq = if name == "*" {
            Tpq::star(axis)
        } else {
            Tpq::new(name, axis)
        };
        let mut current = tpq.root();
        self.maybe_predicates(&mut tpq, current)?;
        while let Some(axis) = self.axis() {
            let name = self.step_name()?;
            current = tpq.add_child(current, axis, name);
            self.maybe_predicates(&mut tpq, current)?;
        }
        tpq.set_distinguished(current);
        if self.peek().is_some() {
            return self.err("trailing tokens after query");
        }
        Ok(tpq)
    }

    fn maybe_predicates(&mut self, tpq: &mut Tpq, node: TpqNodeId) -> Result<(), ParseError> {
        while self.peek() == Some(&Tok::LBracket) {
            self.pos += 1;
            loop {
                self.parse_pred(tpq, node)?;
                if self.peek() == Some(&Tok::And) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect(&Tok::RBracket, "']'")?;
        }
        Ok(())
    }

    /// Parse one predicate inside `[...]` and attach it at/under `node`.
    fn parse_pred(&mut self, tpq: &mut Tpq, node: TpqNodeId) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Name(n)) if n == "ftcontains" || n == "about" => {
                self.pos += 1;
                self.expect(&Tok::LParen, "'('")?;
                let target = self.parse_target(tpq, node)?;
                self.expect(&Tok::Comma, "','")?;
                let phrase = self.parse_string()?;
                self.expect(&Tok::RParen, "')'")?;
                tpq.add_predicate(target, Predicate::ft(phrase));
                Ok(())
            }
            Some(Tok::Name(n)) if n == "ftall" => {
                self.pos += 1;
                self.expect(&Tok::LParen, "'('")?;
                let target = self.parse_target(tpq, node)?;
                let mut terms = Vec::new();
                while self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    terms.push(self.parse_string()?);
                }
                if terms.is_empty() {
                    return self.err("ftall needs at least one term");
                }
                let mut window = None;
                let mut ordered = false;
                loop {
                    match self.peek() {
                        Some(Tok::Name(w)) if w == "window" => {
                            self.pos += 1;
                            match self.bump() {
                                Some(Tok::Num(n)) if n >= 1.0 => window = Some(n as u32),
                                other => {
                                    return self
                                        .err(format!("expected window size, found {other:?}"))
                                }
                            }
                        }
                        Some(Tok::Name(o)) if o == "ordered" => {
                            self.pos += 1;
                            ordered = true;
                        }
                        _ => break,
                    }
                }
                self.expect(&Tok::RParen, "')'")?;
                tpq.add_predicate(
                    target,
                    Predicate::FtAll {
                        terms,
                        window,
                        ordered,
                    },
                );
                Ok(())
            }
            _ => {
                let target = self.parse_target(tpq, node)?;
                match self.peek() {
                    Some(Tok::Op(op)) => {
                        let op = *op;
                        self.pos += 1;
                        let value = match self.bump() {
                            Some(Tok::Num(n)) => Value::Num(n),
                            Some(Tok::Str(s)) => Value::Str(s),
                            other => {
                                return self
                                    .err(format!("expected comparison constant, found {other:?}"))
                            }
                        };
                        tpq.add_predicate(target, Predicate::Compare { op, value });
                        Ok(())
                    }
                    Some(Tok::Name(n)) if n == "ftcontains" => {
                        self.pos += 1;
                        let phrase = self.parse_string()?;
                        tpq.add_predicate(target, Predicate::ft(phrase));
                        Ok(())
                    }
                    // bare relpath = existence predicate; the structural
                    // nodes added while parsing the target are the predicate
                    _ => Ok(()),
                }
            }
        }
    }

    /// Parse `.` or a relative path, growing the pattern; returns the node
    /// the path lands on.
    fn parse_target(&mut self, tpq: &mut Tpq, node: TpqNodeId) -> Result<TpqNodeId, ParseError> {
        let mut current = node;
        let mut saw_dot = false;
        if self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
            saw_dot = true;
        }
        let mut first = true;
        loop {
            let axis = match self.axis() {
                Some(a) => a,
                None if first && !saw_dot => {
                    // bare name: implicit child step
                    match self.peek() {
                        Some(Tok::Name(n)) if n != "ftcontains" && n != "about" && n != "ftall" => {
                            Axis::Child
                        }
                        _ => break,
                    }
                }
                None => break,
            };
            let name = self.step_name()?;
            current = tpq.add_child(current, axis, name);
            self.maybe_predicates(tpq, current)?;
            first = false;
        }
        if current == node && !saw_dot {
            return self.err("expected '.', a path, or a function call");
        }
        Ok(current)
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(s),
            other => self.err(format!("expected string literal, found {other:?}")),
        }
    }
}

fn lex(input: &str) -> Vec<(usize, Tok)> {
    let b = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' => {
                if b.get(i + 1) == Some(&b'/') {
                    toks.push((i, Tok::DoubleSlash));
                    i += 2;
                } else {
                    toks.push((i, Tok::Slash));
                    i += 1;
                }
            }
            b'[' => {
                toks.push((i, Tok::LBracket));
                i += 1;
            }
            b']' => {
                toks.push((i, Tok::RBracket));
                i += 1;
            }
            b'(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            b')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            b',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            b'*' => {
                toks.push((i, Tok::Star));
                i += 1;
            }
            b'&' => {
                toks.push((i, Tok::And));
                i += 1;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Op(RelOp::Le)));
                    i += 2;
                } else {
                    toks.push((i, Tok::Op(RelOp::Lt)));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Op(RelOp::Ge)));
                    i += 2;
                } else {
                    toks.push((i, Tok::Op(RelOp::Gt)));
                    i += 1;
                }
            }
            b'=' => {
                toks.push((i, Tok::Op(RelOp::Eq)));
                i += 1;
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Op(RelOp::Ne)));
                    i += 2;
                } else {
                    // Lone '!' is not meaningful; emit as a name to trigger
                    // a parse error with position info.
                    toks.push((i, Tok::Name("!".to_string())));
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < b.len() && b[i] != quote {
                    s.push(b[i] as char);
                    i += 1;
                }
                i += 1; // closing quote (or EOF — parser will catch issues)
                toks.push((start, Tok::Str(s)));
            }
            b'.' => {
                toks.push((i, Tok::Dot));
                i += 1;
            }
            _ if c.is_ascii_digit()
                || (c == b'-' && b.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let n: f64 = input[start..i].parse().unwrap_or(f64::NAN);
                toks.push((start, Tok::Num(n)));
            }
            _ => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || b[i] == b'-'
                        || b[i] == b':')
                {
                    i += 1;
                }
                if i == start {
                    // Unknown character: emit it whole (full UTF-8 width)
                    // as a name so the parser reports it with its position.
                    let width = input[start..]
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    i += width;
                }
                let word = &input[start..i];
                if word == "and" {
                    toks.push((start, Tok::And));
                } else {
                    toks.push((start, Tok::Name(word.to_string())));
                }
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TagTest;

    #[test]
    fn paper_query_q() {
        let q = parse_tpq(
            r#"//car[.//description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
        )
        .unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.distinguished(), q.root());
        assert_eq!(q.node(q.root()).tag, TagTest::Name("car".into()));
        let d = q.find_by_tag("description").unwrap();
        assert_eq!(q.node(d).axis, Axis::Descendant);
        assert_eq!(q.node(d).predicates.len(), 2);
        let p = q.find_by_tag("price").unwrap();
        assert_eq!(q.node(p).axis, Axis::Child);
        assert!(matches!(
            q.node(p).predicates[0],
            Predicate::Compare { op: RelOp::Lt, .. }
        ));
    }

    #[test]
    fn nexi_topic_131() {
        let q = parse_tpq(r#"//article[about(.//au, "Jiawei Han")]//abs[about(., "data mining")]"#)
            .unwrap();
        assert_eq!(q.len(), 3);
        let abs = q.find_by_tag("abs").unwrap();
        assert_eq!(q.distinguished(), abs);
        assert_eq!(q.node(abs).axis, Axis::Descendant);
        assert!(
            matches!(&q.node(abs).predicates[0], Predicate::FtContains { phrase } if phrase == "data mining")
        );
        let au = q.find_by_tag("au").unwrap();
        assert_eq!(q.node(au).axis, Axis::Descendant);
        assert!(!q.node(au).predicates.is_empty());
    }

    #[test]
    fn infix_ftcontains_on_bare_name() {
        let q = parse_tpq(r#"//person[business ftcontains "Yes"]"#).unwrap();
        let b = q.find_by_tag("business").unwrap();
        assert_eq!(q.node(b).axis, Axis::Child);
        assert!(
            matches!(&q.node(b).predicates[0], Predicate::FtContains { phrase } if phrase == "Yes")
        );
    }

    #[test]
    fn dot_comparison_attaches_to_step() {
        let q = parse_tpq(r#"//price[. < 2000]"#).unwrap();
        assert!(matches!(
            q.node(q.root()).predicates[0],
            Predicate::Compare { op: RelOp::Lt, .. }
        ));
    }

    #[test]
    fn string_comparison() {
        let q = parse_tpq(r#"//car[color = "red"]"#).unwrap();
        let c = q.find_by_tag("color").unwrap();
        assert!(
            matches!(&q.node(c).predicates[0], Predicate::Compare { op: RelOp::Eq, value: Value::Str(s) } if s == "red")
        );
    }

    #[test]
    fn existence_predicate_grows_pattern() {
        let q = parse_tpq(r#"//car[.//owner]"#).unwrap();
        assert_eq!(q.len(), 2);
        let o = q.find_by_tag("owner").unwrap();
        assert_eq!(q.node(o).axis, Axis::Descendant);
        assert!(q.node(o).predicates.is_empty());
    }

    #[test]
    fn nested_predicates_in_relpath() {
        let q = parse_tpq(r#"//a[./b[ftcontains(., "x")]/c > 5]"#).unwrap();
        assert_eq!(q.len(), 3);
        let b = q.find_by_tag("b").unwrap();
        assert!(matches!(
            &q.node(b).predicates[0],
            Predicate::FtContains { .. }
        ));
        let c = q.find_by_tag("c").unwrap();
        assert!(matches!(
            &q.node(c).predicates[0],
            Predicate::Compare { op: RelOp::Gt, .. }
        ));
        assert_eq!(q.node(c).parent, Some(b));
    }

    #[test]
    fn multiple_steps_distinguished_is_last() {
        let q = parse_tpq("/dealer/car/price").unwrap();
        assert_eq!(q.len(), 3);
        let p = q.find_by_tag("price").unwrap();
        assert_eq!(q.distinguished(), p);
        assert_eq!(q.node(q.root()).axis, Axis::Child); // anchored at document root
    }

    #[test]
    fn star_steps() {
        let q = parse_tpq("//*[price < 10]").unwrap();
        assert_eq!(q.node(q.root()).tag, TagTest::Star);
    }

    #[test]
    fn implicit_leading_descendant() {
        let q = parse_tpq("car[price < 10]").unwrap();
        assert_eq!(q.node(q.root()).axis, Axis::Descendant);
    }

    #[test]
    fn ampersand_as_and() {
        let q = parse_tpq(r#"//car[ftcontains(., "a") & ftcontains(., "b")]"#).unwrap();
        assert_eq!(q.node(q.root()).predicates.len(), 2);
    }

    #[test]
    fn numeric_operators_all_parse() {
        for (src, op) in [
            ("//a[b < 1]", RelOp::Lt),
            ("//a[b <= 1]", RelOp::Le),
            ("//a[b > 1]", RelOp::Gt),
            ("//a[b >= 1]", RelOp::Ge),
            ("//a[b = 1]", RelOp::Eq),
            ("//a[b != 1]", RelOp::Ne),
        ] {
            let q = parse_tpq(src).unwrap();
            let b = q.find_by_tag("b").unwrap();
            assert!(
                matches!(q.node(b).predicates[0], Predicate::Compare { op: o, .. } if o == op),
                "{src}"
            );
        }
    }

    #[test]
    fn negative_number_constant() {
        let q = parse_tpq("//a[b > -5]").unwrap();
        let b = q.find_by_tag("b").unwrap();
        assert!(
            matches!(q.node(b).predicates[0], Predicate::Compare { value: Value::Num(n), .. } if n == -5.0)
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_tpq("//car[").unwrap_err();
        assert!(e.offset >= 6);
        assert!(parse_tpq("//car] junk").is_err());
        assert!(parse_tpq("//car[price <]").is_err());
        assert!(parse_tpq(r#"//car[ftcontains(price)]"#).is_err());
        assert!(parse_tpq("").is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_tpq("//car extra").is_err());
    }

    #[test]
    fn ftall_basic() {
        let q = parse_tpq(r#"//car[ftall(., "good", "cheap")]"#).unwrap();
        assert!(matches!(
            &q.node(q.root()).predicates[0],
            Predicate::FtAll { terms, window: None, ordered: false } if terms.len() == 2
        ));
    }

    #[test]
    fn ftall_with_window_and_ordered() {
        let q = parse_tpq(r#"//car[ftall(., "good", "cheap" window 5 ordered)]"#).unwrap();
        assert!(matches!(
            &q.node(q.root()).predicates[0],
            Predicate::FtAll {
                window: Some(5),
                ordered: true,
                ..
            }
        ));
    }

    #[test]
    fn ftall_on_relative_target() {
        let q = parse_tpq(r#"//car[ftall(./description, "a", "b" window 3)]"#).unwrap();
        let d = q.find_by_tag("description").unwrap();
        assert!(matches!(&q.node(d).predicates[0], Predicate::FtAll { .. }));
    }

    #[test]
    fn ftall_requires_terms_and_valid_window() {
        assert!(parse_tpq("//car[ftall(.)]").is_err());
        assert!(parse_tpq(r#"//car[ftall(., "a" window 0)]"#).is_err());
        assert!(parse_tpq(r#"//car[ftall(., "a" window)]"#).is_err());
    }
}
