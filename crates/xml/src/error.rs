//! Error types for XML lexing and parsing.

use std::fmt;

/// Byte offset plus human-friendly line/column position in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Byte offset from the start of the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl Pos {
    /// Position at the very start of an input.
    pub const fn start() -> Self {
        Pos {
            offset: 0,
            line: 1,
            col: 1,
        }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Everything that can go wrong while turning bytes into a document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// Where the input ended.
        pos: Pos,
        /// What was being parsed.
        context: &'static str,
    },
    /// A character that cannot start or continue the current construct.
    UnexpectedChar {
        /// Where the character was found.
        pos: Pos,
        /// The offending character.
        found: char,
        /// What was being parsed.
        context: &'static str,
    },
    /// `</b>` closing an element opened as `<a>`.
    MismatchedTag {
        /// Where the close tag was found.
        pos: Pos,
        /// The open tag awaiting closure.
        expected: String,
        /// The close tag actually seen.
        found: String,
    },
    /// A close tag with no matching open tag.
    UnmatchedClose {
        /// Where the close tag was found.
        pos: Pos,
        /// Its tag name.
        tag: String,
    },
    /// Open tags left on the stack at end of input.
    UnclosedTag {
        /// Position of the end of input.
        pos: Pos,
        /// The innermost unclosed tag.
        tag: String,
    },
    /// `&foo;` with an unknown entity name.
    UnknownEntity {
        /// Where the entity started.
        pos: Pos,
        /// The entity body.
        entity: String,
    },
    /// A numeric character reference that is not a valid scalar value.
    InvalidCharRef {
        /// Where the reference started.
        pos: Pos,
        /// The raw reference body.
        raw: String,
    },
    /// The same attribute appears twice on one element.
    DuplicateAttribute {
        /// Where the duplicate was found.
        pos: Pos,
        /// The attribute name.
        name: String,
    },
    /// Document has no root element, or text outside the root.
    NoRootElement {
        /// Where the problem was detected.
        pos: Pos,
    },
    /// More than one top-level element.
    MultipleRoots {
        /// Where the second root started.
        pos: Pos,
    },
    /// An element/tag name that is empty or starts with an illegal character.
    InvalidName {
        /// Where the name started.
        pos: Pos,
        /// The offending name.
        name: String,
    },
}

impl XmlError {
    /// The input position the error was raised at.
    pub fn pos(&self) -> Pos {
        match self {
            XmlError::UnexpectedEof { pos, .. }
            | XmlError::UnexpectedChar { pos, .. }
            | XmlError::MismatchedTag { pos, .. }
            | XmlError::UnmatchedClose { pos, .. }
            | XmlError::UnclosedTag { pos, .. }
            | XmlError::UnknownEntity { pos, .. }
            | XmlError::InvalidCharRef { pos, .. }
            | XmlError::DuplicateAttribute { pos, .. }
            | XmlError::NoRootElement { pos }
            | XmlError::MultipleRoots { pos }
            | XmlError::InvalidName { pos, .. } => *pos,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { pos, context } => {
                write!(f, "{pos}: unexpected end of input while parsing {context}")
            }
            XmlError::UnexpectedChar {
                pos,
                found,
                context,
            } => {
                write!(
                    f,
                    "{pos}: unexpected character {found:?} while parsing {context}"
                )
            }
            XmlError::MismatchedTag {
                pos,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{pos}: mismatched close tag: expected </{expected}>, found </{found}>"
                )
            }
            XmlError::UnmatchedClose { pos, tag } => {
                write!(f, "{pos}: close tag </{tag}> has no matching open tag")
            }
            XmlError::UnclosedTag { pos, tag } => {
                write!(f, "{pos}: element <{tag}> is never closed")
            }
            XmlError::UnknownEntity { pos, entity } => {
                write!(f, "{pos}: unknown entity &{entity};")
            }
            XmlError::InvalidCharRef { pos, raw } => {
                write!(f, "{pos}: invalid character reference &{raw};")
            }
            XmlError::DuplicateAttribute { pos, name } => {
                write!(f, "{pos}: duplicate attribute {name:?}")
            }
            XmlError::NoRootElement { pos } => write!(f, "{pos}: document has no root element"),
            XmlError::MultipleRoots { pos } => {
                write!(f, "{pos}: document has more than one root element")
            }
            XmlError::InvalidName { pos, name } => write!(f, "{pos}: invalid XML name {name:?}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display() {
        let p = Pos {
            offset: 10,
            line: 2,
            col: 5,
        };
        assert_eq!(p.to_string(), "2:5");
    }

    #[test]
    fn error_display_mentions_position_and_detail() {
        let e = XmlError::MismatchedTag {
            pos: Pos {
                offset: 3,
                line: 1,
                col: 4,
            },
            expected: "a".into(),
            found: "b".into(),
        };
        let s = e.to_string();
        assert!(s.contains("1:4"));
        assert!(s.contains("</a>"));
        assert!(s.contains("</b>"));
    }

    #[test]
    fn error_pos_accessor_covers_variants() {
        let pos = Pos {
            offset: 1,
            line: 1,
            col: 2,
        };
        let errs = [
            XmlError::UnexpectedEof {
                pos,
                context: "tag",
            },
            XmlError::UnknownEntity {
                pos,
                entity: "x".into(),
            },
            XmlError::NoRootElement { pos },
        ];
        for e in errs {
            assert_eq!(e.pos(), pos);
        }
    }
}
