//! Entity escaping and unescaping for XML text and attribute values.

use crate::error::{Pos, Result, XmlError};
use std::borrow::Cow;

/// Escape the five predefined XML entities in `s` for use in text content.
///
/// Returns a borrowed `Cow` when nothing needs escaping, which is the common
/// case on large generated documents.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_impl(s, false)
}

/// Escape `s` for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_impl(s, true)
}

fn escape_impl(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| b == b'&' || b == b'<' || b == b'>' || (attr && (b == b'"' || b == b'\'')));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
    Cow::Owned(out)
}

/// Resolve a single entity body (the part between `&` and `;`).
///
/// Supports the five predefined entities plus decimal (`#123`) and
/// hexadecimal (`#x7B`) character references.
pub fn resolve_entity(body: &str, pos: Pos) -> Result<char> {
    match body {
        "amp" => return Ok('&'),
        "lt" => return Ok('<'),
        "gt" => return Ok('>'),
        "quot" => return Ok('"'),
        "apos" => return Ok('\''),
        _ => {}
    }
    if let Some(num) = body.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
            u32::from_str_radix(hex, 16)
        } else {
            num.parse::<u32>()
        };
        return match code.ok().and_then(char::from_u32) {
            Some(c) => Ok(c),
            None => Err(XmlError::InvalidCharRef {
                pos,
                raw: body.to_string(),
            }),
        };
    }
    Err(XmlError::UnknownEntity {
        pos,
        entity: body.to_string(),
    })
}

/// Unescape all entities in `s`, reporting errors at `pos` (the start of the
/// string; offsets within the string are not tracked).
pub fn unescape(s: &str, pos: Pos) -> Result<Cow<'_, str>> {
    if !s.contains('&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or(XmlError::UnexpectedEof {
            pos,
            context: "entity reference",
        })?;
        out.push(resolve_entity(&after[..semi], pos)?);
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Pos {
        Pos::start()
    }

    #[test]
    fn escape_text_passthrough_is_borrowed() {
        assert!(matches!(escape_text("plain text"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_escapes_amp_lt_gt() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
    }

    #[test]
    fn escape_attr_escapes_quotes() {
        assert_eq!(
            escape_attr(r#"say "hi" & 'bye'"#),
            "say &quot;hi&quot; &amp; &apos;bye&apos;"
        );
    }

    #[test]
    fn text_escape_leaves_quotes_alone() {
        assert_eq!(escape_text(r#""q""#), r#""q""#);
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;", p()).unwrap(),
            "<x> & \"y\" 'z'"
        );
    }

    #[test]
    fn unescape_decimal_and_hex_refs() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", p()).unwrap(), "ABc");
    }

    #[test]
    fn unescape_unknown_entity_errors() {
        assert!(matches!(
            unescape("&nope;", p()),
            Err(XmlError::UnknownEntity { .. })
        ));
    }

    #[test]
    fn unescape_invalid_char_ref_errors() {
        assert!(matches!(
            unescape("&#xD800;", p()),
            Err(XmlError::InvalidCharRef { .. })
        ));
        assert!(matches!(
            unescape("&#99999999;", p()),
            Err(XmlError::InvalidCharRef { .. })
        ));
    }

    #[test]
    fn unescape_missing_semicolon_errors() {
        assert!(matches!(
            unescape("a &amp b", p()),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn roundtrip_escape_unescape() {
        let original = "tricky <text> & \"attrs\" 'here' 100% plain";
        let esc = escape_attr(original);
        assert_eq!(unescape(&esc, p()).unwrap(), original);
    }
}
