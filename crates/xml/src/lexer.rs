//! A hand-rolled pull lexer turning XML source text into a token stream.
//!
//! The lexer is deliberately permissive where the paper's data needs it
//! (attribute values in single or double quotes, CDATA, comments, processing
//! instructions, DOCTYPE skipped) and strict where tree construction needs
//! it (well-formed names, terminated constructs).

use crate::error::{Pos, Result, XmlError};
use crate::escape::unescape;

/// One lexical event from the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" ...>` — `self_closing` is true for `<name/>`.
    StartTag {
        /// Tag name.
        name: String,
        /// Attributes in source order, values unescaped.
        attrs: Vec<(String, String)>,
        /// `<name/>` form.
        self_closing: bool,
        /// Source position.
        pos: Pos,
    },
    /// `</name>`.
    EndTag {
        /// Tag name.
        name: String,
        /// Source position.
        pos: Pos,
    },
    /// Character data between tags, with entities resolved. CDATA sections
    /// are delivered as `Text` too.
    Text {
        /// The (unescaped) text.
        text: String,
        /// Source position.
        pos: Pos,
    },
    /// `<!-- ... -->` contents (without the delimiters).
    Comment {
        /// Comment body.
        text: String,
        /// Source position.
        pos: Pos,
    },
    /// `<?target data?>`.
    Pi {
        /// Processing-instruction target.
        target: String,
        /// Everything after the target, trimmed.
        data: String,
        /// Source position.
        pos: Pos,
    },
}

impl Token {
    /// The input position the token started at.
    pub fn pos(&self) -> Pos {
        match self {
            Token::StartTag { pos, .. }
            | Token::EndTag { pos, .. }
            | Token::Text { pos, .. }
            | Token::Comment { pos, .. }
            | Token::Pi { pos, .. } => *pos,
        }
    }
}

/// Pull lexer over a UTF-8 input string.
pub struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    offset: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            input,
            bytes: input.as_bytes(),
            offset: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            offset: self.offset,
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    fn peek_at(&self, delta: usize) -> Option<u8> {
        self.bytes.get(self.offset + delta).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.offset += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.offset..].starts_with(s)
    }

    fn advance_str(&mut self, s: &str) {
        for _ in 0..s.len() {
            self.bump();
        }
    }

    /// Find `needle` at or after the current offset and return everything up
    /// to it, advancing past the needle. Errors with `context` on EOF.
    fn take_until(&mut self, needle: &str, context: &'static str) -> Result<&'a str> {
        let start = self.offset;
        match self.input[start..].find(needle) {
            Some(rel) => {
                let end = start + rel;
                // Advance (tracking line/col) through the consumed region
                // and the needle itself.
                while self.offset < end + needle.len() {
                    self.bump();
                }
                Ok(&self.input[start..end])
            }
            None => Err(XmlError::UnexpectedEof {
                pos: self.pos(),
                context,
            }),
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn read_name(&mut self, context: &'static str) -> Result<String> {
        let start = self.offset;
        let pos = self.pos();
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {
                self.bump();
            }
            Some(b) => {
                return Err(XmlError::UnexpectedChar {
                    pos,
                    found: b as char,
                    context,
                });
            }
            None => return Err(XmlError::UnexpectedEof { pos, context }),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(self.input[start..self.offset].to_string())
    }

    fn read_attrs(&mut self) -> Result<(Vec<(String, String)>, bool)> {
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    return Ok((attrs, false));
                }
                Some(b'/') => {
                    let pos = self.pos();
                    self.bump();
                    match self.peek() {
                        Some(b'>') => {
                            self.bump();
                            return Ok((attrs, true));
                        }
                        other => {
                            return Err(XmlError::UnexpectedChar {
                                pos,
                                found: other.map(|b| b as char).unwrap_or('\0'),
                                context: "self-closing tag",
                            })
                        }
                    }
                }
                Some(_) => {
                    let attr_pos = self.pos();
                    let name = self.read_name("attribute name")?;
                    if attrs.iter().any(|(n, _)| *n == name) {
                        return Err(XmlError::DuplicateAttribute {
                            pos: attr_pos,
                            name,
                        });
                    }
                    self.skip_ws();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                        }
                        other => {
                            return Err(XmlError::UnexpectedChar {
                                pos: self.pos(),
                                found: other.map(|b| b as char).unwrap_or('\0'),
                                context: "attribute '='",
                            })
                        }
                    }
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => {
                            self.bump();
                            q
                        }
                        other => {
                            return Err(XmlError::UnexpectedChar {
                                pos: self.pos(),
                                found: other.map(|b| b as char).unwrap_or('\0'),
                                context: "attribute value quote",
                            })
                        }
                    };
                    let vpos = self.pos();
                    let raw =
                        self.take_until(if quote == b'"' { "\"" } else { "'" }, "attribute value")?;
                    let value = unescape(raw, vpos)?.into_owned();
                    attrs.push((name, value));
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        pos: self.pos(),
                        context: "start tag",
                    })
                }
            }
        }
    }

    /// Produce the next token, or `None` at clean end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>> {
        if self.offset >= self.bytes.len() {
            return Ok(None);
        }
        let pos = self.pos();
        if self.peek() == Some(b'<') {
            match self.peek_at(1) {
                Some(b'/') => {
                    self.bump();
                    self.bump();
                    let name = self.read_name("close tag name")?;
                    self.skip_ws();
                    match self.bump() {
                        Some(b'>') => Ok(Some(Token::EndTag { name, pos })),
                        Some(c) => Err(XmlError::UnexpectedChar {
                            pos: self.pos(),
                            found: c as char,
                            context: "close tag",
                        }),
                        None => Err(XmlError::UnexpectedEof {
                            pos: self.pos(),
                            context: "close tag",
                        }),
                    }
                }
                Some(b'!') => {
                    if self.starts_with("<!--") {
                        self.advance_str("<!--");
                        let text = self.take_until("-->", "comment")?.to_string();
                        Ok(Some(Token::Comment { text, pos }))
                    } else if self.starts_with("<![CDATA[") {
                        self.advance_str("<![CDATA[");
                        let text = self.take_until("]]>", "CDATA section")?.to_string();
                        Ok(Some(Token::Text { text, pos }))
                    } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                        // Skip the doctype declaration, tolerating one level
                        // of internal subset brackets.
                        self.advance_str("<!DOCTYPE");
                        let mut depth = 0usize;
                        loop {
                            match self.bump() {
                                Some(b'[') => depth += 1,
                                Some(b']') => depth = depth.saturating_sub(1),
                                Some(b'>') if depth == 0 => break,
                                Some(_) => {}
                                None => {
                                    return Err(XmlError::UnexpectedEof {
                                        pos: self.pos(),
                                        context: "DOCTYPE",
                                    })
                                }
                            }
                        }
                        self.next_token()
                    } else {
                        Err(XmlError::UnexpectedChar {
                            pos,
                            found: '!',
                            context: "markup declaration",
                        })
                    }
                }
                Some(b'?') => {
                    self.advance_str("<?");
                    let target = self.read_name("processing instruction target")?;
                    let data = self
                        .take_until("?>", "processing instruction")?
                        .trim()
                        .to_string();
                    Ok(Some(Token::Pi { target, data, pos }))
                }
                _ => {
                    self.bump();
                    let name = self.read_name("tag name")?;
                    let (attrs, self_closing) = self.read_attrs()?;
                    Ok(Some(Token::StartTag {
                        name,
                        attrs,
                        self_closing,
                        pos,
                    }))
                }
            }
        } else {
            // Character data up to the next '<' (or EOF).
            let start = self.offset;
            while let Some(b) = self.peek() {
                if b == b'<' {
                    break;
                }
                self.bump();
            }
            let raw = &self.input[start..self.offset];
            let text = unescape(raw, pos)?.into_owned();
            Ok(Some(Token::Text { text, pos }))
        }
    }

    /// Drain the lexer into a vector of tokens.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token()? {
            out.push(t);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        Lexer::new(s).tokenize().unwrap()
    }

    #[test]
    fn simple_element() {
        let toks = lex("<a>hi</a>");
        assert_eq!(toks.len(), 3);
        assert!(
            matches!(&toks[0], Token::StartTag { name, self_closing: false, .. } if name == "a")
        );
        assert!(matches!(&toks[1], Token::Text { text, .. } if text == "hi"));
        assert!(matches!(&toks[2], Token::EndTag { name, .. } if name == "a"));
    }

    #[test]
    fn attributes_both_quote_styles() {
        let toks = lex(r#"<car color="red" make='honda'/>"#);
        match &toks[0] {
            Token::StartTag {
                name,
                attrs,
                self_closing,
                ..
            } => {
                assert_eq!(name, "car");
                assert!(*self_closing);
                assert_eq!(attrs[0], ("color".to_string(), "red".to_string()));
                assert_eq!(attrs[1], ("make".to_string(), "honda".to_string()));
            }
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let toks = lex(r#"<a t="x&amp;y">1 &lt; 2</a>"#);
        match &toks[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].1, "x&y"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(&toks[1], Token::Text { text, .. } if text == "1 < 2"));
    }

    #[test]
    fn cdata_is_text() {
        let toks = lex("<a><![CDATA[<raw> & stuff]]></a>");
        assert!(matches!(&toks[1], Token::Text { text, .. } if text == "<raw> & stuff"));
    }

    #[test]
    fn comments_and_pis() {
        let toks = lex("<?xml version=\"1.0\"?><!-- note --><a/>");
        assert!(matches!(&toks[0], Token::Pi { target, .. } if target == "xml"));
        assert!(matches!(&toks[1], Token::Comment { text, .. } if text == " note "));
        assert!(matches!(&toks[2], Token::StartTag { .. }));
    }

    #[test]
    fn doctype_is_skipped() {
        let toks = lex("<!DOCTYPE html [<!ENTITY x \"y\">]><a/>");
        assert_eq!(toks.len(), 1);
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "a"));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Lexer::new(r#"<a x="1" x="2"/>"#).tokenize().unwrap_err();
        assert!(matches!(err, XmlError::DuplicateAttribute { .. }));
    }

    #[test]
    fn unterminated_comment_is_eof_error() {
        let err = Lexer::new("<!-- oops").tokenize().unwrap_err();
        assert!(matches!(
            err,
            XmlError::UnexpectedEof {
                context: "comment",
                ..
            }
        ));
    }

    #[test]
    fn bad_name_start_rejected() {
        let err = Lexer::new("<1tag/>").tokenize().unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedChar { .. }));
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("<a>\n  <b/>\n</a>");
        let bpos = toks[2].pos();
        assert_eq!(bpos.line, 2);
        assert_eq!(bpos.col, 3);
    }

    #[test]
    fn names_with_digits_dots_dashes() {
        let toks = lex("<ns:item-2.x/>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "ns:item-2.x"));
    }
}
