//! # pimento-xml
//!
//! XML substrate for the PIMENTO personalized XML search reproduction
//! (Amer-Yahia, Fundulaki, Lakshmanan — ICDE 2007).
//!
//! The paper assumes an XML store with region-labeled element trees on top
//! of which tree-pattern queries are evaluated via structural joins. This
//! crate provides that store:
//!
//! * a hand-rolled [`lexer`] and [`parser`] (no external XML dependency),
//! * an arena [`tree`] with `(start, end, level)` region labels assigned in
//!   document order, making ancestor/descendant tests O(1),
//! * entity [`escape`] handling, [`writer`] serialization, and [`nav`]
//!   axis helpers.
//!
//! ```
//! use pimento_xml::{parse_with, SymbolTable};
//!
//! let mut symbols = SymbolTable::new();
//! let doc = parse_with("<car><price>500</price></car>", &mut symbols).unwrap();
//! let price = symbols.get("price").unwrap();
//! let p = doc.child_element(doc.root(), price).unwrap();
//! assert_eq!(doc.text_content(p), "500");
//! assert!(doc.is_ancestor(doc.root(), p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod escape;
pub mod lexer;
pub mod nav;
pub mod parser;
pub mod tree;
pub mod writer;

pub use error::{Pos, Result, XmlError};
pub use parser::{parse_content, parse_with};
pub use tree::{Document, Node, NodeId, NodeKind, SymbolId, SymbolTable};
pub use writer::{subtree_to_string, to_string, to_string_pretty};
