//! Axis navigation helpers over a [`Document`].
//!
//! These are thin iterators used by tests, the field resolver, and the data
//! generators; the query engine itself goes through the indexes in
//! `pimento-index` instead.

use crate::tree::{Document, NodeId, NodeKind, SymbolId};

/// Child elements of `id`, in document order.
pub fn child_elements<'d>(doc: &'d Document, id: NodeId) -> impl Iterator<Item = NodeId> + 'd {
    doc.node(id)
        .children
        .iter()
        .copied()
        .filter(move |&c| matches!(doc.node(c).kind, NodeKind::Element { .. }))
}

/// Child elements of `id` with tag `tag`.
pub fn children_with_tag<'d>(
    doc: &'d Document,
    id: NodeId,
    tag: SymbolId,
) -> impl Iterator<Item = NodeId> + 'd {
    child_elements(doc, id).filter(move |&c| doc.node(c).tag() == Some(tag))
}

/// Proper ancestors of `id`, nearest first.
pub fn ancestors<'d>(doc: &'d Document, id: NodeId) -> impl Iterator<Item = NodeId> + 'd {
    std::iter::successors(doc.node(id).parent, move |&p| doc.node(p).parent)
}

/// Descendant elements of `id` with tag `tag`, document order.
pub fn descendants_with_tag(doc: &Document, id: NodeId, tag: SymbolId) -> Vec<NodeId> {
    doc.descendant_elements(id)
        .into_iter()
        .filter(|&n| doc.node(n).tag() == Some(tag))
        .collect()
}

/// The nearest ancestor (or self) of `id` with tag `tag`.
pub fn ancestor_or_self_with_tag(doc: &Document, id: NodeId, tag: SymbolId) -> Option<NodeId> {
    if doc.node(id).tag() == Some(tag) {
        return Some(id);
    }
    ancestors(doc, id).find(|&a| doc.node(a).tag() == Some(tag))
}

/// Following siblings of `id` (elements only), document order.
pub fn following_sibling_elements(doc: &Document, id: NodeId) -> Vec<NodeId> {
    let Some(parent) = doc.node(id).parent else {
        return Vec::new();
    };
    let kids = &doc.node(parent).children;
    let pos = kids
        .iter()
        .position(|&k| k == id)
        .expect("child listed under parent");
    kids[pos + 1..]
        .iter()
        .copied()
        .filter(|&c| matches!(doc.node(c).kind, NodeKind::Element { .. }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_with;
    use crate::tree::SymbolTable;

    fn doc() -> (Document, SymbolTable) {
        let mut st = SymbolTable::new();
        let d = parse_with(
            "<dealer><car><price>1</price><color>red</color></car><car><price>2</price></car></dealer>",
            &mut st,
        )
        .unwrap();
        (d, st)
    }

    #[test]
    fn children_with_tag_filters() {
        let (d, st) = doc();
        let car = st.get("car").unwrap();
        assert_eq!(children_with_tag(&d, d.root(), car).count(), 2);
        let price = st.get("price").unwrap();
        assert_eq!(children_with_tag(&d, d.root(), price).count(), 0);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let (d, st) = doc();
        let price = st.get("price").unwrap();
        let p = descendants_with_tag(&d, d.root(), price)[0];
        let chain: Vec<NodeId> = ancestors(&d, p).collect();
        assert_eq!(chain.len(), 2); // car, dealer
        assert_eq!(chain[1], d.root());
    }

    #[test]
    fn descendants_with_tag_finds_all() {
        let (d, st) = doc();
        let price = st.get("price").unwrap();
        assert_eq!(descendants_with_tag(&d, d.root(), price).len(), 2);
    }

    #[test]
    fn ancestor_or_self_with_tag_works() {
        let (d, st) = doc();
        let car = st.get("car").unwrap();
        let color = st.get("color").unwrap();
        let c = descendants_with_tag(&d, d.root(), color)[0];
        let found = ancestor_or_self_with_tag(&d, c, car).unwrap();
        assert_eq!(d.node(found).tag(), Some(car));
        // self case
        assert_eq!(ancestor_or_self_with_tag(&d, c, color), Some(c));
    }

    #[test]
    fn following_siblings() {
        let (d, st) = doc();
        let car = st.get("car").unwrap();
        let first_car = children_with_tag(&d, d.root(), car).next().unwrap();
        let sibs = following_sibling_elements(&d, first_car);
        assert_eq!(sibs.len(), 1);
        assert!(following_sibling_elements(&d, sibs[0]).is_empty());
        assert!(following_sibling_elements(&d, d.root()).is_empty());
    }
}
