//! Tree construction: token stream → [`Document`] with region labels.

use crate::error::{Pos, Result, XmlError};
use crate::lexer::{Lexer, Token};
use crate::tree::{Document, Node, NodeId, NodeKind, SymbolTable};

/// Parse `input` into a document, interning names into `symbols`.
///
/// Whitespace-only text between elements is dropped (the paper's data model
/// has no mixed-content semantics that depend on it); other text is kept
/// verbatim. Comments are kept so serialization round-trips.
pub fn parse_with(input: &str, symbols: &mut SymbolTable) -> Result<Document> {
    Builder::new(symbols).run(input, /* keep_comments = */ true)
}

/// Like [`parse_with`], but drops comments — the right choice when parsing
/// generated corpora for indexing.
pub fn parse_content(input: &str, symbols: &mut SymbolTable) -> Result<Document> {
    Builder::new(symbols).run(input, false)
}

struct Builder<'s> {
    symbols: &'s mut SymbolTable,
    nodes: Vec<Node>,
    /// Stack of open element node ids.
    open: Vec<NodeId>,
    /// Region label counter.
    counter: u32,
    root: Option<NodeId>,
}

impl<'s> Builder<'s> {
    fn new(symbols: &'s mut SymbolTable) -> Self {
        Builder {
            symbols,
            nodes: Vec::new(),
            open: Vec::new(),
            counter: 0,
            root: None,
        }
    }

    fn push_node(&mut self, kind: NodeKind, start: u32, end: u32) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let parent = self.open.last().copied();
        let level = parent
            .map(|p| self.nodes[p.0 as usize].level + 1)
            .unwrap_or(1);
        self.nodes.push(Node {
            kind,
            parent,
            children: Vec::new(),
            start,
            end,
            level,
        });
        if let Some(p) = parent {
            self.nodes[p.0 as usize].children.push(id);
        }
        id
    }

    fn next_label(&mut self) -> u32 {
        self.counter += 1;
        self.counter
    }

    fn open_element(
        &mut self,
        name: &str,
        attrs: Vec<(String, String)>,
        pos: Pos,
    ) -> Result<NodeId> {
        if self.open.is_empty() && self.root.is_some() {
            return Err(XmlError::MultipleRoots { pos });
        }
        let tag = self.symbols.intern(name);
        let attrs: Box<[_]> = attrs
            .into_iter()
            .map(|(n, v)| (self.symbols.intern(&n), v))
            .collect();
        let start = self.next_label();
        let id = self.push_node(NodeKind::Element { tag, attrs }, start, 0);
        if self.open.is_empty() {
            self.root = Some(id);
        }
        self.open.push(id);
        Ok(id)
    }

    fn close_element(&mut self, id: NodeId) {
        let end = self.next_label();
        self.nodes[id.0 as usize].end = end;
        let popped = self.open.pop();
        debug_assert_eq!(popped, Some(id));
    }

    fn run(mut self, input: &str, keep_comments: bool) -> Result<Document> {
        let mut lexer = Lexer::new(input);
        let mut last_pos = Pos::start();
        while let Some(tok) = lexer.next_token()? {
            last_pos = tok.pos();
            match tok {
                Token::StartTag {
                    name,
                    attrs,
                    self_closing,
                    pos,
                } => {
                    let id = self.open_element(&name, attrs, pos)?;
                    if self_closing {
                        self.close_element(id);
                    }
                }
                Token::EndTag { name, pos } => {
                    let Some(&top) = self.open.last() else {
                        return Err(XmlError::UnmatchedClose { pos, tag: name });
                    };
                    let top_tag = self.nodes[top.0 as usize]
                        .tag()
                        .expect("open stack holds elements only");
                    let expected = self.symbols.name(top_tag);
                    if expected != name {
                        return Err(XmlError::MismatchedTag {
                            pos,
                            expected: expected.to_string(),
                            found: name,
                        });
                    }
                    self.close_element(top);
                }
                Token::Text { text, pos } => {
                    if text.trim().is_empty() {
                        continue;
                    }
                    if self.open.is_empty() {
                        return Err(XmlError::NoRootElement { pos });
                    }
                    let label = self.next_label();
                    self.push_node(NodeKind::Text(text), label, label);
                }
                Token::Comment { text, .. } => {
                    if keep_comments && !self.open.is_empty() {
                        let label = self.next_label();
                        self.push_node(NodeKind::Comment(text), label, label);
                    }
                }
                Token::Pi { .. } => {
                    // Processing instructions (incl. the XML declaration) are
                    // irrelevant to search; skip them.
                }
            }
        }
        if let Some(&top) = self.open.last() {
            let tag = self.nodes[top.0 as usize].tag().expect("element");
            return Err(XmlError::UnclosedTag {
                pos: last_pos,
                tag: self.symbols.name(tag).to_string(),
            });
        }
        match self.root {
            Some(root) => Ok(Document::from_arena(self.nodes, root)),
            None => Err(XmlError::NoRootElement { pos: last_pos }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> (Document, SymbolTable) {
        let mut st = SymbolTable::new();
        let d = parse_with(s, &mut st).unwrap();
        (d, st)
    }

    #[test]
    fn builds_nested_structure() {
        let (doc, st) = parse("<dealer><car><price>500</price></car></dealer>");
        let root = doc.root();
        assert_eq!(st.name(doc.node(root).tag().unwrap()), "dealer");
        let car = doc.node(root).children[0];
        let price = doc.node(car).children[0];
        assert_eq!(doc.text_content(price), "500");
        assert_eq!(doc.node(price).level, 3);
    }

    #[test]
    fn self_closing_elements_close_immediately() {
        let (doc, _) = parse("<a><b/><c/></a>");
        let a = doc.node(doc.root());
        assert_eq!(a.children.len(), 2);
        let b = doc.node(a.children[0]);
        assert!(b.start < b.end);
        assert!(b.end < doc.node(a.children[1]).start);
    }

    #[test]
    fn whitespace_between_elements_dropped() {
        let (doc, _) = parse("<a>\n  <b/>\n  <c/>\n</a>");
        assert_eq!(doc.node(doc.root()).children.len(), 2);
    }

    #[test]
    fn mismatched_tags_error() {
        let mut st = SymbolTable::new();
        let err = parse_with("<a><b></a></b>", &mut st).unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }));
    }

    #[test]
    fn unmatched_close_error() {
        let mut st = SymbolTable::new();
        let err = parse_with("</a>", &mut st).unwrap_err();
        assert!(matches!(err, XmlError::UnmatchedClose { .. }));
    }

    #[test]
    fn unclosed_tag_error() {
        let mut st = SymbolTable::new();
        let err = parse_with("<a><b>", &mut st).unwrap_err();
        assert!(matches!(err, XmlError::UnclosedTag { .. }));
    }

    #[test]
    fn multiple_roots_error() {
        let mut st = SymbolTable::new();
        let err = parse_with("<a/><b/>", &mut st).unwrap_err();
        assert!(matches!(err, XmlError::MultipleRoots { .. }));
    }

    #[test]
    fn empty_input_error() {
        let mut st = SymbolTable::new();
        let err = parse_with("   ", &mut st).unwrap_err();
        assert!(matches!(err, XmlError::NoRootElement { .. }));
    }

    #[test]
    fn comments_kept_or_dropped_by_mode() {
        let mut st = SymbolTable::new();
        let with = parse_with("<a><!-- hi --><b/></a>", &mut st).unwrap();
        assert_eq!(with.node(with.root()).children.len(), 2);
        let without = parse_content("<a><!-- hi --><b/></a>", &mut st).unwrap();
        assert_eq!(without.node(without.root()).children.len(), 1);
    }

    #[test]
    fn region_labels_strictly_increase_in_document_order() {
        let (doc, _) = parse("<a><b>x</b><c><d/>y</c></a>");
        let mut last = 0;
        for id in doc.node_ids() {
            let n = doc.node(id);
            assert!(n.start > last, "start labels must increase in arena order");
            last = n.start;
            assert!(n.start <= n.end);
        }
    }

    #[test]
    fn xml_declaration_is_ignored() {
        let (doc, _) = parse("<?xml version=\"1.0\" encoding=\"utf-8\"?><a/>");
        assert_eq!(doc.len(), 1);
    }
}
