//! Arena-backed document tree with region/level labeling.
//!
//! Every node carries a `(start, end, level)` **region label** assigned in
//! document order: an element spans the labels of everything inside it, so
//! structural relationships reduce to integer comparisons —
//! `a` is an ancestor of `b` iff `a.start < b.start && b.end < a.end`, and
//! parent/child additionally requires `a.level + 1 == b.level`. This is the
//! classical region encoding used by structural join algorithms, and it is
//! what makes `ftcontains` containment checks and the structural joins in
//! `pimento-algebra` cheap.

use std::fmt;

// The interner lives in `pimento-sym` so non-XML layers (profiles, the
// query algebra) can depend on symbols without pulling in the XML
// substrate; re-exported here because documents are where ids originate.
pub use pimento_sym::{SymbolId, SymbolTable};

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What kind of node this is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// An element with a tag name and attributes.
    Element {
        /// Interned tag name.
        tag: SymbolId,
        /// Attributes in source order.
        attrs: Box<[(SymbolId, String)]>,
    },
    /// A text node.
    Text(String),
    /// A comment (kept so serialization can round-trip).
    Comment(String),
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    /// Payload.
    pub kind: NodeKind,
    /// Parent node, `None` for the root element.
    pub parent: Option<NodeId>,
    /// Children in document order (empty for text/comment nodes).
    pub children: Vec<NodeId>,
    /// Region start label.
    pub start: u32,
    /// Region end label (== `start` for text/comment nodes).
    pub end: u32,
    /// Depth; the root element has level 1.
    pub level: u16,
}

impl Node {
    /// Tag symbol if this is an element.
    pub fn tag(&self) -> Option<SymbolId> {
        match &self.kind {
            NodeKind::Element { tag, .. } => Some(*tag),
            _ => None,
        }
    }

    /// Attribute value by symbol, if this is an element carrying it.
    pub fn attr(&self, name: SymbolId) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Text payload if this is a text node.
    pub fn text(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Text(t) => Some(t),
            _ => None,
        }
    }

    /// True when `self`'s region strictly contains `other`'s.
    pub fn contains(&self, other: &Node) -> bool {
        self.start < other.start && other.end < self.end
    }
}

/// A parsed XML document: an arena of nodes rooted at [`Document::root`].
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Construct from a prebuilt arena. `root` must index into `nodes`.
    pub(crate) fn from_arena(nodes: Vec<Node>, root: NodeId) -> Self {
        debug_assert!((root.0 as usize) < nodes.len());
        Document { nodes, root }
    }

    /// Reconstruct a document from raw parts (deserialization). Validates
    /// basic arena invariants: ids in range, children consistent with
    /// parents, root has no parent.
    pub fn from_parts(nodes: Vec<Node>, root: NodeId) -> Result<Self, &'static str> {
        if nodes.is_empty() {
            return Err("empty arena");
        }
        let n = nodes.len() as u32;
        if root.0 >= n {
            return Err("root out of range");
        }
        if nodes[root.0 as usize].parent.is_some() {
            return Err("root must have no parent");
        }
        for (i, node) in nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                if p.0 >= n {
                    return Err("parent out of range");
                }
                if !nodes[p.0 as usize].children.contains(&NodeId(i as u32)) {
                    return Err("parent/children inconsistent");
                }
            }
            for &c in &node.children {
                if c.0 >= n {
                    return Err("child out of range");
                }
                if nodes[c.0 as usize].parent != Some(NodeId(i as u32)) {
                    return Err("child parent mismatch");
                }
            }
            if node.start > node.end {
                return Err("inverted region");
            }
        }
        Ok(Document { nodes, root })
    }

    /// Borrow the raw arena (serialization).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Rewrite every symbol id through `map` (index = old id) — used when
    /// merging documents parsed against different symbol tables. The map
    /// must cover every id the document uses.
    pub fn remap_symbols(&mut self, map: &[SymbolId]) {
        for node in &mut self.nodes {
            if let NodeKind::Element { tag, attrs } = &mut node.kind {
                *tag = map[tag.0 as usize];
                for (a, _) in attrs.iter_mut() {
                    *a = map[a.0 as usize];
                }
            }
        }
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document is empty (never true for parsed documents).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate over all node ids in arena (document) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// True iff `anc` is a proper ancestor of `desc` (region containment).
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        let a = self.node(anc);
        let d = self.node(desc);
        a.start < d.start && d.end < a.end
    }

    /// True iff `parent` is the parent of `child`.
    pub fn is_parent(&self, parent: NodeId, child: NodeId) -> bool {
        self.node(child).parent == Some(parent)
    }

    /// Concatenated text content of the subtree rooted at `id`, with single
    /// spaces joining adjacent text nodes.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        let n = self.node(id);
        match &n.kind {
            NodeKind::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(trimmed);
                }
            }
            NodeKind::Element { .. } => {
                for &c in &n.children {
                    self.collect_text(c, out);
                }
            }
            NodeKind::Comment(_) => {}
        }
    }

    /// First child element of `id` with tag `tag`.
    pub fn child_element(&self, id: NodeId, tag: SymbolId) -> Option<NodeId> {
        self.node(id)
            .children
            .iter()
            .copied()
            .find(|&c| self.node(c).tag() == Some(tag))
    }

    /// All element descendants of `id` (not including `id`), document order.
    pub fn descendant_elements(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.node(id).children.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            if matches!(self.node(n).kind, NodeKind::Element { .. }) {
                out.push(n);
            }
            for &c in self.node(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Approximate serialized size in bytes (used by the data generators to
    /// hit target document sizes without serializing).
    pub fn approx_bytes(&self, symbols: &SymbolTable) -> usize {
        let mut total = 0usize;
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Element { tag, attrs } => {
                    let name_len = symbols.name(*tag).len();
                    total += 2 * name_len + 5; // open + close tags
                    for (a, v) in attrs.iter() {
                        total += symbols.name(*a).len() + v.len() + 4;
                    }
                }
                NodeKind::Text(t) => total += t.len(),
                NodeKind::Comment(c) => total += c.len() + 7,
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_with;

    #[test]
    fn symbol_table_interning_is_stable() {
        let mut st = SymbolTable::new();
        let a = st.intern("car");
        let b = st.intern("price");
        let a2 = st.intern("car");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(st.name(a), "car");
        assert_eq!(st.get("price"), Some(b));
        assert_eq!(st.get("absent"), None);
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn region_labels_nest() {
        let mut st = SymbolTable::new();
        let doc = parse_with("<a><b><c/></b><d/></a>", &mut st).unwrap();
        let a = doc.root();
        let b = doc.node(a).children[0];
        let c = doc.node(b).children[0];
        let d = doc.node(a).children[1];
        assert!(doc.is_ancestor(a, b));
        assert!(doc.is_ancestor(a, c));
        assert!(doc.is_ancestor(b, c));
        assert!(!doc.is_ancestor(b, d));
        assert!(!doc.is_ancestor(c, a));
        assert!(doc.is_parent(a, b));
        assert!(!doc.is_parent(a, c));
        assert_eq!(doc.node(a).level, 1);
        assert_eq!(doc.node(b).level, 2);
        assert_eq!(doc.node(c).level, 3);
    }

    #[test]
    fn text_content_joins_and_trims() {
        let mut st = SymbolTable::new();
        let doc = parse_with("<a> hello <b>brave</b> world </a>", &mut st).unwrap();
        assert_eq!(doc.text_content(doc.root()), "hello brave world");
    }

    #[test]
    fn child_element_lookup() {
        let mut st = SymbolTable::new();
        let doc = parse_with("<car><color>red</color><price>500</price></car>", &mut st).unwrap();
        let color = st.get("color").unwrap();
        let price = st.get("price").unwrap();
        let c = doc.child_element(doc.root(), color).unwrap();
        assert_eq!(doc.text_content(c), "red");
        assert!(doc.child_element(doc.root(), price).is_some());
    }

    #[test]
    fn descendant_elements_document_order() {
        let mut st = SymbolTable::new();
        let doc = parse_with("<a><b><c/></b><d/></a>", &mut st).unwrap();
        let descs = doc.descendant_elements(doc.root());
        let tags: Vec<&str> = descs
            .iter()
            .map(|&n| st.name(doc.node(n).tag().unwrap()))
            .collect();
        assert_eq!(tags, ["b", "c", "d"]);
    }

    #[test]
    fn attr_access() {
        let mut st = SymbolTable::new();
        let doc = parse_with(r#"<car color="red"/>"#, &mut st).unwrap();
        let color = st.get("color").unwrap();
        assert_eq!(doc.node(doc.root()).attr(color), Some("red"));
    }
}

#[cfg(test)]
mod remap_tests {
    use super::*;
    use crate::parser::parse_with;
    use crate::writer::to_string;

    #[test]
    fn remap_symbols_rewrites_tags_and_attrs() {
        let mut local = SymbolTable::new();
        let mut doc = parse_with(r#"<car color="red"><price>5</price></car>"#, &mut local).unwrap();
        // Shared table with different id assignment.
        let mut shared = SymbolTable::new();
        shared.intern("unrelated");
        let mapping: Vec<SymbolId> = (0..local.len() as u32)
            .map(|i| shared.intern(local.name(SymbolId(i))))
            .collect();
        doc.remap_symbols(&mapping);
        assert_eq!(
            to_string(&doc, &shared),
            r#"<car color="red"><price>5</price></car>"#
        );
        let car = shared.get("car").unwrap();
        assert_eq!(doc.node(doc.root()).tag(), Some(car));
    }
}
