//! Serialization of a [`Document`] back to XML text.

use crate::escape::{escape_attr, escape_text};
use crate::tree::{Document, NodeId, NodeKind, SymbolTable};
use std::fmt::Write as _;

/// Serialize the whole document (no XML declaration, no pretty-printing —
/// the output is byte-faithful to the parsed content modulo dropped
/// whitespace-only text nodes).
pub fn to_string(doc: &Document, symbols: &SymbolTable) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    write_node(doc, symbols, doc.root(), &mut out);
    out
}

/// Serialize the subtree rooted at `id`.
pub fn subtree_to_string(doc: &Document, symbols: &SymbolTable, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, symbols, id, &mut out);
    out
}

fn write_node(doc: &Document, symbols: &SymbolTable, id: NodeId, out: &mut String) {
    let n = doc.node(id);
    match &n.kind {
        NodeKind::Element { tag, attrs } => {
            let name = symbols.name(*tag);
            out.push('<');
            out.push_str(name);
            for (a, v) in attrs.iter() {
                let _ = write!(out, " {}=\"{}\"", symbols.name(*a), escape_attr(v));
            }
            if n.children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for &c in &n.children {
                    write_node(doc, symbols, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_with;

    fn roundtrip(s: &str) -> String {
        let mut st = SymbolTable::new();
        let doc = parse_with(s, &mut st).unwrap();
        to_string(&doc, &st)
    }

    #[test]
    fn roundtrips_simple_document() {
        let src = r#"<car color="red"><price>500</price><note>good &amp; cheap</note></car>"#;
        assert_eq!(roundtrip(src), src);
    }

    #[test]
    fn self_closing_for_empty_elements() {
        assert_eq!(roundtrip("<a><b></b></a>"), "<a><b/></a>");
    }

    #[test]
    fn comments_preserved() {
        assert_eq!(roundtrip("<a><!--hi--></a>"), "<a><!--hi--></a>");
    }

    #[test]
    fn subtree_serialization() {
        let mut st = SymbolTable::new();
        let doc = parse_with("<a><b>x</b><c/></a>", &mut st).unwrap();
        let b = doc.node(doc.root()).children[0];
        assert_eq!(subtree_to_string(&doc, &st, b), "<b>x</b>");
    }

    #[test]
    fn double_roundtrip_is_fixed_point() {
        let src = r#"<a q="1 &lt; 2"><b>mixed &amp; <c/> text</b></a>"#;
        let once = roundtrip(src);
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }
}

/// Serialize with two-space indentation: elements whose children are all
/// elements/comments break onto new lines; mixed or text content stays
/// inline so no whitespace-sensitive text is altered.
pub fn to_string_pretty(doc: &Document, symbols: &SymbolTable) -> String {
    let mut out = String::with_capacity(doc.len() * 20);
    write_pretty(doc, symbols, doc.root(), 0, &mut out);
    out.push('\n');
    out
}

fn write_pretty(doc: &Document, symbols: &SymbolTable, id: NodeId, depth: usize, out: &mut String) {
    let n = doc.node(id);
    let indent = |out: &mut String, d: usize| {
        for _ in 0..d {
            out.push_str("  ");
        }
    };
    match &n.kind {
        NodeKind::Element { tag, attrs } => {
            let name = symbols.name(*tag);
            indent(out, depth);
            out.push('<');
            out.push_str(name);
            for (a, v) in attrs.iter() {
                let _ = std::fmt::Write::write_fmt(
                    out,
                    format_args!(" {}=\"{}\"", symbols.name(*a), escape_attr(v)),
                );
            }
            if n.children.is_empty() {
                out.push_str("/>");
                return;
            }
            let structured = n
                .children
                .iter()
                .all(|&c| !matches!(doc.node(c).kind, NodeKind::Text(_)));
            out.push('>');
            if structured {
                for &c in &n.children {
                    out.push('\n');
                    write_pretty(doc, symbols, c, depth + 1, out);
                }
                out.push('\n');
                indent(out, depth);
            } else {
                // Mixed/text content: inline, exactly as the compact writer
                // would emit it, to keep text verbatim.
                for &c in &n.children {
                    write_node(doc, symbols, c, out);
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Text(t) => {
            indent(out, depth);
            out.push_str(&escape_text(t));
        }
        NodeKind::Comment(c) => {
            indent(out, depth);
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
    }
}

#[cfg(test)]
mod pretty_tests {
    use super::*;
    use crate::parser::parse_with;

    #[test]
    fn pretty_prints_structured_content() {
        let mut st = SymbolTable::new();
        let doc = parse_with("<a><b><c/></b><d/></a>", &mut st).unwrap();
        assert_eq!(
            to_string_pretty(&doc, &st),
            "<a>\n  <b>\n    <c/>\n  </b>\n  <d/>\n</a>\n"
        );
    }

    #[test]
    fn pretty_keeps_text_content_inline_and_verbatim() {
        let mut st = SymbolTable::new();
        let doc = parse_with("<a><b>keep  this text</b></a>", &mut st).unwrap();
        let pretty = to_string_pretty(&doc, &st);
        assert!(pretty.contains("<b>keep  this text</b>"), "{pretty}");
    }

    #[test]
    fn pretty_output_reparses_equivalently_for_structured_docs() {
        let mut st = SymbolTable::new();
        let doc = parse_with("<dealer><car><price>5</price></car></dealer>", &mut st).unwrap();
        let pretty = to_string_pretty(&doc, &st);
        let mut st2 = SymbolTable::new();
        let doc2 = parse_with(&pretty, &mut st2).unwrap();
        assert_eq!(to_string(&doc, &st), to_string(&doc2, &st2));
    }
}
