//! Effectiveness demo (paper §7.1): one INEX-like topic, baseline vs
//! personalized retrieval.
//!
//! Topic 131 looks for abstracts about "data mining"; the assessor also
//! accepts abstracts about association rules, data cubes, and knowledge
//! discovery — vocabulary only the user profile knows. The demo shows the
//! raw query missing those components and the personalized query
//! recovering them.
//!
//! Run with: `cargo run --example inex_search`

use pimento::profile::{Atom, KeywordOrderingRule, ScopingRule, UserProfile};
use pimento::{Engine, SearchOptions};
use pimento_datagen::inex;

fn main() {
    let corpus = inex::generate(2007);
    let engine = Engine::from_xml_docs(&corpus.xml_docs).expect("corpus parses");
    let topic = corpus
        .topics
        .iter()
        .find(|t| t.id == 131)
        .expect("topic 131 exists");
    let relevant = &corpus.relevant[&topic.id];
    println!(
        "topic {}: query phrase {:?}, narrative terms {:?}",
        topic.id, topic.query_phrase, topic.related
    );
    println!("assessor marked {} components relevant\n", relevant.len());

    let query = format!(r#"//article//abs[about(., "{}")]"#, topic.query_phrase);

    // Baseline: raw NEXI query.
    let base = engine
        .search(&query, &UserProfile::new(), &SearchOptions::top(5))
        .expect("query runs");
    report("baseline", &engine, &base, relevant);

    // Personalized: relax the phrase requirement (broadening SR) and rank
    // by the narrative keywords (KORs — the §7.1 shorthand expansion).
    let mut profile = UserProfile::new().with_scoping(ScopingRule::delete(
        "relax",
        vec![Atom::ft("abs", topic.query_phrase)],
        vec![Atom::ft("abs", topic.query_phrase)],
    ));
    for kor in KeywordOrderingRule::multi("narrative", "abs", topic.related, 1.0) {
        profile = profile.with_kor(kor);
    }
    let personalized = engine
        .search(&query, &profile, &SearchOptions::top(5))
        .expect("query runs");
    report("personalized", &engine, &personalized, relevant);
}

fn report(
    label: &str,
    engine: &Engine,
    res: &pimento::SearchResults,
    relevant: &std::collections::BTreeSet<String>,
) {
    let cid_sym = engine.db().coll.symbols().get("cid");
    let mut hits_rel = 0;
    println!("=== {label}: top {} ===", res.hits.len());
    for h in &res.hits {
        let cid = cid_sym
            .and_then(|s| engine.db().coll.node(h.elem).attr(s))
            .unwrap_or("?")
            .to_string();
        let is_rel = relevant.contains(&cid);
        hits_rel += usize::from(is_rel);
        println!(
            "  #{} [{}] K={:.1} S={:.3} {}  {}",
            h.rank,
            cid,
            h.k,
            h.s,
            if is_rel { "RELEVANT" } else { "-" },
            &h.text[..h.text.len().min(60)]
        );
    }
    println!(
        "  -> {hits_rel}/{} retrieved are assessed relevant\n",
        res.hits.len()
    );
}
