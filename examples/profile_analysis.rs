//! Static analysis showcase (paper §5): detecting and resolving
//! conflicting scoping rules and ambiguous ordering rules.
//!
//! Run with: `cargo run --example profile_analysis`

use pimento::profile::{
    analyze_conflicts, detect_ambiguity, detect_ambiguity_with_priorities, Atom, PrefRel,
    ScopingRule, ValueOrderingRule,
};
use pimento::tpq::parse_tpq;

fn main() {
    conflict_demo();
    ambiguity_demo();
    prefrel_demo();
}

/// §5.1: ρ1 and ρ3 conflict with each other on the running example — a
/// cycle only priorities can break.
fn conflict_demo() {
    println!("=== scoping-rule conflicts (paper §5.1) ===");
    let query = parse_tpq(
        r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
    )
    .unwrap();
    let rho1 = ScopingRule::delete(
        "rho1",
        vec![
            Atom::pc("car", "description"),
            Atom::ft("description", "low mileage"),
        ],
        vec![Atom::ft("description", "good condition")],
    );
    let rho3 = ScopingRule::delete(
        "rho3",
        vec![
            Atom::pc("car", "description"),
            Atom::ft("description", "good condition"),
        ],
        vec![Atom::ft("description", "low mileage")],
    );

    match analyze_conflicts(&[rho1.clone(), rho3.clone()], &query) {
        Ok(_) => unreachable!("rho1/rho3 form a conflict cycle"),
        Err(e) => println!("without priorities: {e}"),
    }
    let fixed = [rho1.with_priority(2), rho3.with_priority(1)];
    let analysis = analyze_conflicts(&fixed, &query).expect("priorities break the cycle");
    println!(
        "with priorities: resolution {:?}, application order {:?}\n",
        analysis.resolution,
        analysis
            .order
            .iter()
            .map(|&i| fixed[i].id.clone())
            .collect::<Vec<_>>()
    );
}

/// §5.2: π1 (prefer red) and π2 (prefer lower mileage) are ambiguous —
/// the constraint graph has an alternating cycle.
fn ambiguity_demo() {
    println!("=== ordering-rule ambiguity (paper §5.2) ===");
    let pi1 = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
    let pi2 = ValueOrderingRule::prefer_smaller("pi2", "car", "mileage");
    let report = detect_ambiguity(&[pi1.clone(), pi2.clone()]);
    println!("pi1 + pi2 ambiguous: {}", report.is_ambiguous());
    for c in &report.cycles {
        println!("  alternating cycle through: {:?}", c.rule_ids);
    }
    // The paper's fix: priority 1 to π2, priority 2 to π1 — "low mileage
    // cars preferred; all else equal, red preferred".
    let fixed = [pi1.with_priority(2), pi2.with_priority(1)];
    println!(
        "after priorities: ambiguous = {}",
        detect_ambiguity_with_priorities(&fixed).is_ambiguous()
    );
    // Duplicated rules are NOT ambiguous (no database can realize the
    // alternating cycle).
    let dup = [
        ValueOrderingRule::prefer_smaller("a", "car", "mileage"),
        ValueOrderingRule::prefer_smaller("b", "car", "mileage"),
    ];
    println!(
        "two identical mileage rules ambiguous: {}\n",
        detect_ambiguity(&dup).is_ambiguous()
    );
}

/// §3.2 form (3): a user-defined partial order on colors.
fn prefrel_demo() {
    println!("=== partial-order preferences (paper §3.2, form 3) ===");
    let order = PrefRel::new([("red", "black"), ("black", "silver"), ("red", "white")]).unwrap();
    println!(
        "red over silver (transitive): {}",
        order.prefers("red", "silver")
    );
    println!(
        "white vs silver incomparable: {}",
        order.incomparable("white", "silver")
    );
    match PrefRel::new([("a", "b"), ("b", "a")]) {
        Err(e) => println!("cyclic preference rejected: {e}"),
        Ok(_) => unreachable!(),
    }
}
