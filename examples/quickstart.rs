//! Quickstart: the paper's running example end to end.
//!
//! Loads the car-sale database of Fig. 1, configures the Fig. 2 profile
//! (scoping rules ρ2/ρ3, value ordering rule π1, keyword ordering rules
//! π4/π5), and runs the query
//! `//car[description about "good condition"/"low mileage" and price < 2000]`.
//!
//! Run with: `cargo run --example quickstart`

use pimento::profile::{Atom, KeywordOrderingRule, ScopingRule, UserProfile, ValueOrderingRule};
use pimento::{Engine, SearchOptions};
use pimento_datagen::carsale;

fn main() {
    // A small dealer corpus: the paper's Fig. 1 document plus 30 random
    // listings for contrast.
    let engine = Engine::from_xml_docs(&[
        carsale::paper_figure1().to_string(),
        carsale::generate_dealer(7, 30),
    ])
    .expect("documents parse");

    let query = r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#;

    // The Fig. 2 profile.
    let profile = UserProfile::new()
        // ρ2: if the query asks for good-condition cars, also reward
        // "american" descriptions.
        .with_scoping(ScopingRule::add(
            "rho2",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "american")],
        ))
        // ρ3: drop the hard "low mileage" requirement (it becomes an
        // optional score contributor).
        .with_scoping(ScopingRule::delete(
            "rho3",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "low mileage")],
        ))
        // π1: prefer red cars.
        .with_vor(ValueOrderingRule::prefer_value(
            "pi1", "car", "color", "red",
        ))
        // π4/π5: among all cars, prefer "best bid" offers and NYC listings.
        .with_kor(KeywordOrderingRule::new("pi4", "car", "best bid"))
        .with_kor(KeywordOrderingRule::new("pi5", "car", "NYC"));

    // Static analysis first: what will the profile do to this query?
    let report = pimento::analyze(query, &profile).expect("query parses");
    println!("=== static analysis ===\n{}", report.text);

    // Baseline: the raw query.
    let plain = engine
        .search(query, &UserProfile::new(), &SearchOptions::top(5))
        .expect("search runs");
    println!("=== without profile: {} answer(s) ===", plain.hits.len());
    for h in &plain.hits {
        println!("  #{} S={:.3} {}", h.rank, h.s, h.text);
    }

    // Personalized search.
    let res = engine
        .search(query, &profile, &SearchOptions::top(5))
        .expect("search runs");
    println!("\n=== with profile: {} answer(s) ===", res.hits.len());
    println!(
        "applied scoping rules: {:?}; flock of {}",
        res.applied_rules, res.flock_size
    );
    for h in &res.hits {
        println!("  #{} K={:.1} S={:.3} {}", h.rank, h.k, h.s, h.text);
    }
    println!("\nplan: {}", res.explain);
    println!(
        "stats: {} base answers, {} pruned, {} keyword probes",
        res.stats.base_answers, res.stats.pruned, res.stats.ft_probes
    );
}
