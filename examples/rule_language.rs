//! The rule language, thesaurus expansion, and collection snapshots — the
//! "power user" surface of the library.
//!
//! Run with: `cargo run --example rule_language`

use pimento::profile::{parse_profile, PrefRel, PrefRelRegistry, Thesaurus, UserProfile};
use pimento::tpq::parse_tpq;
use pimento::{Engine, SearchOptions};
use pimento_datagen::carsale;

const PROFILE_TEXT: &str = r#"
# The paper's Fig. 2 profile, written in its own rule language.
rho2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
rho3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")

# pi2 before pi1 (priorities resolve the paper's S5.2 ambiguity).
pi1: x.tag = car & y.tag = car & colors(x.color, y.color) -> x < y {priority 2}
pi2: x.tag = car & y.tag = car & x.mileage < y.mileage -> x < y {priority 1}

pi4: x.tag = car & y.tag = car & ftcontains(x, "best bid") -> x < y {weight 2}
pi5: x.tag = car & y.tag = car & ftcontains(x, "NYC") -> x < y
"#;

fn main() {
    // Named preference relations referenced by the rules.
    let mut registry = PrefRelRegistry::new();
    registry.insert(
        "colors".to_string(),
        PrefRel::chain(&["red", "black", "silver", "white", "blue", "green"]),
    );
    let mut profile: UserProfile = parse_profile(PROFILE_TEXT, &registry).expect("profile parses");
    println!(
        "parsed profile: {} scoping rules, {} VORs, {} KORs",
        profile.scoping.len(),
        profile.vors.len(),
        profile.kors.len()
    );
    println!(
        "ambiguous after priorities: {}\n",
        profile.check_ambiguity().is_ambiguous()
    );

    let query = r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2500]"#;

    // Thesaurus expansion adds synonym rules on top.
    let mut thesaurus = Thesaurus::new();
    thesaurus.add("good condition", &["well maintained"]);
    for rule in thesaurus.expansion_rules(&parse_tpq(query).unwrap()) {
        println!("thesaurus generated: {} (weight {})", rule.id, rule.weight);
        profile = profile.with_scoping(rule);
    }

    // Build once, snapshot, reload — the reloaded engine answers
    // identically without re-parsing the XML.
    let engine = Engine::from_xml_docs_parallel(
        &(0..6)
            .map(|i| carsale::generate_dealer(i, 40))
            .collect::<Vec<_>>(),
        4,
    )
    .expect("corpus parses");
    let snapshot = engine.save_snapshot();
    println!("\nsnapshot: {} KiB", snapshot.len() / 1024);
    let engine = Engine::from_snapshot(&snapshot).expect("snapshot loads");

    let res = engine
        .search(query, &profile, &SearchOptions::top(5))
        .expect("search runs");
    println!(
        "applied rules: {:?} (flock of {})\n",
        res.applied_rules, res.flock_size
    );
    for h in &res.hits {
        println!(
            "#{} K={:<4.1} S={:.3} kors={:?} optional={:?}\n   {}",
            h.rank,
            h.k,
            h.s,
            h.satisfied_kors,
            h.satisfied_optional,
            &h.text[..h.text.len().min(90)]
        );
    }
}
