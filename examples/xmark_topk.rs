//! Performance demo (paper §7.2): the Fig. 5 workload on an XMark-like
//! document, comparing the four plan strategies.
//!
//! Run with: `cargo run --release --example xmark_topk`

use pimento::{Engine, PlanStrategy, SearchOptions};
use pimento_datagen::xmark;
use std::time::Instant;

const FIG5_QUERY: &str = r#"//person[ftcontains(.//business, "Yes")]"#;

fn main() {
    let bytes = 1024 * 1024; // 1 MB; the fig6/fig7 binaries sweep more
    println!("generating {} KB XMark-like document...", bytes / 1024);
    let xml = xmark::generate(2007, bytes);
    let t0 = Instant::now();
    let engine = Engine::from_xml_docs(&[&xml]).expect("xmark parses");
    println!(
        "parsed + indexed in {:.1} ms\n",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Fig. 5 profile: 4 KORs + the π5 VOR (age = 33).
    let profile = pimento::profile::UserProfile::new()
        .with_kor(pimento::profile::KeywordOrderingRule::new(
            "pi1", "person", "male",
        ))
        .with_kor(pimento::profile::KeywordOrderingRule::new(
            "pi2",
            "person",
            "United States",
        ))
        .with_kor(pimento::profile::KeywordOrderingRule::new(
            "pi3", "person", "College",
        ))
        .with_kor(pimento::profile::KeywordOrderingRule::new(
            "pi4", "person", "Phoenix",
        ))
        .with_vor(pimento::profile::ValueOrderingRule::prefer_value(
            "pi5", "person", "age", "33",
        ));

    println!(
        "{:<12} {:>9} {:>12} {:>12}",
        "Plan", "time(ms)", "base answers", "pruned"
    );
    let mut reference: Option<Vec<(u32, u32)>> = None;
    for strategy in PlanStrategy::all() {
        let opts = SearchOptions::top(10).with_strategy(strategy);
        let t0 = Instant::now();
        let res = engine
            .search(FIG5_QUERY, &profile, &opts)
            .expect("query runs");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<12} {:>9.2} {:>12} {:>12}",
            strategy.paper_name(),
            ms,
            res.stats.base_answers,
            res.stats.pruned
        );
        // All strategies must return the same top-k.
        let key: Vec<(u32, u32)> = res
            .hits
            .iter()
            .map(|h| (h.elem.doc.0, h.elem.node.0))
            .collect();
        match &reference {
            Some(r) => assert_eq!(&key, r, "{} disagrees", strategy.paper_name()),
            None => reference = Some(key),
        }
    }

    let res = engine
        .search(FIG5_QUERY, &profile, &SearchOptions::top(10))
        .expect("query runs");
    println!("\ntop-10 under PushTopkPrune (K = #KORs satisfied; π5 prefers age 33):");
    for h in &res.hits {
        println!(
            "  #{} K={:.0} S={:.3} {}",
            h.rank,
            h.k,
            h.s,
            &h.text[..h.text.len().min(70)]
        );
    }
}
