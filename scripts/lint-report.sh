#!/usr/bin/env bash
# Group a `lint --workspace --format json` report by rule.
#
# Usage:
#   cargo run -p lint -- --workspace --format json | scripts/lint-report.sh
#   scripts/lint-report.sh report.json
#
# Prints a per-rule violation count with the offending sites, then the
# stale-allowlist entries and the summary line. Exits 0 iff the report is
# clean, so piping the lint run through this script preserves the gate
# (with pipefail the lint exit code is carried through as well).
#
# The lint JSON places one violation object per line and keeps the
# summary fields on lines of their own, so plain awk/sed suffice — the
# gate stays dependency-free (no jq in the image).
set -euo pipefail

json="$(cat "${1:-/dev/stdin}")"

findings="$(printf '%s\n' "$json" | awk '
  /"rule": "/ {
    rule = $0;  sub(/.*"rule": "/, "", rule);  sub(/".*/, "", rule)
    path = $0;  sub(/.*"path": "/, "", path);  sub(/".*/, "", path)
    line = $0;  sub(/.*"line": /, "", line);   sub(/[^0-9].*/, "", line)
    print rule, path ":" line
  }
')"

if [ -n "$findings" ]; then
  printf '%s\n' "$findings" | cut -d' ' -f1 | sort | uniq -c | sort -rn |
    while read -r count rule; do
      echo "[$rule] $count finding(s):"
      printf '%s\n' "$findings" | awk -v r="$rule" '$1 == r { print "    " $2 }'
    done
  # Per-crate rollup: panic-path roots span several crates (algebra,
  # index, core, serve, ingest), so attribute findings to the crate that
  # owns the panic site.
  echo "findings by crate:"
  printf '%s\n' "$findings" | awk '{
    crate = $2
    sub(/^crates\//, "", crate); sub(/\/.*/, "", crate)
    print crate
  }' | sort | uniq -c | sort -rn |
    while read -r count crate; do
      echo "    $crate: $count"
    done
fi

stale="$(printf '%s\n' "$json" | sed -n 's/.*"stale_allowlist_entries": \[\(..*\)\].*/\1/p')"
if [ -n "$stale" ]; then
  echo "stale allowlist entries (match nothing — delete them): $stale"
fi

files="$(printf '%s\n' "$json" | sed -n 's/.*"files_scanned": \([0-9]*\).*/\1/p')"
allowed="$(printf '%s\n' "$json" | sed -n 's/.*"allowed": \([0-9]*\).*/\1/p')"
clean="$(printf '%s\n' "$json" | sed -n 's/.*"clean": \(true\|false\).*/\1/p')"
echo "lint-report: ${files:-?} file(s) scanned, ${allowed:-?} allowlisted, clean=${clean:-?}"
[ "$clean" = "true" ]
