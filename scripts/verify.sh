#!/usr/bin/env bash
# Full verification: the tier-1 gate (ROADMAP.md) plus the lint gate.
# Run from the repo root. Any failure aborts with a non-zero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> tier-1: cargo bench --no-run (criterion harnesses compile)"
cargo bench --no-run

echo "==> lint gate: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lint gate: pimento-lint workspace invariants (JSON report)"
cargo run -p lint --release -- --workspace --format json | scripts/lint-report.sh

echo "==> lint gate: cargo test -q -p lint"
cargo test -q -p lint

echo "==> serve gate: cargo test -q -p pimento-serve (loopback integration)"
cargo test -q -p pimento-serve

echo "==> chaos gate: cargo test -q -p pimento-serve --features fault-injection"
cargo test -q -p pimento-serve --features fault-injection

echo "==> chaos gate: clippy over the fault-injection configuration"
cargo clippy -p pimento-serve --features fault-injection --all-targets -- -D warnings

echo "==> serve gate: loadgen --smoke (start server, search, clean shutdown)"
cargo run -q -p pimento-bench --release --bin loadgen -- --smoke

echo "==> snapshot gate: persistence + columnar round-trip tests"
cargo test -q -p pimento-index
cargo test -q -p pimento-suite --test snapshot_equivalence

echo "==> snapshot gate: build + inspect a fresh v4 fixture"
SNAP_DIR="$(mktemp -d)"
trap 'rm -rf "$SNAP_DIR"' EXIT
cat > "$SNAP_DIR/fixture.xml" <<'XML'
<dealer><car><description>good condition low mileage</description><price>1500</price></car></dealer>
XML
cargo run -q -p pimento-serve --release --bin pimento -- \
  snapshot build --docs "$SNAP_DIR/fixture.xml" --out "$SNAP_DIR/fixture.v4.snap"
cargo run -q -p pimento-serve --release --bin pimento -- \
  snapshot inspect "$SNAP_DIR/fixture.v4.snap"

echo "==> shard gate: scatter-gather bit-identity tests"
cargo test -q -p pimento-suite --test shard_equivalence

echo "==> shard gate: loadgen --smoke --shards 4 (sharded serving end to end)"
cargo run -q -p pimento-bench --release --bin loadgen -- --smoke --shards 4

echo "==> shard gate: sharded snapshot build + inspect round-trip"
for i in 1 2 3; do
  cp "$SNAP_DIR/fixture.xml" "$SNAP_DIR/fixture$i.xml"
done
cargo run -q -p pimento-serve --release --bin pimento -- \
  snapshot build --docs "$SNAP_DIR"/fixture?.xml --out "$SNAP_DIR/sharded" --shards 3
cargo run -q -p pimento-serve --release --bin pimento -- \
  snapshot inspect "$SNAP_DIR/sharded"

echo "==> ingest gate: write-path pipeline tests"
cargo test -q -p pimento-ingest

echo "==> ingest gate: chaos suite with write-path faults"
cargo test -q -p pimento-ingest --features fault-injection
cargo test -q -p pimento-serve --features fault-injection --test chaos -- ingest publish_crash

echo "==> ingest gate: clippy over the ingest fault-injection configuration"
cargo clippy -p pimento-ingest --features fault-injection --all-targets -- -D warnings

echo "==> ingest gate: loadgen --ingest-mix --quick (writes vs queries end to end)"
cargo run -q -p pimento-bench --release --bin loadgen -- --ingest-mix --quick

echo "==> crash gate: exhaustive crash-point matrices (kill at every VFS mutation)"
cargo test -q -p pimento-ingest --features fault-injection --test crash_matrix
cargo test -q -p pimento-serve --features fault-injection --test crash_matrix

echo "==> scrub gate: single-bit-flip detection/quarantine/repair + storage fuzz"
cargo test -q -p pimento-serve --features fault-injection --test scrub_integrity
cargo test -q -p pimento-index --test storage_fuzz

echo "==> scrub gate: one-shot pimento scrub over a fresh sharded snapshot"
cargo run -q -p pimento-serve --release --bin pimento -- scrub --data-dir "$SNAP_DIR/sharded"

echo "==> verify OK"
