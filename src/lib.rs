//! Umbrella crate for the PIMENTO workspace: hosts the cross-crate
//! integration tests (`tests/`) and runnable examples (`examples/`).
//!
//! The library surface lives in the [`pimento`] facade crate; this crate
//! only re-exports it so the examples and tests have a single import root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pimento;
