//! Cross-crate integration: the full engine pipeline on the car-sale
//! corpus — parsing, indexing, profile enforcement, planning, ranking.

use pimento::profile::{
    Atom, KeywordOrderingRule, PrefRel, RankOrder, ScopingRule, UserProfile, ValueOrderingRule,
};
use pimento::{Engine, PlanStrategy, SearchOptions};
use pimento_datagen::carsale;

fn engine() -> Engine {
    Engine::from_xml_docs(&[
        carsale::paper_figure1().to_string(),
        carsale::generate_dealer(99, 120),
    ])
    .expect("corpus parses")
}

const QUERY_Q: &str = r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#;

#[test]
fn personalization_expands_the_answer_set() {
    let e = engine();
    let plain = e
        .search(QUERY_Q, &UserProfile::new(), &SearchOptions::top(20))
        .unwrap();
    let profile = UserProfile::new().with_scoping(ScopingRule::delete(
        "rho3",
        vec![Atom::ft("description", "good condition")],
        vec![Atom::ft("description", "low mileage")],
    ));
    let personalized = e
        .search(QUERY_Q, &profile, &SearchOptions::top(20))
        .unwrap();
    assert!(
        personalized.hits.len() > plain.hits.len(),
        "dropping the low-mileage requirement must widen the result: {} vs {}",
        personalized.hits.len(),
        plain.hits.len()
    );
    // Every plain answer is still an answer after broadening (the paper's
    // "user should not be penalized" guarantee), within the larger k.
    let p_set: std::collections::HashSet<_> = personalized.hits.iter().map(|h| h.elem).collect();
    let widened = e
        .search(QUERY_Q, &profile, &SearchOptions::top(200))
        .unwrap();
    let w_set: std::collections::HashSet<_> = widened.hits.iter().map(|h| h.elem).collect();
    for h in &plain.hits {
        assert!(
            w_set.contains(&h.elem),
            "original answer lost by personalization"
        );
    }
    let _ = p_set;
}

#[test]
fn narrowing_rule_only_reranks_never_filters() {
    let e = engine();
    let profile = UserProfile::new().with_scoping(ScopingRule::add(
        "rho2",
        vec![Atom::ft("description", "good condition")],
        vec![Atom::ft("description", "american")],
    ));
    let plain = e
        .search(QUERY_Q, &UserProfile::new(), &SearchOptions::top(100))
        .unwrap();
    let narrowed = e
        .search(QUERY_Q, &profile, &SearchOptions::top(100))
        .unwrap();
    assert_eq!(
        plain.hits.len(),
        narrowed.hits.len(),
        "added predicates are optional — the answer set is unchanged"
    );
    // But american cars must gain score.
    let american: Vec<_> = narrowed
        .hits
        .iter()
        .filter(|h| h.text.contains("american"))
        .collect();
    if let Some(a) = american.first() {
        let plain_s = plain.hits.iter().find(|h| h.elem == a.elem).unwrap().s;
        assert!(
            a.s > plain_s,
            "american car gains score: {} vs {}",
            a.s,
            plain_s
        );
    }
}

#[test]
fn kor_dominates_s_in_kvs_order() {
    let e = engine();
    let profile = UserProfile::new().with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"));
    let res = e
        .search(
            r#"//car[ftcontains(., "good condition")]"#,
            &profile,
            &SearchOptions::top(10),
        )
        .unwrap();
    // All NYC answers must precede all non-NYC answers.
    let ks: Vec<f64> = res.hits.iter().map(|h| h.k).collect();
    let mut sorted = ks.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert_eq!(ks, sorted, "answers must be K-sorted: {ks:?}");
}

#[test]
fn vks_rank_order_puts_vor_first() {
    let e = engine();
    let order = PrefRel::chain(&["red", "black", "silver", "blue", "white", "green"]);
    let base = UserProfile::new()
        .with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"))
        .with_vor(ValueOrderingRule::prefer_order(
            "col", "car", "color", order,
        ));
    let kvs = base.clone().with_rank_order(RankOrder::Kvs);
    let vks = base.with_rank_order(RankOrder::Vks);
    let q = "//car[./color]";
    let res_kvs = e.search(q, &kvs, &SearchOptions::top(10)).unwrap();
    let res_vks = e.search(q, &vks, &SearchOptions::top(10)).unwrap();
    // Under V,K,S the top answer must be from the best color layer
    // present; under K,V,S it must have the max K.
    let max_k = res_kvs.hits.iter().map(|h| h.k).fold(f64::MIN, f64::max);
    assert_eq!(res_kvs.hits[0].k, max_k);
    let top_vks_color = &res_vks.hits[0];
    assert!(
        top_vks_color.xml.contains("red")
            || !res_vks.hits.iter().any(|h| h.xml.contains("<color>red")),
        "V,K,S must surface a red car first when one exists"
    );
}

#[test]
fn all_strategies_agree_on_dealer_corpus() {
    let e = engine();
    let profile = UserProfile::new()
        .with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"))
        .with_kor(KeywordOrderingRule::weighted("bid", "car", "best bid", 2.0))
        .with_vor(ValueOrderingRule::prefer_value(
            "red", "car", "color", "red",
        ));
    let mut reference: Option<Vec<_>> = None;
    for strategy in PlanStrategy::all() {
        let res = e
            .search(
                r#"//car[ftcontains(., "good condition")]"#,
                &profile,
                &SearchOptions::top(7).with_strategy(strategy),
            )
            .unwrap();
        let key: Vec<_> = res.hits.iter().map(|h| h.elem).collect();
        match &reference {
            Some(r) => assert_eq!(&key, r, "{}", strategy.paper_name()),
            None => reference = Some(key),
        }
    }
}

#[test]
fn multi_document_collection_search() {
    let docs: Vec<String> = (0..5).map(|i| carsale::generate_dealer(i, 20)).collect();
    let e = Engine::from_xml_docs(&docs).unwrap();
    let res = e
        .search(
            r#"//car[./price < 1000]"#,
            &UserProfile::new(),
            &SearchOptions::top(50),
        )
        .unwrap();
    assert!(!res.hits.is_empty());
    let distinct_docs: std::collections::HashSet<_> = res.hits.iter().map(|h| h.elem.doc).collect();
    assert!(
        distinct_docs.len() > 1,
        "answers should come from several documents"
    );
}

#[test]
fn k_larger_than_answer_count() {
    let e = Engine::from_xml_docs(&[carsale::paper_figure1()]).unwrap();
    let res = e
        .search("//car", &UserProfile::new(), &SearchOptions::top(100))
        .unwrap();
    assert_eq!(res.hits.len(), 3);
}

#[test]
fn no_matches_is_empty_not_error() {
    let e = Engine::from_xml_docs(&[carsale::paper_figure1()]).unwrap();
    let res = e
        .search(
            r#"//car[ftcontains(., "nonexistent-keyword")]"#,
            &UserProfile::new(),
            &SearchOptions::top(5),
        )
        .unwrap();
    assert!(res.hits.is_empty());
}

#[test]
fn weighted_sr_extension_scales_scores() {
    let e = engine();
    let light = UserProfile::new().with_scoping(
        ScopingRule::add("a", vec![], vec![Atom::ft("description", "american")]).with_weight(0.5),
    );
    let heavy = UserProfile::new().with_scoping(
        ScopingRule::add("a", vec![], vec![Atom::ft("description", "american")]).with_weight(3.0),
    );
    let q = r#"//car[ftcontains(., "good condition")]"#;
    let res_l = e.search(q, &light, &SearchOptions::top(50)).unwrap();
    let res_h = e.search(q, &heavy, &SearchOptions::top(50)).unwrap();
    let s_l: f64 = res_l
        .hits
        .iter()
        .filter(|h| h.text.contains("american"))
        .map(|h| h.s)
        .sum();
    let s_h: f64 = res_h
        .hits
        .iter()
        .filter(|h| h.text.contains("american"))
        .map(|h| h.s)
        .sum();
    assert!(
        s_h > s_l,
        "heavier SR weight must contribute more score: {s_h} vs {s_l}"
    );
}

#[test]
fn ftall_proximity_and_order_predicates() {
    let e = Engine::from_xml_docs(&[r#"<dealer>
        <car><description>good cheap car</description></car>
        <car><description>cheap paint but good engine overall a really long description here</description></car>
        <car><description>good engine</description></car>
    </dealer>"#])
    .unwrap();
    // Unordered, windowless: both cars with both words.
    let both = e
        .search(
            r#"//car[ftall(., "good", "cheap")]"#,
            &UserProfile::new(),
            &SearchOptions::top(10),
        )
        .unwrap();
    assert_eq!(both.hits.len(), 2);
    // Tight window: only the first car has them adjacent.
    let tight = e
        .search(
            r#"//car[ftall(., "good", "cheap" window 2)]"#,
            &UserProfile::new(),
            &SearchOptions::top(10),
        )
        .unwrap();
    assert_eq!(tight.hits.len(), 1);
    assert!(tight.hits[0].text.starts_with("good cheap"));
    // Ordered: "good" before "cheap" — only the first car again.
    let ordered = e
        .search(
            r#"//car[ftall(., "good", "cheap" ordered)]"#,
            &UserProfile::new(),
            &SearchOptions::top(10),
        )
        .unwrap();
    assert_eq!(ordered.hits.len(), 1);
    // ftall predicates contribute to S.
    assert!(ordered.hits[0].s > 0.0);
}

#[test]
fn thesaurus_expansion_recovers_synonym_matches() {
    use pimento::profile::Thesaurus;
    let e = Engine::from_xml_docs(&[r#"<dealer>
        <car><description>good condition sedan</description></car>
        <car><description>well maintained sedan</description></car>
        <car><description>rusty sedan</description></car>
    </dealer>"#])
    .unwrap();
    let query = r#"//car[ftcontains(./description, "good condition")]"#;
    // Raw query: one answer.
    let plain = e
        .search(query, &UserProfile::new(), &SearchOptions::top(10))
        .unwrap();
    assert_eq!(plain.hits.len(), 1);
    // With thesaurus expansion the synonym match surfaces, ranked below
    // the exact match... with a relaxing rule. Expansion alone only adds
    // optional predicates; combine with a relax-style delete to broaden.
    let mut thesaurus = Thesaurus::new();
    thesaurus.add("good condition", &["well maintained"]);
    let tpq = pimento::tpq::parse_tpq(query).unwrap();
    let mut profile = UserProfile::new().with_scoping(ScopingRule::delete(
        "relax",
        vec![Atom::ft("description", "good condition")],
        vec![Atom::ft("description", "good condition")],
    ));
    for r in thesaurus.expansion_rules(&tpq) {
        profile = profile.with_scoping(r);
    }
    let expanded = e.search(query, &profile, &SearchOptions::top(10)).unwrap();
    assert_eq!(expanded.hits.len(), 3, "broadened: all cars are candidates");
    assert!(
        expanded.hits[0].text.contains("good condition"),
        "exact match first"
    );
    assert!(
        expanded.hits[1].text.contains("well maintained"),
        "synonym second"
    );
    assert!(expanded.hits[1].s > expanded.hits[2].s);
}

#[test]
fn structural_join_mode_agrees_with_default() {
    let e = engine();
    let profile = UserProfile::new()
        .with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"))
        .with_vor(ValueOrderingRule::prefer_value(
            "red", "car", "color", "red",
        ));
    let q = r#"//car[ftcontains(., "good condition") and ./price < 3000]"#;
    let a = e.search(q, &profile, &SearchOptions::top(8)).unwrap();
    let b = e
        .search(
            q,
            &profile,
            &SearchOptions::top(8).with_eval_mode(pimento::EvalMode::StructuralJoin),
        )
        .unwrap();
    assert_eq!(a.elem_refs(), b.elem_refs());
    assert!(b.explain.contains("structural-join"));
}

#[test]
fn pagination_pages_are_consistent() {
    let e = engine();
    let q = r#"//car[ftcontains(., "good condition")]"#;
    let all = e
        .search(q, &UserProfile::new(), &SearchOptions::top(9))
        .unwrap();
    let page1 = e
        .search(q, &UserProfile::new(), &SearchOptions::top(3))
        .unwrap();
    let page2 = e
        .search(
            q,
            &UserProfile::new(),
            &SearchOptions::top(3).with_offset(3),
        )
        .unwrap();
    let page3 = e
        .search(
            q,
            &UserProfile::new(),
            &SearchOptions::top(3).with_offset(6),
        )
        .unwrap();
    let paged: Vec<_> = page1
        .hits
        .iter()
        .chain(&page2.hits)
        .chain(&page3.hits)
        .map(|h| h.elem)
        .collect();
    assert_eq!(
        paged,
        all.elem_refs(),
        "pages concatenate to the full top-9"
    );
    // Ranks continue across pages.
    assert_eq!(page2.hits[0].rank, 4);
    assert_eq!(page3.hits[2].rank, 9);
}

#[test]
fn auto_options_match_explicit_results() {
    let e = engine();
    let profile = UserProfile::new()
        .with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"))
        .with_vor(ValueOrderingRule::prefer_value(
            "red", "car", "color", "red",
        ));
    let q = r#"//car[./description[ftcontains(., "good condition")] and ./price < 3000]"#;
    let explicit = e.search(q, &profile, &SearchOptions::top(6)).unwrap();
    let auto = e.search(q, &profile, &SearchOptions::auto(6)).unwrap();
    assert_eq!(explicit.elem_refs(), auto.elem_refs());
}

#[test]
fn shipped_profile_files_parse_and_run() {
    use pimento::profile::{parse_profile, PrefRelRegistry};
    let fig2 = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/profiles/fig2.rules"))
        .expect("profiles/fig2.rules exists");
    let profile = parse_profile(&fig2, &PrefRelRegistry::new()).expect("fig2.rules parses");
    assert_eq!(profile.scoping.len(), 3);
    assert_eq!(profile.vors.len(), 3);
    assert_eq!(profile.kors.len(), 2);
    assert!(
        !profile.check_ambiguity().is_ambiguous(),
        "priorities separate pi1/pi2"
    );
    assert!(pimento::profile::validate(&profile).is_empty());
    let e = engine();
    let res = e
        .search(QUERY_Q, &profile, &SearchOptions::top(5))
        .expect("fig2 profile executes");
    assert!(!res.hits.is_empty());
    let fig5 = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/profiles/fig5.rules"))
        .expect("profiles/fig5.rules exists");
    let p5 = parse_profile(&fig5, &PrefRelRegistry::new()).expect("fig5.rules parses");
    assert_eq!(p5.kors.len(), 4);
    assert_eq!(p5.vors.len(), 1);
}

#[test]
fn engine_is_shareable_across_threads() {
    // All index structures are immutable after build, so one engine can
    // serve concurrent queries.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();

    let e = engine();
    let profile = UserProfile::new().with_kor(KeywordOrderingRule::new("nyc", "car", "NYC"));
    let reference = e
        .search(QUERY_Q, &profile, &SearchOptions::top(5))
        .unwrap()
        .elem_refs();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let e = &e;
            let profile = &profile;
            let reference = reference.clone();
            scope.spawn(move || {
                for _ in 0..5 {
                    let res = e.search(QUERY_Q, profile, &SearchOptions::top(5)).unwrap();
                    assert_eq!(res.elem_refs(), reference);
                }
            });
        }
    });
}

#[test]
fn engine_add_xml_extends_a_live_engine() {
    let mut e = Engine::from_xml_docs(&[
        "<dealer><car><d>good condition</d><price>100</price></car></dealer>",
    ])
    .unwrap();
    let q = r#"//car[ftcontains(., "good condition")]"#;
    assert_eq!(
        e.search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap()
            .hits
            .len(),
        1
    );
    e.add_xml("<dealer><car><d>also good condition</d><price>300</price></car></dealer>")
        .unwrap();
    let res = e
        .search(q, &UserProfile::new(), &SearchOptions::top(10))
        .unwrap();
    assert_eq!(res.hits.len(), 2);
    // The value index also grew: the range-seeded structural join sees
    // both prices.
    let cheap = e
        .search(
            "//car/price[. < 500]",
            &UserProfile::new(),
            &SearchOptions::top(10).with_eval_mode(pimento::EvalMode::StructuralJoin),
        )
        .unwrap();
    assert_eq!(cheap.hits.len(), 2);
    // Snapshots taken after the incremental add round-trip everything.
    let restored = Engine::from_snapshot(&e.save_snapshot()).unwrap();
    assert_eq!(
        restored
            .search(q, &UserProfile::new(), &SearchOptions::top(10))
            .unwrap()
            .hits
            .len(),
        2
    );
}

#[test]
fn auto_picks_structural_join_for_twigs() {
    let e = engine();
    let twig = r#"//car[./description[ftcontains(., "good condition")] and ./price < 3000]"#;
    let res = e
        .search(twig, &UserProfile::new(), &SearchOptions::auto(3))
        .unwrap();
    assert!(res.explain.contains("structural-join"), "{}", res.explain);
    let single = e
        .search("//car", &UserProfile::new(), &SearchOptions::auto(3))
        .unwrap();
    assert!(
        !single.explain.contains("structural-join"),
        "{}",
        single.explain
    );
}
