//! Differential semantics of the flock encoding: the single-plan
//! (annotated) query must accept every answer of every literal flock
//! member, and coincide with the literal union for deletion-only and
//! addition-only profiles.

use pimento::algebra::{Database, Matcher};
use pimento::index::Collection;
use pimento::profile::{personalize, Atom, PersonalizedQuery, ScopingRule};
use pimento::tpq::parse_tpq;
use pimento_datagen::carsale;
use proptest::prelude::*;
use std::collections::BTreeSet;

const QUERY: &str = r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 4000]"#;

const PHRASES: &[&str] = &[
    "good condition",
    "low mileage",
    "best bid",
    "american",
    "NYC",
];

fn rule(i: usize, is_add: bool, cond_phrase: usize, target_phrase: usize) -> ScopingRule {
    let cond = vec![Atom::ft(
        "description",
        PHRASES[cond_phrase % PHRASES.len()],
    )];
    let concl = vec![Atom::ft(
        "description",
        PHRASES[target_phrase % PHRASES.len()],
    )];
    if is_add {
        ScopingRule::add(&format!("r{i}"), cond, concl)
    } else {
        ScopingRule::delete(&format!("r{i}"), cond, concl)
    }
}

/// All matches of the required part of `pq` over `db`, as (doc, start).
fn matches_of(db: &Database, pq: PersonalizedQuery) -> BTreeSet<(u32, u32)> {
    let m = Matcher::new(db, pq);
    let Some(sym) = m.distinguished_tag().and_then(|t| db.coll.tag(t)) else {
        return BTreeSet::new();
    };
    let mut probes = 0;
    db.tags
        .elements(sym)
        .iter()
        .filter(|e| m.match_answer(db, e, &mut probes).is_some())
        .map(|e| (e.doc.0, e.start))
        .collect()
}

fn union_of_members(db: &Database, pq: &PersonalizedQuery) -> BTreeSet<(u32, u32)> {
    let mut union = BTreeSet::new();
    for member in &pq.flock.members {
        union.extend(matches_of(
            db,
            PersonalizedQuery::unpersonalized(member.clone()),
        ));
    }
    union
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The encoding accepts every literal flock member's answers.
    #[test]
    fn encoding_contains_literal_flock_union(
        seed in 0u64..500,
        recipes in proptest::collection::vec((any::<bool>(), 0usize..5, 0usize..5), 0..4),
    ) {
        let mut coll = Collection::new();
        coll.add_xml(&carsale::generate_dealer(seed, 40)).unwrap();
        let db = Database::index_plain(coll);
        let rules: Vec<ScopingRule> = recipes
            .iter()
            .enumerate()
            .map(|(i, &(is_add, c, t))| rule(i, is_add, c, t))
            .collect();
        let query = parse_tpq(QUERY).unwrap();
        let Ok(pq) = personalize(&query, &rules) else {
            // Cyclic conflicts without priorities: nothing to check.
            return Ok(());
        };
        let union = union_of_members(&db, &pq);
        let encoded = matches_of(&db, pq);
        prop_assert!(
            union.is_subset(&encoded),
            "encoding must not lose flock answers: union {} vs encoded {}",
            union.len(),
            encoded.len()
        );
    }

    /// For deletion-only profiles the encoding equals the literal union
    /// (the weakest member dominates).
    #[test]
    fn deletion_only_encoding_is_exact(
        seed in 0u64..500,
        recipes in proptest::collection::vec((0usize..5, 0usize..5), 1..4),
    ) {
        let mut coll = Collection::new();
        coll.add_xml(&carsale::generate_dealer(seed, 40)).unwrap();
        let db = Database::index_plain(coll);
        let rules: Vec<ScopingRule> = recipes
            .iter()
            .enumerate()
            .map(|(i, &(c, t))| rule(i, false, c, t))
            .collect();
        let query = parse_tpq(QUERY).unwrap();
        let Ok(pq) = personalize(&query, &rules) else { return Ok(()) };
        let union = union_of_members(&db, &pq);
        let encoded = matches_of(&db, pq);
        prop_assert_eq!(union, encoded);
    }

    /// For addition-only profiles the encoding equals the original query's
    /// answers (additions never filter).
    #[test]
    fn addition_only_encoding_preserves_original(
        seed in 0u64..500,
        recipes in proptest::collection::vec((0usize..5, 0usize..5), 1..4),
    ) {
        let mut coll = Collection::new();
        coll.add_xml(&carsale::generate_dealer(seed, 40)).unwrap();
        let db = Database::index_plain(coll);
        let rules: Vec<ScopingRule> = recipes
            .iter()
            .enumerate()
            .map(|(i, &(c, t))| rule(i, true, c, t))
            .collect();
        let query = parse_tpq(QUERY).unwrap();
        let Ok(pq) = personalize(&query, &rules) else { return Ok(()) };
        let original = matches_of(&db, PersonalizedQuery::unpersonalized(query));
        let encoded = matches_of(&db, pq);
        prop_assert_eq!(original, encoded);
    }
}
