//! The concrete scenarios of the paper, end to end: Fig. 2's rules and
//! conflicts, §5.2's ambiguity example, the Fig. 5 XMark workload, and the
//! §6 plan-equivalence guarantee.

use pimento::profile::{
    analyze_conflicts, detect_ambiguity, detect_ambiguity_with_priorities, personalize, Atom,
    KeywordOrderingRule, ScopingRule, UserProfile, ValueOrderingRule,
};
use pimento::tpq::parse_tpq;
use pimento::{Engine, PlanStrategy, SearchOptions};
use pimento_datagen::{paper_figure1, xmark};

/// The paper's query Q (introduction / Fig. 2).
fn query_q() -> pimento::tpq::Tpq {
    parse_tpq(
        r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
    )
    .unwrap()
}

fn rho1() -> ScopingRule {
    ScopingRule::delete(
        "rho1",
        vec![
            Atom::pc("car", "description"),
            Atom::ft("description", "low mileage"),
        ],
        vec![Atom::ft("description", "good condition")],
    )
}

fn rho2() -> ScopingRule {
    ScopingRule::add(
        "rho2",
        vec![
            Atom::pc("car", "description"),
            Atom::ft("description", "good condition"),
        ],
        vec![Atom::ft("description", "american")],
    )
}

fn rho3() -> ScopingRule {
    ScopingRule::delete(
        "rho3",
        vec![
            Atom::pc("car", "description"),
            Atom::ft("description", "good condition"),
        ],
        vec![Atom::ft("description", "low mileage")],
    )
}

#[test]
fn section_5_1_rho1_conflicts_with_rho2() {
    // "Applying ρ2 first will add ftcontains(description, american).
    //  Applying ρ1 to the result removes ftcontains(description, good
    //  condition). However, applying ρ1 first renders ρ2 inapplicable."
    let q = query_q();
    let analysis = analyze_conflicts(&[rho1(), rho2()], &q).unwrap();
    assert_eq!(analysis.arcs, vec![(0, 1)], "ρ1 conflicts with ρ2");
    // The resolved order applies ρ2 before ρ1, so both take effect.
    let pq = personalize(&q, &[rho1(), rho2()]).unwrap();
    assert_eq!(pq.flock.applied_rules, vec!["rho2", "rho1"]);
    assert_eq!(pq.flock.members.len(), 3);
}

#[test]
fn section_5_1_rho1_rho3_cycle_needs_priorities() {
    // "ρ1 and ρ3 conflict with each other" — a conflict-graph cycle.
    let q = query_q();
    let err = analyze_conflicts(&[rho1(), rho3()], &q).unwrap_err();
    assert_eq!(err.cycle.len(), 2);
    let ok = analyze_conflicts(&[rho1().with_priority(1), rho3().with_priority(2)], &q).unwrap();
    assert_eq!(ok.order, vec![0, 1]);
}

#[test]
fn section_5_2_pi1_pi2_alternating_cycle() {
    // "the rules {π1, π2} form an ambiguous set" — and the paper's fix:
    // "priority 1 to π2 and 2 to π1".
    let pi1 = ValueOrderingRule::prefer_value("pi1", "car", "color", "red");
    let pi2 = ValueOrderingRule::prefer_smaller("pi2", "car", "mileage");
    assert!(detect_ambiguity(&[pi1.clone(), pi2.clone()]).is_ambiguous());
    let fixed = [pi1.with_priority(2), pi2.with_priority(1)];
    assert!(!detect_ambiguity_with_priorities(&fixed).is_ambiguous());
}

#[test]
fn section_3_2_pi3_same_make_comparison() {
    // π3: between cars of the same make, higher horsepower preferred.
    let e = Engine::from_xml_docs(&[r#"<dealer>
        <car><make>Honda</make><hp>200</hp><price>1</price></car>
        <car><make>Honda</make><hp>120</hp><price>2</price></car>
        <car><make>Mustang</make><hp>500</hp><price>3</price></car>
    </dealer>"#])
    .unwrap();
    let profile = UserProfile::new()
        .with_vor(ValueOrderingRule::prefer_larger("pi3", "car", "hp").with_equal_attr("make"));
    let res = e.search("//car", &profile, &SearchOptions::top(3)).unwrap();
    // The 200hp Honda must precede the 120hp Honda; the Mustang is
    // incomparable to both (different make) and falls to the same top
    // layer, ordered among them by S/tiebreak.
    let hondas: Vec<usize> = res
        .hits
        .iter()
        .enumerate()
        .filter(|(_, h)| h.xml.contains("Honda"))
        .map(|(i, _)| i)
        .collect();
    let strong = res.hits.iter().position(|h| h.xml.contains("200")).unwrap();
    let weak = res.hits.iter().position(|h| h.xml.contains("120")).unwrap();
    assert!(strong < weak, "same-make dominance must order the Hondas");
    assert_eq!(hondas.len(), 2);
}

#[test]
fn fig5_workload_on_xmark_all_plans_agree() {
    let xml = xmark::generate(77, 200 * 1024);
    let e = Engine::from_xml_docs(&[&xml]).unwrap();
    let mut profile = UserProfile::new().with_vor(ValueOrderingRule::prefer_value(
        "pi5", "person", "age", "33",
    ));
    for (id, kw, w) in [
        ("pi1", "male", 0.7),
        ("pi2", "United States", 2.3),
        ("pi3", "College", 1.4),
        ("pi4", "Phoenix", 2.3),
    ] {
        profile = profile.with_kor(KeywordOrderingRule::weighted(id, "person", kw, w));
    }
    let query = r#"//person[ftcontains(.//business, "Yes")]"#;
    let mut reference: Option<Vec<_>> = None;
    for strategy in PlanStrategy::all() {
        let res = e
            .search(
                query,
                &profile,
                &SearchOptions::top(10).with_strategy(strategy),
            )
            .unwrap();
        assert_eq!(res.hits.len(), 10);
        // Top answers satisfy as many KORs as possible.
        assert!(res.hits[0].k >= res.hits[9].k);
        let key: Vec<_> = res.hits.iter().map(|h| h.elem).collect();
        match &reference {
            Some(r) => assert_eq!(&key, r, "{} differs", strategy.paper_name()),
            None => reference = Some(key),
        }
    }
}

#[test]
fn fig5_vor_pi5_prefers_age_33() {
    let xml = xmark::generate(31, 150 * 1024);
    let e = Engine::from_xml_docs(&[&xml]).unwrap();
    let profile = UserProfile::new().with_vor(ValueOrderingRule::prefer_value(
        "pi5", "person", "age", "33",
    ));
    let res = e
        .search("//person", &profile, &SearchOptions::top(5))
        .unwrap();
    // If any 33-year-old exists, the top hit must be one.
    let any33 = e
        .search(
            "//person[.//age = 33]",
            &UserProfile::new(),
            &SearchOptions::top(1),
        )
        .unwrap();
    if !any33.hits.is_empty() {
        assert!(
            res.hits[0].xml.contains("<age>33</age>"),
            "top answer must be age 33: {}",
            res.hits[0].xml
        );
    }
}

#[test]
fn flock_encoding_matches_section_6_2() {
    // Plan 1 in Fig. 4 makes "american" and "low mileage" optional while
    // keeping "good condition" required.
    let q = query_q();
    let pq = personalize(&q, &[rho2(), rho3()]).unwrap();
    assert_eq!(pq.optional_keyword_count(), 2);
    let d = pq.tpq.find_by_tag("description").unwrap();
    let good_idx = pq
        .tpq
        .node(d)
        .predicates
        .iter()
        .position(|p| matches!(p, pimento::tpq::Predicate::FtContains { phrase } if phrase == "good condition"))
        .unwrap();
    assert!(!pq.pred_is_optional(d, good_idx));
}

#[test]
fn inex_topic_documents_drive_personalization_end_to_end() {
    // §7.1's pipeline, from the topic *document*: parse the NEXI title as
    // the query, derive KORs from the narrative's quoted phrases, search.
    use pimento_datagen::inex;
    let corpus = inex::generate(2024);
    let engine = Engine::from_xml_docs(&corpus.xml_docs).unwrap();
    let topic = &corpus.topics[1]; // 131, data mining on abs
    let parsed = inex::topic_from_xml(&inex::topic_to_xml(topic)).unwrap();
    assert_eq!(parsed.id, 131);
    let mut profile = UserProfile::new();
    for (i, phrase) in parsed.narrative_phrases.iter().enumerate() {
        profile = profile.with_kor(KeywordOrderingRule::new(
            &format!("narrative-{i}"),
            "abs",
            phrase,
        ));
    }
    // Relax the title phrase so narrative-only components can surface.
    profile = profile.with_scoping(pimento::profile::ScopingRule::delete(
        "relax",
        vec![Atom::ft("abs", topic.query_phrase)],
        vec![Atom::ft("abs", topic.query_phrase)],
    ));
    let res = engine
        .search(&parsed.title, &profile, &SearchOptions::top(5))
        .unwrap();
    assert!(!res.hits.is_empty());
    // At least one hit satisfies a narrative KOR (the ranking worked).
    assert!(res.hits.iter().any(|h| !h.satisfied_kors.is_empty()));
}

#[test]
fn analyze_report_covers_relaxation_and_ftall() {
    let profile = UserProfile::new().with_scoping(ScopingRule::relax_edge(
        "rel",
        vec![Atom::pc("dealer", "car")],
        "dealer",
        "car",
    ));
    let report = pimento::analyze(
        r#"/dealer/car[ftall(., "good", "cheap" window 4)]"#,
        &profile,
    )
    .unwrap();
    assert!(report.text.contains("applied: [rel]"), "{}", report.text);
    // The flock's second member shows the relaxed (//) edge.
    assert!(report.text.contains("Q1"), "{}", report.text);
    assert!(report.text.contains("ftall"), "{}", report.text);
    assert!(!report.ambiguous);
}

#[test]
fn relax_rule_widens_results_end_to_end() {
    let e = Engine::from_xml_docs(&[r#"<site>
        <dealer><car><price>100</price></car></dealer>
        <dealer><lot><car><price>200</price></car></lot></dealer>
    </site>"#])
    .unwrap();
    let strict = e
        .search("//dealer/car", &UserProfile::new(), &SearchOptions::top(10))
        .unwrap();
    assert_eq!(strict.hits.len(), 1, "only the direct child matches pc");
    let relaxing =
        UserProfile::new().with_scoping(ScopingRule::relax_edge("rel", vec![], "dealer", "car"));
    let relaxed = e
        .search("//dealer/car", &relaxing, &SearchOptions::top(10))
        .unwrap();
    assert_eq!(relaxed.hits.len(), 2, "ad edge reaches the nested car");
    assert_eq!(relaxed.applied_rules, vec!["rel"]);
}

#[test]
fn vks_rank_order_via_fig5_vor() {
    // π5 with V,K,S precedence: age-33 persons outrank higher-K persons.
    let e = Engine::from_xml_docs(&[r#"<people>
        <person><age>33</age><profile>female</profile></person>
        <person><age>40</age><profile>male United States College Phoenix</profile></person>
    </people>"#])
    .unwrap();
    let mut profile = UserProfile::new()
        .with_vor(ValueOrderingRule::prefer_value(
            "pi5", "person", "age", "33",
        ))
        .with_rank_order(pimento::profile::RankOrder::Vks);
    for kw in ["male", "United States", "College", "Phoenix"] {
        profile = profile.with_kor(KeywordOrderingRule::new(kw, "person", kw));
    }
    let res = e
        .search("//person", &profile, &SearchOptions::top(2))
        .unwrap();
    assert!(
        res.hits[0].xml.contains("<age>33</age>"),
        "V beats K under V,K,S"
    );
    assert!(res.hits[1].k >= 4.0 - 1e-9);
    // Under K,V,S the 4-KOR person wins instead.
    let kvs = profile.with_rank_order(pimento::profile::RankOrder::Kvs);
    let res2 = e.search("//person", &kvs, &SearchOptions::top(2)).unwrap();
    assert!(res2.hits[0].xml.contains("<age>40</age>"));
}

#[test]
fn full_fig2_rules_file_resolves_conflicts_as_the_paper_describes() {
    // The shipped fig2.rules contains all three scoping rules, including
    // the ρ1↔ρ3 conflict cycle broken by priorities (ρ3 first). Expected
    // resolution: ρ2 applies (topological prefix), ρ3 applies, and ρ1 is
    // skipped because ρ3 consumed its "low mileage" condition.
    use pimento::profile::{parse_profile, PrefRelRegistry};
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/profiles/fig2.rules"))
        .unwrap();
    let profile = parse_profile(&text, &PrefRelRegistry::new()).unwrap();
    let e = Engine::from_xml_docs(&[paper_figure1()]).unwrap();
    let res = e
        .search(
            r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
            &profile,
            &SearchOptions::top(3),
        )
        .unwrap();
    assert_eq!(res.applied_rules, vec!["rho2", "rho3"]);
    assert_eq!(res.skipped_rules, vec!["rho1"]);
    // All three Fig. 1 cars are under $2000 with "good condition" only on
    // two of them; the flock widened the result beyond the strict query.
    assert!(!res.hits.is_empty());
    assert_eq!(res.flock_size, 3);
}
