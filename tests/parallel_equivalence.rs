//! Parallel execution equivalence: the sharded candidate scan must return
//! answers, scores, and order **bit-identical** to the sequential plan —
//! for every plan strategy, KOR application order, and rank order, on the
//! paper's running example and on an XMark-like document.
//!
//! The algebra-level tests drive `execute_with_workers` directly so real
//! multi-worker merging is exercised even on single-core CI machines (the
//! public `threads` knob clamps to the machine).

use pimento::profile::{
    Atom, KeywordOrderingRule, RankOrder, ScopingRule, UserProfile, ValueOrderingRule,
};
use pimento::{Engine, SearchOptions};
use pimento_algebra::{
    build_plan, execute_with_workers, Answer, KorOrder, Matcher, PlanSpec, PlanStrategy,
    RankContext,
};
use std::sync::Arc;

const CARS: &str = r#"<dealer>
    <car><description>Powerful car. I am selling my 2001 car at the best bid. It is in good condition as I was the only driver. I used it to go to work in NYC.</description><date>2001</date><price>500</price><owner>John Smith</owner><horsepower>200</horsepower></car>
    <car><description>Low mileage. Bought on 11/2005. Eager seller. good condition</description><color>red</color><horsepower>120</horsepower><mileage>50.000</mileage><price>500</price><location>NYC</location></car>
    <car><description>american classic in good condition</description><price>1500</price><color>blue</color><mileage>90000</mileage></car>
    <car><description>rusty</description><price>200</price></car>
</dealer>"#;

/// The paper's running-example profile: ρ2/ρ3 scoping, π1 VOR, π4/π5 KORs.
fn paper_profile(order: RankOrder) -> UserProfile {
    UserProfile::new()
        .with_rank_order(order)
        .with_scoping(ScopingRule::add(
            "rho2",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "american")],
        ))
        .with_scoping(ScopingRule::delete(
            "rho3",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "low mileage")],
        ))
        .with_vor(ValueOrderingRule::prefer_value(
            "pi1", "car", "color", "red",
        ))
        .with_kor(KeywordOrderingRule::weighted("pi4", "car", "best bid", 2.0))
        .with_kor(KeywordOrderingRule::weighted("pi5", "car", "NYC", 1.0))
}

/// Everything the equivalence claim covers: identity, both scores, and
/// position.
fn full_key(answers: &[Answer]) -> Vec<(u32, u32, u64, u64)> {
    answers
        .iter()
        .map(|a| {
            let t = a.tiebreak();
            (t.0, t.1, a.k.to_bits(), a.s.to_bits())
        })
        .collect()
}

fn assert_equivalent(engine: &Engine, query: &str, profile: &UserProfile, k: usize) {
    let pq = engine.personalize(query, profile).unwrap();
    let matcher = Arc::new(Matcher::new(engine.db(), pq));
    let rank = RankContext::new(profile.vors.clone(), profile.rank_order);
    for strategy in PlanStrategy::all() {
        for kor_order in [
            KorOrder::AsGiven,
            KorOrder::HighestWeightFirst,
            KorOrder::LowestWeightFirst,
        ] {
            let spec = PlanSpec {
                kor_order,
                ..PlanSpec::new(k, strategy)
            };
            let (seq, _) = build_plan(
                engine.db(),
                Arc::clone(&matcher),
                &profile.kors,
                Arc::clone(&rank),
                spec,
            )
            .execute(engine.db());
            for workers in [2, 4, 8] {
                let (par, _, _) = execute_with_workers(
                    engine.db(),
                    Arc::clone(&matcher),
                    &profile.kors,
                    Arc::clone(&rank),
                    spec,
                    workers,
                );
                assert_eq!(
                    full_key(&seq),
                    full_key(&par),
                    "{} / {kor_order:?} / {workers} workers / {:?}",
                    strategy.paper_name(),
                    profile.rank_order,
                );
            }
        }
    }
}

#[test]
fn running_example_parallel_equals_sequential() {
    let engine = Engine::from_xml_docs(&[CARS]).unwrap();
    let query = r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#;
    for order in [RankOrder::Kvs, RankOrder::Vks] {
        assert_equivalent(&engine, query, &paper_profile(order), 3);
    }
}

#[test]
fn xmark_parallel_equals_sequential() {
    let xml = pimento_datagen::xmark::generate(11, 200 * 1024);
    let engine = Engine::from_xml_docs(&[xml]).unwrap();
    let query = r#"//person[ftcontains(./profile/business, "Yes")]"#;
    for order in [RankOrder::Kvs, RankOrder::Vks] {
        let profile = UserProfile::new()
            .with_rank_order(order)
            .with_kor(KeywordOrderingRule::weighted("g", "person", "male", 1.0))
            .with_kor(KeywordOrderingRule::weighted(
                "c",
                "person",
                "United States",
                2.0,
            ))
            .with_kor(KeywordOrderingRule::weighted("e", "person", "College", 0.5))
            .with_kor(KeywordOrderingRule::weighted("t", "person", "Phoenix", 1.5))
            .with_vor(ValueOrderingRule::prefer_value("a", "person", "age", "33"));
        assert_equivalent(&engine, query, &profile, 10);
    }
}

/// Multiple same-priority VORs make many answers `≺_V`-incomparable; the
/// shard merge must not prune across incomparability.
#[test]
fn incomparable_vor_frontier_survives_sharding() {
    let xml = pimento_datagen::xmark::generate(7, 120 * 1024);
    let engine = Engine::from_xml_docs(&[xml]).unwrap();
    for order in [RankOrder::Kvs, RankOrder::Vks] {
        let profile = UserProfile::new()
            .with_rank_order(order)
            .with_kor(KeywordOrderingRule::weighted("g", "person", "male", 1.0))
            .with_vor(ValueOrderingRule::prefer_value(
                "a33", "person", "age", "33",
            ))
            .with_vor(ValueOrderingRule::prefer_smaller(
                "inc", "profile", "income",
            ));
        assert_equivalent(&engine, "//person", &profile, 8);
    }
}

/// The public `threads` knob (clamped to the machine) through the whole
/// engine stack: any setting returns the same hits as forced-sequential.
#[test]
fn engine_threads_option_is_transparent() {
    let xml = pimento_datagen::xmark::generate(3, 150 * 1024);
    let engine = Engine::from_xml_docs(&[xml]).unwrap();
    let profile = UserProfile::new()
        .with_kor(KeywordOrderingRule::weighted("g", "person", "male", 1.0))
        .with_kor(KeywordOrderingRule::weighted("t", "person", "Phoenix", 1.5))
        .with_vor(ValueOrderingRule::prefer_value("a", "person", "age", "33"));
    let query = r#"//person[ftcontains(./profile/business, "Yes")]"#;
    let sequential = engine
        .search(query, &profile, &SearchOptions::top(10).with_threads(1))
        .unwrap();
    assert_eq!(sequential.worker_stats.len(), 1);
    for threads in [0usize, 2, 4, 8] {
        let par = engine
            .search(
                query,
                &profile,
                &SearchOptions::top(10).with_threads(threads),
            )
            .unwrap();
        assert_eq!(sequential.elem_refs(), par.elem_refs(), "threads={threads}");
        let ks: Vec<u64> = sequential.hits.iter().map(|h| h.k.to_bits()).collect();
        let pks: Vec<u64> = par.hits.iter().map(|h| h.k.to_bits()).collect();
        assert_eq!(ks, pks, "threads={threads}");
        // The aggregate is the sum of the per-worker breakdown.
        let base: u64 = par.worker_stats.iter().map(|w| w.base_answers).sum();
        assert_eq!(par.stats.base_answers, base);
    }
}
