//! Robustness: the three parsers (XML, TPQ, rule language) and the
//! snapshot decoder must never panic on arbitrary input — errors are
//! values here.

use pimento::index::{load_collection, Collection};
use pimento::profile::{parse_profile, parse_rule, PrefRelRegistry};
use pimento::tpq::parse_tpq;
use pimento::xml::{parse_with, SymbolTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes (as lossy strings) never panic the XML parser.
    #[test]
    fn xml_parser_never_panics(input in ".*") {
        let mut st = SymbolTable::new();
        let _ = parse_with(&input, &mut st);
    }

    /// XML-ish structured garbage neither panics nor loops.
    #[test]
    fn xmlish_garbage_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("<a>".to_string()),
            Just("</a>".to_string()),
            Just("<a b='c'>".to_string()),
            Just("<!--".to_string()),
            Just("-->".to_string()),
            Just("<![CDATA[".to_string()),
            Just("]]>".to_string()),
            Just("&amp;".to_string()),
            Just("&#x41;".to_string()),
            Just("&broken".to_string()),
            Just("text".to_string()),
            Just("<?pi ?>".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("\"".to_string()),
        ], 0..25)) {
        let input = parts.concat();
        let mut st = SymbolTable::new();
        let _ = parse_with(&input, &mut st);
    }

    /// The TPQ parser never panics.
    #[test]
    fn tpq_parser_never_panics(input in ".*") {
        let _ = parse_tpq(&input);
    }

    /// TPQ-ish token soup never panics.
    #[test]
    fn tpqish_garbage_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("//".to_string()),
            Just("/".to_string()),
            Just("car".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just("ftcontains".to_string()),
            Just("ftall".to_string()),
            Just("about".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just(".".to_string()),
            Just("\"kw\"".to_string()),
            Just("<".to_string()),
            Just("and".to_string()),
            Just("window".to_string()),
            Just("ordered".to_string()),
            Just("5".to_string()),
            Just("*".to_string()),
            Just(",".to_string()),
        ], 0..20)) {
        let _ = parse_tpq(&parts.join(" "));
    }

    /// The rule-language parser never panics (single rules and profiles).
    #[test]
    fn rule_parser_never_panics(input in ".*") {
        let registry = PrefRelRegistry::new();
        let _ = parse_rule("r", &input, &registry);
        let _ = parse_profile(&input, &registry);
    }

    /// Rule-ish token soup never panics.
    #[test]
    fn ruleish_garbage_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("if".to_string()),
            Just("then".to_string()),
            Just("add".to_string()),
            Just("remove".to_string()),
            Just("replace".to_string()),
            Just("with".to_string()),
            Just("relax".to_string()),
            Just("pc(a,b)".to_string()),
            Just("ftcontains(a,\"x\")".to_string()),
            Just("x.tag".to_string()),
            Just("y.tag".to_string()),
            Just("=".to_string()),
            Just("!=".to_string()),
            Just("<".to_string()),
            Just("->".to_string()),
            Just("&".to_string()),
            Just("x".to_string()),
            Just("y".to_string()),
            Just("{priority 1}".to_string()),
            Just("\"unterminated".to_string()),
        ], 0..15)) {
        let registry = PrefRelRegistry::new();
        let _ = parse_rule("r", &parts.join(" "), &registry);
    }

    /// The snapshot decoder never panics on arbitrary bytes.
    #[test]
    fn snapshot_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = load_collection(&bytes);
    }

    /// Random mutations of a valid snapshot never panic the decoder.
    #[test]
    fn mutated_snapshot_never_panics(flips in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8)) {
        let mut coll = Collection::new();
        coll.add_xml("<dealer><car><price>500</price></car></dealer>").unwrap();
        let mut bytes = pimento::index::save_collection(&coll).to_vec();
        for (pos, val) in flips {
            let idx = pos % bytes.len();
            bytes[idx] ^= val;
        }
        let _ = load_collection(&bytes);
    }
}
