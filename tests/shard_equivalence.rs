//! Sharded-engine equivalence: scatter-gather over doc-range segments
//! must return hits, scores, and order **bit-identical** to the
//! monolithic engine — for every plan strategy, both rank orders, and
//! shard counts {1, 2, 4, 8}, on the paper's running example and on
//! XMark-like corpora. A property test additionally drives `reshard_at`
//! with random segment boundaries: no partition of the corpus may change
//! the survivor set.

use pimento::profile::{
    Atom, KeywordOrderingRule, RankOrder, ScopingRule, UserProfile, ValueOrderingRule,
};
use pimento::{Engine, PlanStrategy, SearchOptions, SearchResults};
use proptest::prelude::*;

/// The paper's dealer corpus, one car per document so doc-range splits
/// have something to split.
fn cars_docs() -> Vec<String> {
    [
        "<car><description>Powerful car. I am selling my 2001 car at the best bid. It is in good condition as I was the only driver. I used it to go to work in NYC.</description><date>2001</date><price>500</price><owner>John Smith</owner><horsepower>200</horsepower></car>",
        "<car><description>Low mileage. Bought on 11/2005. Eager seller. good condition</description><color>red</color><horsepower>120</horsepower><mileage>50.000</mileage><price>500</price><location>NYC</location></car>",
        "<car><description>american classic in good condition</description><price>1500</price><color>blue</color><mileage>90000</mileage></car>",
        "<car><description>rusty</description><price>200</price></car>",
        "<car><description>good condition, best bid accepted, garaged in NYC</description><price>900</price><color>red</color></car>",
        "<car><description>fixer-upper, low mileage</description><price>300</price><color>red</color></car>",
    ]
    .iter()
    .map(|car| format!("<dealer>{car}</dealer>"))
    .collect()
}

/// The paper's running-example profile: ρ2/ρ3 scoping, π1 VOR, π4/π5 KORs.
fn paper_profile(order: RankOrder) -> UserProfile {
    UserProfile::new()
        .with_rank_order(order)
        .with_scoping(ScopingRule::add(
            "rho2",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "american")],
        ))
        .with_scoping(ScopingRule::delete(
            "rho3",
            vec![
                Atom::pc("car", "description"),
                Atom::ft("description", "good condition"),
            ],
            vec![Atom::ft("description", "low mileage")],
        ))
        .with_vor(ValueOrderingRule::prefer_value(
            "pi1", "car", "color", "red",
        ))
        .with_kor(KeywordOrderingRule::weighted("pi4", "car", "best bid", 2.0))
        .with_kor(KeywordOrderingRule::weighted("pi5", "car", "NYC", 1.0))
}

fn xmark_docs() -> Vec<String> {
    (0..12)
        .map(|seed| pimento_datagen::xmark::generate(seed, 24 * 1024))
        .collect()
}

fn xmark_profile(order: RankOrder) -> UserProfile {
    UserProfile::new()
        .with_rank_order(order)
        .with_kor(KeywordOrderingRule::weighted("g", "person", "male", 1.0))
        .with_kor(KeywordOrderingRule::weighted(
            "c",
            "person",
            "United States",
            2.0,
        ))
        .with_kor(KeywordOrderingRule::weighted("e", "person", "College", 0.5))
        .with_kor(KeywordOrderingRule::weighted("t", "person", "Phoenix", 1.5))
        .with_vor(ValueOrderingRule::prefer_value("a", "person", "age", "33"))
}

/// Everything the equivalence claim covers: identity, both scores (as
/// bits — "close" is not "equal"), and position.
fn full_key(results: &SearchResults) -> Vec<(u32, u32, u64, u64)> {
    results
        .hits
        .iter()
        .map(|h| (h.elem.doc.0, h.elem.node.0, h.k.to_bits(), h.s.to_bits()))
        .collect()
}

fn assert_shard_equivalent(engine: &Engine, query: &str, profile: &UserProfile, k: usize) {
    for order in [RankOrder::Kvs, RankOrder::Vks] {
        let profile = profile.clone().with_rank_order(order);
        for strategy in PlanStrategy::all() {
            let opts = SearchOptions::top(k).with_strategy(strategy).with_threads(1);
            let mono = engine.search(query, &profile, &opts).unwrap();
            for shards in [1usize, 2, 4, 8] {
                let sharded = engine.reshard(shards).unwrap();
                let res = sharded.search(query, &profile, &opts).unwrap();
                let label = format!(
                    "{} / {order:?} / {shards} shards ({} segments)",
                    strategy.paper_name(),
                    sharded.shard_count()
                );
                assert_eq!(full_key(&mono), full_key(&res), "{label}");
                assert_eq!(mono.stats.emitted, res.stats.emitted, "{label}");
                if sharded.shard_count() > 1 {
                    // The per-shard breakdown is a genuine partition of the
                    // candidate scan: base answers sum to the monolithic count.
                    assert_eq!(res.worker_stats.len(), sharded.shard_count(), "{label}");
                    assert_eq!(res.shard_times_us.len(), sharded.shard_count(), "{label}");
                    let base: u64 = res.worker_stats.iter().map(|w| w.base_answers).sum();
                    assert_eq!(mono.stats.base_answers, base, "{label}");
                    assert!(
                        res.explain.starts_with("scatter(shards="),
                        "{label}: explain = {}",
                        res.explain
                    );
                } else {
                    assert!(res.shard_times_us.is_empty(), "{label}");
                }
            }
        }
    }
}

#[test]
fn running_example_sharded_equals_monolithic() {
    let docs = cars_docs();
    let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let engine = Engine::from_xml_docs(&refs).unwrap();
    let query = r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#;
    assert_shard_equivalent(&engine, query, &paper_profile(RankOrder::Kvs), 3);
}

#[test]
fn xmark_sharded_equals_monolithic() {
    let docs = xmark_docs();
    let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let engine = Engine::from_xml_docs(&refs).unwrap();
    let query = r#"//person[ftcontains(./profile/business, "Yes")]"#;
    assert_shard_equivalent(&engine, query, &xmark_profile(RankOrder::Kvs), 10);
}

/// Multiple same-priority VORs make many answers `≺_V`-incomparable; the
/// segment merge must not prune across incomparability.
#[test]
fn incomparable_vor_frontier_survives_segmenting() {
    let docs = xmark_docs();
    let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let engine = Engine::from_xml_docs(&refs).unwrap();
    let profile = UserProfile::new()
        .with_kor(KeywordOrderingRule::weighted("g", "person", "male", 1.0))
        .with_vor(ValueOrderingRule::prefer_value(
            "a33", "person", "age", "33",
        ))
        .with_vor(ValueOrderingRule::prefer_smaller(
            "inc", "profile", "income",
        ));
    assert_shard_equivalent(&engine, "//person", &profile, 8);
}

/// A sharded snapshot directory round-trips: save, reopen with
/// [`Engine::from_sharded_dir`], and get bit-identical answers (the
/// reopened engine rebuilds corpus-global scoring stats from the
/// per-segment indexes).
#[test]
fn sharded_snapshot_roundtrip_is_bit_identical() {
    let docs = xmark_docs();
    let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let engine = Engine::from_xml_docs(&refs).unwrap();
    let dir = std::env::temp_dir().join(format!(
        "pimento-shard-roundtrip-{}",
        std::process::id()
    ));
    let sharded = engine.reshard(4).unwrap();
    sharded.save_sharded_snapshot(&dir).unwrap();
    let reopened = Engine::from_sharded_dir(&dir).unwrap();
    assert_eq!(reopened.shard_count(), sharded.shard_count());
    assert_eq!(reopened.num_docs(), engine.num_docs());
    let query = r#"//person[ftcontains(./profile/business, "Yes")]"#;
    let profile = xmark_profile(RankOrder::Kvs);
    let opts = SearchOptions::top(10);
    let mono = engine.search(query, &profile, &opts).unwrap();
    let reloaded = reopened.search(query, &profile, &opts).unwrap();
    assert_eq!(full_key(&mono), full_key(&reloaded));
    std::fs::remove_dir_all(&dir).ok();
}

/// `--shards` through the whole stack also composes with the other knobs:
/// pagination offsets and the lane cap never change answers.
#[test]
fn shard_lanes_and_offset_are_transparent() {
    let docs = xmark_docs();
    let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let engine = Engine::from_xml_docs(&refs).unwrap();
    let sharded = engine.reshard(4).unwrap();
    let query = r#"//person[ftcontains(./profile/business, "Yes")]"#;
    let profile = xmark_profile(RankOrder::Vks);
    let base = engine
        .search(query, &profile, &SearchOptions::top(5).with_offset(3))
        .unwrap();
    for lanes in [0usize, 1, 2, 7] {
        let res = sharded
            .search(
                query,
                &profile,
                &SearchOptions::top(5).with_offset(3).with_shards(lanes),
            )
            .unwrap();
        assert_eq!(full_key(&base), full_key(&res), "lanes={lanes}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No partition of the corpus changes the survivor set: random
    /// interior boundaries (including duplicates and out-of-range cuts,
    /// which `reshard_at` filters) yield bit-identical top-k.
    #[test]
    fn random_doc_range_splits_never_change_survivors(
        cuts in proptest::collection::vec(0usize..16, 0..6),
        order in prop_oneof![Just(RankOrder::Kvs), Just(RankOrder::Vks)],
    ) {
        let docs = cars_docs();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let engine = Engine::from_xml_docs(&refs).unwrap();
        let query = r#"//car[ftcontains(., "good condition") and ./price < 2000]"#;
        let profile = paper_profile(order);
        let opts = SearchOptions::top(4);
        let mono = engine.search(query, &profile, &opts).unwrap();
        let sharded = engine.reshard_at(&cuts).unwrap();
        let res = sharded.search(query, &profile, &opts).unwrap();
        prop_assert_eq!(
            full_key(&mono),
            full_key(&res),
            "cuts {:?} -> {} segments",
            cuts,
            sharded.shard_count()
        );
    }
}
