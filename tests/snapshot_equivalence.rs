//! ISSUE 6 acceptance: a columnar (v4) snapshot reopened from bytes is
//! **bit-identical** to the engine that wrote it — same answer elements,
//! same `S`/`K` score bits — across every plan strategy, on both the
//! paper's running example and an XMark-style corpus. The legacy v3
//! format (rebuild-on-load) must agree too, and the version/corruption
//! matrix must keep producing typed errors.

use pimento::profile::{parse_profile, PrefRelRegistry, UserProfile};
use pimento::{Engine, PlanStrategy, SearchOptions};

const FIG2_RULES: &str = include_str!("../profiles/fig2.rules");

const STRATEGIES: [PlanStrategy; 4] = [
    PlanStrategy::Naive,
    PlanStrategy::InterleaveUnsorted,
    PlanStrategy::InterleaveSorted,
    PlanStrategy::Push,
];

/// (doc, node, S-bits, K-bits) per hit: equality means the float path is
/// identical, not merely close.
fn fingerprint(
    engine: &Engine,
    profile: &UserProfile,
    query: &str,
    strategy: PlanStrategy,
) -> Vec<(u32, u32, u64, u64)> {
    let opts = SearchOptions {
        strategy,
        ..SearchOptions::top(10)
    };
    let results = engine.search(query, profile, &opts).expect("search");
    results
        .hits
        .iter()
        .map(|h| (h.elem.doc.0, h.elem.node.0, h.s.to_bits(), h.k.to_bits()))
        .collect()
}

fn assert_equivalent(original: &Engine, corpus: &str, queries: &[&str], profile: &UserProfile) {
    let v4 = original.save_snapshot();
    let v3 = original.save_snapshot_v3();
    let from_v4 = Engine::from_snapshot(&v4).expect("v4 opens");
    let from_v3 = Engine::from_snapshot(&v3).expect("v3 opens");
    assert_eq!(from_v4.snapshot_format(), Some(4));
    assert_eq!(from_v3.snapshot_format(), Some(3));
    // The v4 open path must be backed by packed views, not a heap rebuild.
    assert!(
        from_v4.db().tags.is_packed(),
        "{corpus}: v4 tags not packed"
    );
    assert!(
        from_v4.db().values.is_packed(),
        "{corpus}: v4 values not packed"
    );
    assert!(
        from_v4.db().inverted.is_packed(),
        "{corpus}: v4 inverted not packed"
    );
    for query in queries {
        for strategy in STRATEGIES {
            let want = fingerprint(original, profile, query, strategy);
            let got4 = fingerprint(&from_v4, profile, query, strategy);
            let got3 = fingerprint(&from_v3, profile, query, strategy);
            assert_eq!(
                want, got4,
                "{corpus}: v4 mismatch for {query} under {strategy:?}"
            );
            assert_eq!(
                want, got3,
                "{corpus}: v3 mismatch for {query} under {strategy:?}"
            );
        }
    }
}

#[test]
fn paper_example_is_bit_identical_across_formats() {
    let mut docs = vec![pimento_datagen::paper_figure1().to_string()];
    docs.push(pimento_datagen::generate_dealer(3, 40));
    docs.push(pimento_datagen::generate_dealer(9, 40));
    let engine = Engine::from_xml_docs(&docs).expect("corpus parses");
    let profile = parse_profile(FIG2_RULES, &PrefRelRegistry::new()).expect("fig2 parses");
    let queries = [
        r#"//car[ftcontains(., "good condition")]"#,
        r#"//car[ftcontains(., "good condition") and ./price < 2000]"#,
        r#"//dealer//car[./price < 8000]"#,
    ];
    assert_equivalent(&engine, "paper", &queries, &UserProfile::new());
    assert_equivalent(&engine, "paper+fig2", &queries, &profile);
}

#[test]
fn xmark_corpus_is_bit_identical_across_formats() {
    let docs: Vec<String> = (0..3)
        .map(|i| pimento_datagen::generate_xmark(i, 20_000))
        .collect();
    let engine = Engine::from_xml_docs(&docs).expect("xmark parses");
    let queries = [
        r#"//person[ftcontains(., "the")]"#,
        r#"//item[ftcontains(., "gold")]"#,
    ];
    assert_equivalent(&engine, "xmark", &queries, &UserProfile::new());
}

#[test]
fn version_and_corruption_matrix() {
    let docs = vec![pimento_datagen::paper_figure1().to_string()];
    let engine = Engine::from_xml_docs(&docs).expect("corpus parses");
    let v4 = engine.save_snapshot();

    // Truncation anywhere fails with a typed error, never a panic.
    for cut in [0, 5, 7, 23, v4.len() / 2, v4.len() - 1] {
        assert!(
            Engine::from_snapshot(&v4[..cut]).is_err(),
            "truncated at {cut}"
        );
    }
    // A flipped bit in the body is caught by a section CRC.
    let mut bad = v4.to_vec();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    assert!(Engine::from_snapshot(&bad).is_err(), "bit flip at {mid}");
    // Older magics are rejected as version errors, not parse garbage.
    for magic in [&b"PIMCOL1\0"[..], b"PIMCOL2\0"] {
        let mut fake = v4.to_vec();
        fake[..8].copy_from_slice(magic);
        assert!(Engine::from_snapshot(&fake).is_err(), "{magic:?}");
    }
    // The inspect report agrees with the open path.
    let report = pimento::index::inspect(&v4).expect("inspect v4");
    assert_eq!(report.version, 4);
    assert!(report.directory_ok);
    assert!(report.sections.iter().all(|s| s.crc_ok));
    let names: Vec<&str> = report.sections.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["meta", "symtab", "docs", "tags", "vals", "inv"]);
    let bad_report = pimento::index::inspect(&bad).expect("inspect corrupt v4");
    assert!(
        bad_report.sections.iter().any(|s| !s.crc_ok),
        "{bad_report:?}"
    );

    // v3 snapshots inspect too: one body section, footer CRC verified.
    let v3 = engine.save_snapshot_v3();
    let v3_report = pimento::index::inspect(&v3).expect("inspect v3");
    assert_eq!(v3_report.version, 3);
    assert!(v3_report.sections.iter().all(|s| s.crc_ok));
}
