//! Property-based soundness: on randomized dealer corpora and randomized
//! profiles, every plan strategy must return exactly the answers of the
//! pruning-free NaiveTopkPrune plan (which materializes everything, sorts,
//! and cuts at k).

use pimento::profile::{
    Atom, KeywordOrderingRule, PrefRel, RankOrder, ScopingRule, UserProfile, ValueOrderingRule,
};
use pimento::{Engine, PlanStrategy, SearchOptions};
use pimento_datagen::carsale;
use proptest::prelude::*;

/// Build a profile from a compact recipe.
fn profile_from(recipe: &ProfileRecipe) -> UserProfile {
    let mut p = UserProfile::new().with_rank_order(if recipe.vks {
        RankOrder::Vks
    } else {
        RankOrder::Kvs
    });
    let kor_pool: [(&str, f64); 4] = [
        ("NYC", 1.0),
        ("best bid", 2.0),
        ("american", 0.5),
        ("low mileage", 1.5),
    ];
    for &i in &recipe.kors {
        let (kw, w) = kor_pool[i % kor_pool.len()];
        p = p.with_kor(KeywordOrderingRule::weighted(
            &format!("k{i}"),
            "car",
            kw,
            w,
        ));
    }
    if recipe.vor_red {
        p = p.with_vor(
            ValueOrderingRule::prefer_value("red", "car", "color", "red").with_priority(0),
        );
    }
    if recipe.vor_mileage {
        p = p.with_vor(ValueOrderingRule::prefer_smaller("m", "car", "mileage").with_priority(1));
    }
    if recipe.vor_colors {
        let order = PrefRel::chain(&["red", "black", "silver"]);
        p = p
            .with_vor(ValueOrderingRule::prefer_order("c", "car", "color", order).with_priority(2));
    }
    if recipe.sr_relax {
        p = p.with_scoping(ScopingRule::delete(
            "relax",
            vec![Atom::ft("car", "good condition")],
            vec![Atom::ft("car", "good condition")],
        ));
    }
    if recipe.sr_add {
        p = p.with_scoping(ScopingRule::add(
            "addloc",
            vec![],
            vec![Atom::ft("car", "NYC")],
        ));
    }
    p
}

#[derive(Debug, Clone)]
struct ProfileRecipe {
    kors: Vec<usize>,
    vor_red: bool,
    vor_mileage: bool,
    vor_colors: bool,
    sr_relax: bool,
    sr_add: bool,
    vks: bool,
}

fn recipe_strategy() -> impl Strategy<Value = ProfileRecipe> {
    (
        proptest::collection::vec(0usize..4, 0..4),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(kors, vor_red, vor_mileage, vor_colors, sr_relax, sr_add, vks)| ProfileRecipe {
                kors,
                vor_red,
                vor_mileage,
                vor_colors,
                sr_relax,
                sr_add,
                vks,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_strategies_equal_naive(
        seed in 0u64..1000,
        n_cars in 5usize..60,
        k in 1usize..12,
        recipe in recipe_strategy(),
    ) {
        let xml = carsale::generate_dealer(seed, n_cars);
        let engine = Engine::from_xml_docs(&[&xml]).unwrap();
        let profile = profile_from(&recipe);
        let query = r#"//car[ftcontains(., "good condition") and ./price < 4000]"#;
        let naive = engine
            .search(query, &profile, &SearchOptions::top(k).with_strategy(PlanStrategy::Naive))
            .unwrap();
        let reference: Vec<_> = naive.hits.iter().map(|h| h.elem).collect();
        for strategy in [
            PlanStrategy::InterleaveUnsorted,
            PlanStrategy::InterleaveSorted,
            PlanStrategy::Push,
        ] {
            let res = engine
                .search(query, &profile, &SearchOptions::top(k).with_strategy(strategy))
                .unwrap();
            let got: Vec<_> = res.hits.iter().map(|h| h.elem).collect();
            prop_assert_eq!(&got, &reference, "{} diverged from Naive", strategy.paper_name());
        }
    }
}
