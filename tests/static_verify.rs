//! The static soundness verifiers, end to end: `Profile::verify` on the
//! paper's car-sale conflict and ambiguity fixtures (with provenance),
//! and `PlanShape::verify` on hand-built malformed shapes as well as on
//! every plan the engine actually assembles.

use pimento::profile::{parse_profile, FindingKind, PrefRelRegistry, Severity, UserProfile};
use pimento::tpq::parse_tpq;
use pimento::{Engine, PlanStrategy, SearchOptions};
use pimento_algebra::{PlanShape, PlanVerifyError, Stage, TopkConfig};

fn fixture(name: &str) -> UserProfile {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse_profile(&text, &PrefRelRegistry::new()).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

/// The paper's query Q asking for both "good condition" and "low mileage".
fn query_q() -> pimento::tpq::Tpq {
    parse_tpq(
        r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
    )
    .unwrap()
}

const CARS: &str = r#"<dealer>
    <car><description>Low mileage, good condition</description><color>red</color><mileage>50000</mileage><price>500</price><location>NYC</location></car>
    <car><description>american classic in good condition</description><price>1500</price><color>blue</color><mileage>90000</mileage></car>
    <car><description>rusty</description><price>200</price></car>
</dealer>"#;

// ---------------------------------------------------------------------
// Profile::verify
// ---------------------------------------------------------------------

#[test]
fn sr_conflict_cycle_reported_with_provenance() {
    let profile = fixture("sr_conflict_cycle.rules");
    let report = profile.verify(&query_q());

    assert!(report.has_errors());
    assert!(report.has_sr_cycle());
    // The cycle error names both members.
    let cycle = report
        .findings
        .iter()
        .find_map(|f| match &f.kind {
            FindingKind::SrConflictCycle { cycle } => Some(cycle.clone()),
            _ => None,
        })
        .expect("cycle finding");
    assert!(
        cycle.contains(&"rho1".to_string()) && cycle.contains(&"rho3".to_string()),
        "{cycle:?}"
    );
    // Edge provenance: both conflict arcs appear as info findings.
    let arcs: Vec<(String, String)> = report
        .findings
        .iter()
        .filter_map(|f| match &f.kind {
            FindingKind::SrConflictArc { from, to } => Some((from.clone(), to.clone())),
            _ => None,
        })
        .collect();
    assert!(arcs.contains(&("rho1".into(), "rho3".into())), "{arcs:?}");
    assert!(arcs.contains(&("rho3".into(), "rho1".into())), "{arcs:?}");
    // Errors sort first.
    assert_eq!(report.findings[0].severity, Severity::Error);
    // The engine agrees: preparation refuses the profile.
    let engine = Engine::from_xml_docs(&[CARS]).unwrap();
    assert!(engine
        .search(
            r#"//car[./description[ftcontains(., "good condition") and ftcontains(., "low mileage")] and ./price < 2000]"#,
            &profile,
            &SearchOptions::top(2),
        )
        .is_err());
}

#[test]
fn vor_alternating_cycle_reported_with_provenance() {
    let profile = fixture("vor_ambiguous.rules");
    let report = profile.verify(&query_q());

    assert!(report.has_errors());
    assert!(!report.has_sr_cycle());
    let cycle = report
        .findings
        .iter()
        .find_map(|f| match &f.kind {
            FindingKind::VorAlternatingCycle { cycle } => Some(cycle.clone()),
            _ => None,
        })
        .expect("alternating-cycle finding");
    assert!(
        cycle.contains(&"pi1".to_string()) && cycle.contains(&"pi2".to_string()),
        "{cycle:?}"
    );
    let text = report.to_string();
    assert!(text.contains("error"), "{text}");
    assert!(text.contains("priority"), "{text}");
}

#[test]
fn clean_profile_verifies_without_errors() {
    let profile = fixture("clean_profile.rules");
    let report = profile.verify(&query_q());
    assert!(!report.has_errors(), "{report}");
    // Prioritized rho1/rho3 still conflict on Q — the arcs stay visible as
    // provenance, but resolution succeeds so there is no error.
    assert!(report
        .findings
        .iter()
        .any(|f| matches!(f.kind, FindingKind::SrConflictArc { .. })));
}

// ---------------------------------------------------------------------
// PlanShape::verify on hand-built shapes
// ---------------------------------------------------------------------

fn survivor(k: usize) -> TopkConfig {
    TopkConfig {
        k,
        query_scorebound: 0.0,
        kor_scorebound: 0.0,
        use_v: true,
        sorted_input: true,
        last: false,
    }
}

fn worker_shape(k: usize, top: TopkConfig) -> PlanShape {
    PlanShape {
        stages: vec![
            Stage::Scan,
            Stage::VorFetch,
            Stage::KorJoin { weight: 1.0 },
            Stage::Sort,
            Stage::Prune(top),
        ],
        k,
        merge_safe: true,
        vors: 2,
        vks: false,
    }
}

#[test]
fn worker_plan_missing_survivor_prune_rejected() {
    // A worker sub-plan that ends in a positional cut (`last`) instead of
    // the ≺_V-sound survivor prune: a shard-local cut can drop answers
    // that belong to the global top-k (DESIGN.md §8).
    let bad = worker_shape(3, TopkConfig::final_prune(3));
    assert_eq!(bad.verify(), Err(PlanVerifyError::MissingSurvivorPrune));

    // Same defect, other axis: the cut keeps `last` unset but ignores ≺_V.
    let bad = worker_shape(
        3,
        TopkConfig {
            use_v: false,
            ..survivor(3)
        },
    );
    assert_eq!(bad.verify(), Err(PlanVerifyError::MissingSurvivorPrune));

    // The correct survivor prune verifies.
    assert_eq!(worker_shape(3, survivor(3)).verify(), Ok(()));
}

#[test]
fn malformed_shapes_rejected() {
    let ok = worker_shape(3, survivor(3));

    assert_eq!(
        PlanShape {
            stages: vec![],
            ..ok.clone()
        }
        .verify(),
        Err(PlanVerifyError::Empty)
    );

    // Scan missing / not at the bottom.
    let mut no_scan = ok.clone();
    no_scan.stages[0] = Stage::Sort;
    assert_eq!(no_scan.verify(), Err(PlanVerifyError::ScanNotAtBottom));

    // Top stage is not a prune.
    let mut no_prune = ok.clone();
    no_prune.stages.pop();
    assert_eq!(no_prune.verify(), Err(PlanVerifyError::MissingFinalPrune));

    // A prune cutting at the wrong k.
    let wrong_k = worker_shape(3, survivor(4));
    assert_eq!(
        wrong_k.verify(),
        Err(PlanVerifyError::WrongK {
            index: 4,
            found: 4,
            expected: 3
        })
    );

    // A mid-plan prune whose kor_scorebound claims all K is known while a
    // KOR join above still adds weight (Algorithm-3 placement).
    let mut early_k = ok.clone();
    early_k.stages.insert(
        2,
        Stage::Prune(TopkConfig {
            sorted_input: false,
            ..survivor(3)
        }),
    );
    assert_eq!(
        early_k.verify(),
        Err(PlanVerifyError::KPruneBeforeAllKors { index: 2 })
    );

    // Same position, correct kor bound but understated query bound.
    let mut low_bound = ok.clone();
    low_bound.stages.insert(3, Stage::SrJoin { bound: 2.5 });
    low_bound.stages.insert(
        3,
        Stage::Prune(TopkConfig {
            query_scorebound: 1.0,
            kor_scorebound: 1.0,
            sorted_input: false,
            ..survivor(3)
        }),
    );
    assert_eq!(
        low_bound.verify(),
        Err(PlanVerifyError::BoundTooLow {
            index: 3,
            which: "query_scorebound",
            have: 1.0,
            need: 2.5
        })
    );

    // A prune claiming sorted input without a sort below it.
    let mut unsorted = ok.clone();
    unsorted.stages.remove(3); // drop the Sort
    assert_eq!(
        unsorted.verify(),
        Err(PlanVerifyError::SortedClaimWithoutSort { index: 3 })
    );

    // A prune comparing ≺_V with no vor fetch below it.
    let mut no_fetch = ok.clone();
    no_fetch.stages.remove(1);
    assert_eq!(
        no_fetch.verify(),
        Err(PlanVerifyError::VorFetchCount {
            expected: 1,
            found: 0
        })
    );
}

// ---------------------------------------------------------------------
// Plan::verify on engine-assembled plans
// ---------------------------------------------------------------------

#[test]
fn every_assembled_plan_verifies() {
    let engine = Engine::from_xml_docs(&[CARS]).unwrap();
    let profile = fixture("clean_profile.rules");
    let prepared = engine
        .prepare(r#"//car[ftcontains(., "good condition")]"#, &profile)
        .unwrap();
    for (strategy, outcome) in engine.verify_plans(&prepared, 2) {
        assert_eq!(outcome, Ok(()), "strategy {}", strategy.paper_name());
    }
    // And execution still works under the debug assertions.
    let results = engine
        .run_prepared(&prepared, &SearchOptions::top(2))
        .unwrap();
    assert!(!results.hits.is_empty());
}

#[test]
fn all_strategies_verify_across_rank_orders() {
    use pimento::algebra::{build_plan, Matcher, PlanSpec, RankContext};
    use pimento::profile::{KeywordOrderingRule, PersonalizedQuery, RankOrder, ValueOrderingRule};
    use std::sync::Arc;

    let engine = Engine::from_xml_docs(&[CARS]).unwrap();
    let db = engine.db();
    let query = parse_tpq("//car").unwrap();
    let kors = vec![
        KeywordOrderingRule::weighted("nyc", "car", "NYC", 2.0),
        KeywordOrderingRule::new("classic", "car", "classic"),
    ];
    let vors = vec![
        ValueOrderingRule::prefer_value("pi1", "car", "color", "red").with_priority(0),
        ValueOrderingRule::prefer_smaller("pi2", "car", "mileage").with_priority(1),
    ];
    for order in [RankOrder::Kvs, RankOrder::Vks] {
        for strategy in PlanStrategy::all() {
            let matcher = Arc::new(Matcher::new(
                db,
                PersonalizedQuery::unpersonalized(query.clone()),
            ));
            let rank = RankContext::new(vors.clone(), order);
            let plan = build_plan(db, matcher, &kors, rank, PlanSpec::new(3, strategy));
            assert_eq!(
                plan.verify(),
                Ok(()),
                "{} under {order:?}",
                strategy.paper_name()
            );
            assert!(plan.shape().stages.len() >= 2);
        }
    }
}
