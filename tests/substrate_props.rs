//! Property-based tests of the substrate invariants: XML round-tripping,
//! region-label well-nestedness, and inverted-index consistency.

use pimento::index::{Collection, InvertedIndex, TagIndex, Tokenizer};
use pimento::xml::{parse_with, to_string, NodeKind, SymbolTable};
use proptest::prelude::*;

const TAGS: &[&str] = &["a", "b", "c", "item", "name"];
const WORDS: &[&str] = &["alpha", "beta", "gamma", "good", "condition", "42"];

/// Node recipe: open-element / text / close (tree built with a stack).
#[derive(Debug, Clone)]
enum Op {
    Open(usize),
    Text(usize, usize),
    Close,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..TAGS.len()).prop_map(Op::Open),
            ((0usize..WORDS.len()), (0usize..WORDS.len())).prop_map(|(a, b)| Op::Text(a, b)),
            Just(Op::Close),
        ],
        0..40,
    )
}

/// Build a well-formed XML string from the recipe (closes track a stack).
fn build_xml(ops: &[Op]) -> String {
    let mut out = String::from("<root>");
    let mut stack: Vec<&str> = Vec::new();
    for op in ops {
        match op {
            Op::Open(t) => {
                out.push_str(&format!("<{}>", TAGS[*t]));
                stack.push(TAGS[*t]);
            }
            Op::Text(a, b) => out.push_str(&format!("{} {} ", WORDS[*a], WORDS[*b])),
            Op::Close => {
                if let Some(tag) = stack.pop() {
                    out.push_str(&format!("</{tag}>"));
                }
            }
        }
    }
    while let Some(tag) = stack.pop() {
        out.push_str(&format!("</{tag}>"));
    }
    out.push_str("</root>");
    out
}

proptest! {
    /// parse → serialize → parse is a fixed point (structure preserved).
    #[test]
    fn xml_roundtrip_fixed_point(ops in ops_strategy()) {
        let xml = build_xml(&ops);
        let mut st = SymbolTable::new();
        let doc = parse_with(&xml, &mut st).expect("generated XML is well-formed");
        let once = to_string(&doc, &st);
        let mut st2 = SymbolTable::new();
        let doc2 = parse_with(&once, &mut st2).expect("serialized XML reparses");
        let twice = to_string(&doc2, &st2);
        prop_assert_eq!(once, twice);
        prop_assert_eq!(doc.len(), doc2.len());
    }

    /// Region labels are well-nested: for any two elements, regions are
    /// disjoint or strictly contained; parents contain children; levels
    /// are consistent.
    #[test]
    fn region_labels_well_nested(ops in ops_strategy()) {
        let xml = build_xml(&ops);
        let mut st = SymbolTable::new();
        let doc = parse_with(&xml, &mut st).expect("well-formed");
        let elems: Vec<_> = doc
            .node_ids()
            .filter(|&n| matches!(doc.node(n).kind, NodeKind::Element { .. }))
            .collect();
        for &a in &elems {
            let na = doc.node(a);
            prop_assert!(na.start < na.end);
            if let Some(p) = na.parent {
                let np = doc.node(p);
                prop_assert!(np.start < na.start && na.end < np.end, "parent contains child");
                prop_assert_eq!(np.level + 1, na.level);
            }
            for &b in &elems {
                if a == b { continue; }
                let nb = doc.node(b);
                let disjoint = na.end < nb.start || nb.end < na.start;
                let a_in_b = nb.start < na.start && na.end < nb.end;
                let b_in_a = na.start < nb.start && nb.end < na.end;
                prop_assert!(disjoint || a_in_b || b_in_a, "regions must be well-nested");
            }
        }
    }

    /// Inverted-index consistency: every posting's text is reachable, the
    /// document token count equals the posting total, and tag-index counts
    /// match a direct scan.
    #[test]
    fn index_consistency(ops in ops_strategy()) {
        let xml = build_xml(&ops);
        let mut coll = Collection::new();
        coll.add_xml(&xml).unwrap();
        let inv = InvertedIndex::build(&coll, Tokenizer::plain());
        let tags = TagIndex::build(&coll);
        // Posting total == doc token count.
        let total: usize = WORDS.iter().map(|w| inv.postings(&w.to_lowercase()).len()).sum();
        prop_assert_eq!(total as u32, inv.doc_len(pimento::index::DocId(0)));
        // Tag index counts match direct scans.
        let doc = coll.doc(pimento::index::DocId(0));
        for tag in TAGS.iter().chain(["root"].iter()) {
            let by_index = coll.tag(tag).map(|s| tags.count(s)).unwrap_or(0);
            let by_scan = doc
                .node_ids()
                .filter(|&n| doc.node(n).tag().map(|t| coll.symbols().name(t)) == Some(tag))
                .count();
            prop_assert_eq!(by_index, by_scan, "tag {}", tag);
        }
        // Every posting's label lies inside the root region.
        let root = doc.node(doc.root());
        for w in WORDS {
            for p in inv.postings(&w.to_lowercase()).iter() {
                prop_assert!(root.start < p.label && p.label < root.end);
            }
        }
    }

    /// `ftcontains` agrees with a text-content scan for single tokens.
    #[test]
    fn ftcontains_agrees_with_text_scan(ops in ops_strategy(), w in 0usize..WORDS.len()) {
        let xml = build_xml(&ops);
        let mut coll = Collection::new();
        coll.add_xml(&xml).unwrap();
        let inv = InvertedIndex::build(&coll, Tokenizer::plain());
        let tags = TagIndex::build(&coll);
        let word = WORDS[w].to_lowercase();
        let doc = coll.doc(pimento::index::DocId(0));
        for tag in TAGS {
            let Some(sym) = coll.tag(tag) else { continue };
            for e in tags.elements(sym) {
                let by_index = pimento::index::ft_contains(&inv, &e, std::slice::from_ref(&word));
                let by_scan = doc
                    .text_content(e.node)
                    .to_lowercase()
                    .split(|c: char| !c.is_alphanumeric())
                    .any(|t| t == word);
                prop_assert_eq!(by_index, by_scan, "tag {} word {}", tag, word);
            }
        }
    }
}

#[test]
fn field_resolution_descendant_fallback() {
    // XMark nests age inside person/profile; `x.age` must still resolve.
    use pimento::index::{field_value, DocId, ElemRef, FieldValue};
    let mut coll = Collection::new();
    coll.add_xml(r#"<person income="99"><profile><age>33</age></profile></person>"#)
        .unwrap();
    let doc = coll.doc(DocId(0));
    let person = ElemRef {
        doc: DocId(0),
        node: doc.root(),
    };
    assert_eq!(
        field_value(&coll, person, "income"),
        Some(FieldValue::Num(99.0))
    );
    assert_eq!(
        field_value(&coll, person, "age"),
        Some(FieldValue::Num(33.0))
    );
    assert_eq!(field_value(&coll, person, "missing"), None);
}

proptest! {
    /// Snapshot save/load is the identity on the serialized form.
    #[test]
    fn snapshot_roundtrip_fixed_point(ops in ops_strategy()) {
        let xml = build_xml(&ops);
        let mut coll = Collection::new();
        coll.add_xml(&xml).unwrap();
        let once = pimento::index::save_collection(&coll);
        let loaded = pimento::index::load_collection(&once).expect("loads");
        let twice = pimento::index::save_collection(&loaded);
        prop_assert_eq!(once, twice);
    }

    /// Parallel ingest is equivalent to sequential for any document split.
    #[test]
    fn parallel_ingest_equivalence(
        recipes in proptest::collection::vec(ops_strategy(), 1..6),
        threads in 1usize..6,
    ) {
        let xmls: Vec<String> = recipes.iter().map(|r| build_xml(r)).collect();
        let seq = pimento::index::build_collection_parallel(&xmls, 1).unwrap();
        let par = pimento::index::build_collection_parallel(&xmls, threads).unwrap();
        prop_assert_eq!(seq.len(), par.len());
        for ((_, a), (_, b)) in seq.iter().zip(par.iter()) {
            prop_assert_eq!(
                pimento::xml::to_string(a, seq.symbols()),
                pimento::xml::to_string(b, par.symbols())
            );
        }
    }
}

#[test]
fn lexer_edge_cases_error_cleanly() {
    use pimento::xml::XmlError;
    type Check = fn(&XmlError) -> bool;
    let cases: &[(&str, Check)] = &[
        ("<a", |e| matches!(e, XmlError::UnexpectedEof { .. })),
        ("<a x=>", |e| matches!(e, XmlError::UnexpectedChar { .. })),
        ("<a x='1' x='2'/>", |e| {
            matches!(e, XmlError::DuplicateAttribute { .. })
        }),
        ("<a>&unknown;</a>", |e| {
            matches!(e, XmlError::UnknownEntity { .. })
        }),
        ("<a>&#xFFFFFF;</a>", |e| {
            matches!(e, XmlError::InvalidCharRef { .. })
        }),
        ("text only", |e| matches!(e, XmlError::NoRootElement { .. })),
        ("<a/><b/>", |e| matches!(e, XmlError::MultipleRoots { .. })),
        ("<a></b>", |e| matches!(e, XmlError::MismatchedTag { .. })),
    ];
    for (src, check) in cases {
        let mut st = pimento::xml::SymbolTable::new();
        let err = pimento::xml::parse_with(src, &mut st).unwrap_err();
        assert!(check(&err), "{src}: unexpected error {err:?}");
        // Every error renders with a position.
        assert!(err.to_string().contains(':'), "{err}");
    }
}

#[test]
fn unicode_content_roundtrips() {
    let src = "<α><β attr=\"héllo\">日本語テキスト &amp; more — ünïcode</β></α>";
    let mut st = pimento::xml::SymbolTable::new();
    let doc = pimento::xml::parse_with(src, &mut st).unwrap();
    let out = pimento::xml::to_string(&doc, &st);
    let mut st2 = pimento::xml::SymbolTable::new();
    let doc2 = pimento::xml::parse_with(&out, &mut st2).unwrap();
    assert_eq!(doc.len(), doc2.len());
    assert!(out.contains("日本語テキスト"));
    // And it indexes + matches.
    let mut coll = Collection::new();
    coll.add_xml(src).unwrap();
    let inv = InvertedIndex::build(&coll, Tokenizer::plain());
    assert!(!inv.postings("日本語テキスト").is_empty());
}
