//! Offline vendored subset of the [`bytes`](https://docs.rs/bytes) API.
//!
//! The build environment has no network access to crates-io, so the
//! workspace path-depends on this shim instead. It implements exactly the
//! surface pimento uses: `BytesMut` as an append-only build buffer
//! (`BufMut` little-endian writers, `freeze`), `Bytes` as a cheaply
//! clonable immutable buffer deref-ing to `[u8]` with zero-copy
//! [`Bytes::slice`] sub-views (refcounted windows over one shared
//! allocation — what the columnar snapshot's packed index sections hang
//! off), and `Buf` reads over `&[u8]` cursors. Semantics match the real
//! crate for this subset.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer: a `(offset, len)` window over
/// a shared allocation, so [`Bytes::slice`] is O(1) and copy-free.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            offset: 0,
            len: 0,
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let len = data.len();
        Bytes {
            data: Arc::from(data),
            offset: 0,
            len,
        }
    }

    /// A zero-copy sub-view of this buffer: the returned `Bytes` shares
    /// the same allocation, narrowed to `range`. Panics when the range is
    /// out of bounds (same contract as the real crate).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            lo <= hi && hi <= self.len,
            "slice {lo}..{hi} out of range for len {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + lo,
            len: hi - lo,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte buffer (little-endian helpers).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access over a byte cursor. Reads panic when not enough bytes
/// remain (callers check `remaining()` first, as the real crate requires).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a `u16`, little-endian.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Read a `u32`, little-endian.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Read a `u64`, little-endian.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0xBEEF);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        assert_eq!(cur.chunk(), b"xyz");
        cur.advance(3);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn bytes_derefs_like_a_slice() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(&b[..2], b"he");
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        let c = b.clone();
        assert_eq!(c.to_vec(), b"hello");
    }

    #[test]
    fn slice_is_a_window_over_the_same_allocation() {
        let b = Bytes::copy_from_slice(b"hello world");
        let w = b.slice(6..);
        assert_eq!(&*w, b"world");
        let l = w.slice(..3);
        assert_eq!(&*l, b"wor");
        assert_eq!(b.slice(..), b);
        assert_eq!(b.slice(0..0).len(), 0);
        assert_eq!(b.slice(11..11).len(), 0);
        // Equality is by content, independent of the window position.
        assert_eq!(b.slice(0..5), Bytes::copy_from_slice(b"hello"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Bytes::copy_from_slice(b"abc").slice(1..5);
    }
}
