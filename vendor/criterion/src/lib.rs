//! Offline vendored subset of the [`criterion`](https://docs.rs/criterion)
//! API.
//!
//! The build environment has no network access to crates-io, so the
//! workspace path-depends on this shim. It runs each registered bench for
//! a warm-up pass plus `sample_size` timed samples and prints
//! median/mean/min wall-clock times — enough to track relative trends
//! offline, without upstream's statistical machinery, HTML reports, or
//! CLI filters.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a bench label: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Render to the printed label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Time `f`, printing summary statistics to stdout.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, and a cheap calibration of how many calls fit a sample.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let per_sample = ((Duration::from_millis(5).as_nanos() / once.as_nanos()).max(1) as usize)
            .min(1_000_000);

        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples.push(t.elapsed() / per_sample as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "    time: median {:>12?}  mean {:>12?}  min {:>12?}  ({} samples x {} iters)",
            median,
            mean,
            samples[0],
            samples.len(),
            per_sample
        );
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Register and immediately run a benchmark.
    pub fn bench_function<L: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: L,
        mut f: F,
    ) -> &mut Self {
        println!("{}/{}", self.name, id.into_label());
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Register and run a benchmark parameterized by `input`.
    pub fn bench_with_input<L: IntoBenchmarkId, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: L,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("{}/{}", self.name, id.into_label());
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b, input);
        self
    }

    /// End the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for `criterion_group!` compatibility; no CLI parsing.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Register and immediately run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("{name}");
        let mut b = Bencher { samples: 20 };
        f(&mut b);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// Bundle bench functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
