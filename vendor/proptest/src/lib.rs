//! Offline vendored subset of the [`proptest`](https://docs.rs/proptest) API.
//!
//! The build environment has no network access to crates-io, so the
//! workspace path-depends on this shim. It keeps the property suites
//! *running* offline with the same public surface: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, `any`,
//! numeric range strategies, tuple strategies, `prop_map`,
//! `collection::vec`, `option::of`, and `ProptestConfig`.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! generated inputs verbatim), and generation uses a fixed-seed xoshiro
//! stream rather than upstream's RNG, so regression files are ignored.
//! Properties still run for `cases` iterations per test.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing a `Vec` whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// Strategy producing `None` ~25% of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// `proptest::prelude` — the conventional glob import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run one property body against a config. The `proptest!` macro expands
/// each `#[test]` into a loop over this.
#[doc(hidden)]
pub fn __run_cases(cases: u32, mut body: impl FnMut(u64, &mut test_runner::TestRng)) {
    for case in 0..cases {
        let mut rng = test_runner::TestRng::deterministic(case as u64);
        body(case as u64, &mut rng);
    }
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(expr)]` followed by `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::__run_cases(config.cases, |__case, __rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", &$arg));
                        )+
                        s
                    };
                    // Bodies run in a Result context (upstream allows
                    // `return Ok(())` for early exits); a tail `()` is
                    // promoted to Ok by the trailing expression.
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), ::std::string::String> {
                                $body
                                ::std::result::Result::Ok(())
                            }
                        )
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(reject)) => panic!("proptest case rejected: {reject}"),
                        Err(payload) => {
                            eprintln!(
                                "proptest case #{} of {} failed with inputs: {}",
                                __case, stringify!($name), __inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property body. Without shrinking this is `assert!`
/// plus the input echo provided by the `proptest!` harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
