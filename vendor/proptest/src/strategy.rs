//! Value-generation strategies: the `Strategy` trait and the combinators
//! the pimento suites use. No shrinking — `generate` draws one value.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy so heterogeneous strategies can share a
    /// container (as `prop_oneof!` needs).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| inner.generate(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    gen: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy for [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draw a value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals act as regex strategies in proptest. The shim supports
/// the universal patterns the suites use (`".*"` / `".+"`): arbitrary
/// strings mixing ASCII, multi-byte unicode, and control characters.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let min_len = match *self {
            ".*" => 0,
            ".+" => 1,
            other => panic!("vendored proptest shim only supports \".*\"/\".+\" string strategies, got {other:?}"),
        };
        let len = min_len + rng.below(48) as usize;
        (0..len)
            .map(|_| match rng.below(8) {
                // Weight toward ASCII, but keep hostile inputs in the mix.
                0..=4 => (b' ' + rng.below(95) as u8) as char,
                5 => ['<', '>', '&', '"', '\'', '/', '[', ']'][rng.below(8) as usize],
                6 => char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}'),
                _ => (rng.below(32) as u8) as char,
            })
            .collect()
    }
}

/// Strategy built by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice across type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Length specification for [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` (see [`crate::collection::vec`]).
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `Option<S::Value>` (see [`crate::option::of`]).
#[derive(Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
