//! Test-runner types: configuration and the deterministic RNG behind
//! strategy generation.

/// Configuration for a `proptest!` block, selected with
/// `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for upstream compatibility; shrinking is not implemented,
    /// so this is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Default configuration overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Deterministic RNG (xoshiro256**) driving strategy generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn deterministic(seed: u64) -> Self {
        // SplitMix64 seed expansion.
        let mut x = seed ^ 0x5DEE_CE66_D1CE_4E5B;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
