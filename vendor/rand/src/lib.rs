//! Offline vendored subset of the [`rand`](https://docs.rs/rand) API.
//!
//! The build environment has no network access to crates-io, so the
//! workspace path-depends on this shim. It provides the surface
//! `pimento-datagen` uses — `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer `Range`/`RangeInclusive`, and `Rng::gen_bool` — backed by
//! xoshiro256**. Streams are deterministic per seed (which is all the
//! data generators rely on) but differ from upstream `rand`'s ChaCha12
//! streams.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[low, high]` (inclusive bounds).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as $wide).wrapping_sub(low as $wide).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                // Modulo sampling; the bias is negligible for the spans the
                // data generators use and irrelevant to their purpose.
                let v = rng.next_u64() % (span as u64);
                ((low as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T>
where
    T: Dec,
{
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Integer decrement, used to turn an exclusive upper bound inclusive.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),* $(,)?) => {$(
        impl Dec for $t {
            fn dec(self) -> Self { self - 1 }
        }
    )*};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256** here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does for seed_from_u64.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..64).any(|_| a.gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX));
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(100..6000);
            assert!((100..6000).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let x = rng.gen_range(5i64..6);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
